//! Cross-crate integration tests: dataset generation → index build →
//! trace collection → engine replay, asserting the paper's headline *shapes*
//! at miniature scale.

use sann::core::{Metric, Result};
use sann::datagen::{catalog, GroundTruth};
use sann::engine::{Executor, RunConfig};
use sann::index::{SearchParams, VectorIndex};
use sann::vdb::{Setup, SetupKind};

const K: usize = 10;

struct World {
    base: sann::core::Dataset,
    queries: sann::core::Dataset,
    truth: GroundTruth,
}

fn world() -> World {
    // cohere-s at 1/500 scale: 2,000 × 768-d.
    let spec = catalog::cohere_s().scaled(0.002);
    let bundle = spec.generate();
    let queries = bundle.queries.truncated(50);
    let truth = GroundTruth::bruteforce(&bundle.base, &queries, spec.metric, K);
    World {
        base: bundle.base,
        queries,
        truth,
    }
}

fn prepare(w: &World, kind: SetupKind) -> Result<(Setup, Box<dyn VectorIndex>, f64)> {
    let mut setup = Setup::new(kind, w.base.len());
    let index = setup.build_index(&w.base, Metric::L2)?;
    let recall = setup.tune(index.as_ref(), &w.queries, &w.truth, 0.9)?;
    Ok((setup, index, recall))
}

fn run_at(
    w: &World,
    setup: &Setup,
    index: &dyn VectorIndex,
    kind: SetupKind,
    concurrency: usize,
) -> Result<sann::engine::RunMetrics> {
    let traces = setup.traces(index, &w.queries, K)?;
    // The world is cohere-s at 1/500 of the paper's size; compile plans with
    // the same calibrated scale extrapolation the benchmark harness uses.
    let plans = sann::vdb::setup::calibrated_plan_builder(kind, 1.0, 0.002).build_all(&traces);
    let config = RunConfig {
        cores: 20,
        concurrency,
        duration_us: 2e6,
        ..RunConfig::default()
    };
    Ok(Executor::new(config).run(&plans))
}

/// KF-1 precondition: every tunable setup reaches the paper's recall target.
#[test]
fn all_milvus_setups_reach_recall_target() {
    let w = world();
    for kind in [
        SetupKind::MilvusIvf,
        SetupKind::MilvusHnsw,
        SetupKind::MilvusDiskann,
    ] {
        let (_, _, recall) = prepare(&w, kind).unwrap();
        assert!(recall >= 0.9, "{kind} recall {recall}");
    }
}

/// KF-1: storage-based DiskANN outperforms memory-based IVF in throughput
/// (the paper's headline counterintuitive); memory-based HNSW beats both.
#[test]
fn kf1_throughput_ordering_at_high_concurrency() {
    let w = world();
    let mut qps = std::collections::BTreeMap::new();
    for kind in [
        SetupKind::MilvusIvf,
        SetupKind::MilvusHnsw,
        SetupKind::MilvusDiskann,
    ] {
        let (setup, index, _) = prepare(&w, kind).unwrap();
        let m = run_at(&w, &setup, index.as_ref(), kind, 64).unwrap();
        qps.insert(kind, m.qps);
    }
    assert!(
        qps[&SetupKind::MilvusHnsw] > qps[&SetupKind::MilvusDiskann],
        "hnsw {} must beat diskann {}",
        qps[&SetupKind::MilvusHnsw],
        qps[&SetupKind::MilvusDiskann]
    );
    assert!(
        qps[&SetupKind::MilvusDiskann] > qps[&SetupKind::MilvusIvf],
        "diskann {} must beat ivf {} (KF-1)",
        qps[&SetupKind::MilvusDiskann],
        qps[&SetupKind::MilvusIvf]
    );
}

/// O-1/O-7: the storage-based index pays a latency premium over HNSW at
/// low concurrency, and only the storage-based setups issue device reads.
#[test]
fn storage_setups_read_memory_setups_do_not() {
    let w = world();
    let (hnsw_setup, hnsw_index, _) = prepare(&w, SetupKind::MilvusHnsw).unwrap();
    let (dann_setup, dann_index, _) = prepare(&w, SetupKind::MilvusDiskann).unwrap();
    let m_hnsw = run_at(
        &w,
        &hnsw_setup,
        hnsw_index.as_ref(),
        SetupKind::MilvusHnsw,
        1,
    )
    .unwrap();
    let m_dann = run_at(
        &w,
        &dann_setup,
        dann_index.as_ref(),
        SetupKind::MilvusDiskann,
        1,
    )
    .unwrap();
    assert_eq!(
        m_hnsw.device_read_bytes, 0,
        "memory-based setup must not read"
    );
    assert!(
        m_dann.device_read_bytes > 0,
        "storage-based setup must read"
    );
    assert!(
        m_dann.p99_latency_us > m_hnsw.p99_latency_us,
        "diskann p99 {} should exceed hnsw p99 {} at qd1",
        m_dann.p99_latency_us,
        m_hnsw.p99_latency_us
    );
}

/// O-15: the storage-based graph index issues only 4 KiB requests.
#[test]
fn o15_requests_are_4k() {
    let w = world();
    let (setup, index, _) = prepare(&w, SetupKind::MilvusDiskann).unwrap();
    let m = run_at(&w, &setup, index.as_ref(), SetupKind::MilvusDiskann, 16).unwrap();
    assert!(m.io_stats.size_fraction(4096) > 0.9999);
}

/// KF-3 shape: raising search_list raises recall and I/O, and costs
/// throughput.
#[test]
fn kf3_search_list_tradeoff() {
    let w = world();
    let (mut setup, index, _) = prepare(&w, SetupKind::MilvusDiskann).unwrap();
    setup.params.search_list = 10;
    let r10 = setup
        .recall(index.as_ref(), &w.queries, &w.truth, K)
        .unwrap();
    let m10 = run_at(&w, &setup, index.as_ref(), SetupKind::MilvusDiskann, 16).unwrap();
    setup.params.search_list = 100;
    let r100 = setup
        .recall(index.as_ref(), &w.queries, &w.truth, K)
        .unwrap();
    let m100 = run_at(&w, &setup, index.as_ref(), SetupKind::MilvusDiskann, 16).unwrap();
    assert!(r100 >= r10 - 1e-9, "recall {r10} -> {r100}");
    assert!(m100.qps < m10.qps, "qps {} -> {}", m10.qps, m100.qps);
    assert!(
        m100.read_bytes_per_query > 2.0 * m10.read_bytes_per_query,
        "bytes/query {} -> {}",
        m10.read_bytes_per_query,
        m100.read_bytes_per_query
    );
}

/// Closed-loop scaling: more clients cannot reduce throughput, and the
/// device never reports more bandwidth than its bus limit.
#[test]
fn concurrency_scaling_is_sane() {
    let w = world();
    let (setup, index, _) = prepare(&w, SetupKind::MilvusDiskann).unwrap();
    let mut last_qps = 0.0;
    for conc in [1usize, 8, 64] {
        let m = run_at(&w, &setup, index.as_ref(), SetupKind::MilvusDiskann, conc).unwrap();
        assert!(
            m.qps >= last_qps * 0.95,
            "qps regressed at {conc}: {} -> {}",
            last_qps,
            m.qps
        );
        assert!(
            m.mean_bandwidth_mib < 7.2 * 1024.0,
            "exceeded device bandwidth"
        );
        last_qps = m.qps;
    }
}

/// The vdb layer composes with every setup's index spec end-to-end.
#[test]
fn collection_round_trip_with_persistence() {
    let w = world();
    let mut collection =
        sann::vdb::Collection::from_dataset("kb", &w.base.truncated(500), Metric::L2);
    collection
        .build_index(sann::vdb::IndexSpec::Hnsw(Default::default()))
        .unwrap();
    let q = w.queries.row(0);
    let before = collection
        .search(q, 5, &SearchParams::default(), None)
        .unwrap();

    let dir = std::env::temp_dir().join(format!("sann-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kb.sann");
    sann::vdb::snapshot::save(&collection, &path).unwrap();
    let mut loaded = sann::vdb::snapshot::load(&path).unwrap();
    loaded
        .build_index(sann::vdb::IndexSpec::Hnsw(Default::default()))
        .unwrap();
    let after = loaded.search(q, 5, &SearchParams::default(), None).unwrap();
    assert_eq!(
        before.iter().map(|h| h.id).collect::<Vec<_>>(),
        after.iter().map(|h| h.id).collect::<Vec<_>>()
    );
    std::fs::remove_dir_all(&dir).ok();
}
