//! Property-based tests over the workspace's core invariants, driven by the
//! seeded [`sann::core::check`] harness (deterministic: the same property
//! always sees the same case stream, so failures reproduce exactly).

use sann::core::check::{run, Gen};
use sann::core::{stats, Dataset, Metric, TopK};
use sann::index::{layout::DiskLayout, IoReq, QueryTrace};
use sann::ssdsim::{DeviceSim, PageCache, SsdModel};

/// TopK returns exactly the k smallest distances, sorted.
#[test]
fn topk_matches_sort() {
    run("topk_matches_sort", 200, |g: &mut Gen| {
        let dists = g.vec_f32(1, 200, 0.0, 1e6);
        let k = g.usize_in(1, 50);
        let mut topk = TopK::new(k);
        for (i, &d) in dists.iter().enumerate() {
            topk.push(i as u32, d);
        }
        let got: Vec<f32> = topk.into_sorted_vec().iter().map(|n| n.dist).collect();
        let mut expect = dists.clone();
        expect.sort_by(f32::total_cmp);
        expect.truncate(k);
        assert_eq!(got, expect);
    });
}

/// Distance metrics: non-negative self-identity and symmetry (L2).
#[test]
fn l2_is_a_semimetric() {
    run("l2_is_a_semimetric", 200, |g: &mut Gen| {
        let a = g.vec_f32(1, 64, -100.0, 100.0);
        let d_self = sann::core::distance::l2_squared(&a, &a);
        assert!(d_self.abs() < 1e-3);
        let b: Vec<f32> = a.iter().map(|x| x + 1.0).collect();
        let ab = sann::core::distance::l2_squared(&a, &b);
        let ba = sann::core::distance::l2_squared(&b, &a);
        assert!((ab - ba).abs() < 1e-3 * ab.max(1.0));
        assert!(ab >= 0.0);
    });
}

/// recall@k is always within [0, 1] and 1 when found == truth.
#[test]
fn recall_bounds() {
    run("recall_bounds", 200, |g: &mut Gen| {
        let truth = g.vec_with(1, 30, |g| g.u32_in(0, 1000));
        let k = g.usize_in(1, 30);
        let r = sann::core::recall::recall_at_k(&truth, &truth, k);
        assert!((0.0..=1.0).contains(&r));
        if truth.len() >= k {
            assert!((r - 1.0).abs() < 1e-12);
        }
        let empty: Vec<u32> = vec![];
        assert_eq!(sann::core::recall::recall_at_k(&truth, &empty, k), 0.0);
    });
}

/// Percentiles are monotone in p and bounded by the extremes.
#[test]
fn percentile_monotone() {
    run("percentile_monotone", 200, |g: &mut Gen| {
        let xs = g.vec_with(1, 100, |g| g.f64_in(-1e6, 1e6));
        let p50 = stats::percentile(&xs, 50.0);
        let p99 = stats::percentile(&xs, 99.0);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(p50 <= p99);
        assert!(p50 >= min && p99 <= max);
    });
}

/// Every DiskANN node read is one or more whole, aligned 4 KiB sectors.
#[test]
fn layout_requests_are_aligned() {
    run("layout_requests_are_aligned", 300, |g: &mut Gen| {
        let n_nodes = g.u64_in(1, 10_000);
        let node_bytes = g.u64_in(1, 20_000);
        let layout = DiskLayout::new(n_nodes, node_bytes, 0);
        let id = g.u64_in(0, n_nodes);
        let reqs = layout
            .node_reqs(id, sann::obs::IoProvenance::GraphAdjacency)
            .expect("in-range id");
        assert!(!reqs.is_empty());
        assert!(
            layout
                .node_reqs(n_nodes, sann::obs::IoProvenance::GraphAdjacency)
                .is_err(),
            "out-of-range id must surface as an error, not a panic"
        );
        let mut covered = 0u64;
        let mut needed = 0u64;
        for r in &reqs {
            assert_eq!(r.offset % 4096, 0);
            assert_eq!(r.len, 4096);
            assert_eq!(r.provenance, sann::obs::IoProvenance::GraphAdjacency);
            covered += r.len as u64;
            needed += u64::from(r.needed);
        }
        assert!(covered >= node_bytes, "requests must cover the record");
        assert!(
            needed <= covered,
            "needed bytes cannot exceed fetched bytes"
        );
        let first = layout.node_offset(id).expect("in-range id");
        assert!(first + covered <= layout.end_offset());
    });
}

/// Two distinct node ids never overlap on disk... unless they share a
/// packed sector, in which case their offsets are identical.
#[test]
fn layout_nodes_do_not_tear() {
    run("layout_nodes_do_not_tear", 300, |g: &mut Gen| {
        let node_bytes = g.u64_in(1, 20_000);
        let a = g.u64_in(0, 1000);
        let b = g.u64_in(0, 1000);
        let layout = DiskLayout::new(1000, node_bytes, 0);
        let oa = layout.node_offset(a).expect("in-range id");
        let ob = layout.node_offset(b).expect("in-range id");
        if a != b && node_bytes > 4096 {
            assert!(oa != ob);
        }
        if oa != ob {
            let span = layout.sectors_per_node().max(1) * 4096;
            assert!(oa.abs_diff(ob) >= span.min(4096));
        }
    });
}

/// The device never completes a request before its minimum service time,
/// and completion times are non-decreasing for simultaneous arrivals.
#[test]
fn device_respects_physics() {
    run("device_respects_physics", 200, |g: &mut Gen| {
        let lens = g.vec_with(1, 50, |g| g.u32_in(512, 262_144));
        let model = SsdModel::samsung_990_pro();
        let mut dev = DeviceSim::new(model);
        let mut last_done = 0.0f64;
        for &len in &lens {
            let done = dev.schedule(0.0, len);
            assert!(
                done + 1e-6 >= model.base_latency_us,
                "faster than media: {done}"
            );
            assert!(done + 1e-6 >= last_done, "bus must be FIFO");
            last_done = done;
        }
        // Total bytes can never beat the bus bandwidth.
        let total: u64 = lens.iter().map(|&l| l as u64).sum();
        assert!(total as f64 / last_done <= model.device_bw * 1.01);
    });
}

/// A page cache never holds more pages than its capacity, and re-access
/// of a just-inserted page always hits.
#[test]
fn pagecache_capacity_invariant() {
    run("pagecache_capacity_invariant", 100, |g: &mut Gen| {
        let cap_pages = g.usize_in(1, 64);
        let accesses = g.vec_with(1, 200, |g| g.u64_in(0, 100));
        let mut cache = PageCache::new(cap_pages as u64 * 4096);
        for &page in &accesses {
            cache.access(page * 4096, 4096);
            assert!(cache.len() <= cap_pages);
            assert_eq!(cache.access(page * 4096, 4096), 0, "MRU page must hit");
        }
    });
}

/// Trace aggregate counters equal a manual fold over the steps.
#[test]
fn trace_counters_consistent() {
    run("trace_counters_consistent", 200, |g: &mut Gen| {
        let ops = g.vec_with(0, 50, |g| g.u32_in(0, 3) as u8);
        let mut trace = QueryTrace::new();
        let (mut reads, mut bytes) = (0u64, 0u64);
        for (i, &op) in ops.iter().enumerate() {
            match op {
                0 => trace.push_compute(i as u64 + 1, 768),
                1 => trace.push_pq_lookup(i as u64 + 1, 48),
                _ => {
                    let reqs: Vec<IoReq> = (0..(i % 4) + 1)
                        .map(|j| IoReq::new(j as u64 * 4096, 4096))
                        .collect();
                    reads += reqs.len() as u64;
                    bytes += reqs.iter().map(|r| r.len as u64).sum::<u64>();
                    trace.push_read(reqs);
                }
            }
        }
        assert_eq!(trace.io_count(), reads);
        assert_eq!(trace.read_bytes(), bytes);
    });
}

/// Scalar quantization round-trips within one quantization step per
/// dimension.
#[test]
fn sq_error_bounded() {
    run("sq_error_bounded", 100, |g: &mut Gen| {
        let rows = g.vec_with(2, 40, |g| g.vec_f32(8, 9, -10.0, 10.0));
        let data = Dataset::from_rows(rows.clone()).unwrap();
        let sq = sann::quant::ScalarQuantizer::train(&data).unwrap();
        for row in &rows {
            let rec = sq.decode(&sq.encode(row));
            for (orig, dec) in row.iter().zip(&rec) {
                // One step = (max-min)/255 <= 20/255.
                assert!((orig - dec).abs() <= 20.0 / 255.0 + 1e-4);
            }
        }
    });
}

/// Every storage-resident read a DiskANN or SPANN search issues is whole,
/// 4 KiB-aligned sectors — and DiskANN graph-node fetches are exactly one
/// page each (the paper's O-15: storage-based indexes speak 4 KiB).
#[test]
fn storage_index_reads_are_page_aligned() {
    use sann::core::rng::SplitMix64;
    use sann::index::{
        DiskAnnConfig, DiskAnnIndex, SearchParams, SpannConfig, SpannIndex, TraceStep, VectorIndex,
    };

    let gen_rows = |seed: u64, n: usize, dim: usize| {
        let mut rng = SplitMix64::new(seed);
        Dataset::from_rows(
            (0..n)
                .map(|_| (0..dim).map(|_| rng.next_f32()).collect())
                .collect::<Vec<_>>(),
        )
        .unwrap()
    };
    let data = gen_rows(7, 400, 64);
    let queries = gen_rows(8, 12, 64);
    let params = SearchParams::default();

    let diskann = DiskAnnIndex::build(&data, Metric::L2, DiskAnnConfig::default()).unwrap();
    let spann = SpannIndex::build(&data, Metric::L2, SpannConfig::default()).unwrap();
    for q in queries.iter() {
        let out = diskann.search(q, 10, &params).unwrap();
        out.trace.validate(params.beam_width).unwrap();
        for step in &out.trace.steps {
            if let TraceStep::Read { reqs } = step {
                assert!(!reqs.is_empty());
                assert!(
                    reqs.len() <= params.beam_width,
                    "beam wider than beam_width"
                );
                for r in reqs {
                    assert_eq!(r.offset % 4096, 0, "unaligned DiskANN read");
                    assert_eq!(r.len, 4096, "graph-node fetch must be one page");
                }
            }
        }
        let out = spann.search(q, 10, &params).unwrap();
        // SPANN reads whole posting lists, not beams — no beam bound.
        out.trace.validate(0).unwrap();
        for step in &out.trace.steps {
            if let TraceStep::Read { reqs } = step {
                for r in reqs {
                    assert_eq!(r.offset % 4096, 0, "unaligned SPANN read");
                    assert_eq!(r.len % 4096, 0, "SPANN read must be whole sectors");
                }
            }
        }
    }
}

/// Identically-seeded builds and runs are bit-identical end to end: the
/// traces match step for step and the executor's metrics match byte for
/// byte (the invariant `sann-xtask lint --determinism` audits at scale).
#[test]
fn identically_seeded_runs_are_byte_identical() {
    use sann::core::rng::SplitMix64;
    use sann::engine::{Executor, QueryPlan, RunConfig, Segment};
    use sann::index::{DiskAnnConfig, DiskAnnIndex, IoReq, SearchParams, VectorIndex};

    let build_traces = || {
        let mut rng = SplitMix64::new(42);
        let data = Dataset::from_rows(
            (0..300)
                .map(|_| (0..48).map(|_| rng.next_f32()).collect())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let index = DiskAnnIndex::build(&data, Metric::L2, DiskAnnConfig::default()).unwrap();
        (0..8)
            .map(|i| {
                index
                    .search(data.row(i * 7), 5, &SearchParams::default())
                    .unwrap()
                    .trace
            })
            .collect::<Vec<_>>()
    };
    let a = build_traces();
    let b = build_traces();
    assert_eq!(
        a, b,
        "identically-seeded builds must produce identical traces"
    );

    let plan = QueryPlan::new(vec![
        Segment::cpu(25.0),
        Segment::io(vec![IoReq::new(0, 4096), IoReq::new(16384, 4096)]),
        Segment::cpu(5.0),
    ]);
    let config = RunConfig {
        cores: 4,
        concurrency: 8,
        duration_us: 0.3e6,
        ..RunConfig::default()
    };
    let m1 = Executor::new(config).run(std::slice::from_ref(&plan));
    let m2 = Executor::new(config).run(&[plan]);
    assert_eq!(
        m1.canonical_bytes(),
        m2.canonical_bytes(),
        "identically-seeded runs must have byte-identical metrics"
    );
}

/// Flat index search equals ground truth for arbitrary data.
#[test]
fn flat_index_is_exact() {
    run("flat_index_is_exact", 100, |g: &mut Gen| {
        use sann::index::{FlatIndex, SearchParams, VectorIndex};
        let rows = g.vec_with(2, 50, |g| g.vec_f32(4, 5, -5.0, 5.0));
        let qi = g.usize_in(0, rows.len());
        let data = Dataset::from_rows(rows).unwrap();
        let index = FlatIndex::build(&data, Metric::L2);
        let out = index
            .search(data.row(qi), 1, &SearchParams::default())
            .unwrap();
        let best = out.neighbors[0];
        // The query vector itself must be at distance 0 (ties allowed).
        assert!(best.dist <= 1e-6);
    });
}
