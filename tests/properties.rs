//! Property-based tests (proptest) over the workspace's core invariants.

use proptest::prelude::*;
use sann::core::{stats, Dataset, Metric, TopK};
use sann::index::{layout::DiskLayout, IoReq, QueryTrace};
use sann::ssdsim::{DeviceSim, PageCache, SsdModel};

proptest! {
    /// TopK returns exactly the k smallest distances, sorted.
    #[test]
    fn topk_matches_sort(dists in proptest::collection::vec(0.0f32..1e6, 1..200), k in 1usize..50) {
        let mut topk = TopK::new(k);
        for (i, &d) in dists.iter().enumerate() {
            topk.push(i as u32, d);
        }
        let got: Vec<f32> = topk.into_sorted_vec().iter().map(|n| n.dist).collect();
        let mut expect = dists.clone();
        expect.sort_by(|a, b| a.total_cmp(b));
        expect.truncate(k);
        prop_assert_eq!(got, expect);
    }

    /// Distance metrics: non-negative self-identity and symmetry (L2).
    #[test]
    fn l2_is_a_semimetric(a in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        let d_self = sann::core::distance::l2_squared(&a, &a);
        prop_assert!(d_self.abs() < 1e-3);
        let b: Vec<f32> = a.iter().map(|x| x + 1.0).collect();
        let ab = sann::core::distance::l2_squared(&a, &b);
        let ba = sann::core::distance::l2_squared(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-3 * ab.max(1.0));
        prop_assert!(ab >= 0.0);
    }

    /// recall@k is always within [0, 1] and 1 when found == truth.
    #[test]
    fn recall_bounds(truth in proptest::collection::vec(0u32..1000, 1..30), k in 1usize..30) {
        let r = sann::core::recall::recall_at_k(&truth, &truth, k);
        prop_assert!((0.0..=1.0).contains(&r));
        if truth.len() >= k {
            prop_assert!((r - 1.0).abs() < 1e-12);
        }
        let empty: Vec<u32> = vec![];
        prop_assert_eq!(sann::core::recall::recall_at_k(&truth, &empty, k), 0.0);
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn percentile_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let p50 = stats::percentile(&xs, 50.0);
        let p99 = stats::percentile(&xs, 99.0);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p50 <= p99);
        prop_assert!(p50 >= min && p99 <= max);
    }

    /// Every DiskANN node read is one or more whole, aligned 4 KiB sectors.
    #[test]
    fn layout_requests_are_aligned(
        n_nodes in 1u64..10_000,
        node_bytes in 1u64..20_000,
        id_frac in 0.0f64..1.0,
    ) {
        let layout = DiskLayout::new(n_nodes, node_bytes, 0);
        let id = ((n_nodes - 1) as f64 * id_frac) as u64;
        let reqs = layout.node_reqs(id);
        prop_assert!(!reqs.is_empty());
        let mut covered = 0u64;
        for r in &reqs {
            prop_assert_eq!(r.offset % 4096, 0);
            prop_assert_eq!(r.len, 4096);
            covered += r.len as u64;
        }
        prop_assert!(covered >= node_bytes, "requests must cover the record");
        prop_assert!(layout.node_offset(id) + covered <= layout.end_offset());
    }

    /// Two distinct node ids never overlap on disk... unless they share a
    /// packed sector, in which case their offsets are identical.
    #[test]
    fn layout_nodes_do_not_tear(
        node_bytes in 1u64..20_000,
        a in 0u64..1000,
        b in 0u64..1000,
    ) {
        let layout = DiskLayout::new(1000, node_bytes, 0);
        let (oa, ob) = (layout.node_offset(a), layout.node_offset(b));
        if a != b && node_bytes > 4096 {
            prop_assert!(oa != ob);
        }
        if oa != ob {
            let span = layout.sectors_per_node().max(1) * 4096;
            prop_assert!(oa.abs_diff(ob) >= span.min(4096));
        }
    }

    /// The device never completes a request before its minimum service time,
    /// and completion times are non-decreasing for simultaneous arrivals.
    #[test]
    fn device_respects_physics(lens in proptest::collection::vec(512u32..262_144, 1..50)) {
        let model = SsdModel::samsung_990_pro();
        let mut dev = DeviceSim::new(model);
        let mut last_done = 0.0f64;
        for &len in &lens {
            let done = dev.schedule(0.0, len);
            prop_assert!(done + 1e-6 >= model.base_latency_us, "faster than media: {done}");
            prop_assert!(done + 1e-6 >= last_done, "bus must be FIFO");
            last_done = done;
        }
        // Total bytes can never beat the bus bandwidth.
        let total: u64 = lens.iter().map(|&l| l as u64).sum();
        prop_assert!(total as f64 / last_done <= model.device_bw * 1.01);
    }

    /// A page cache never holds more pages than its capacity, and re-access
    /// of a just-inserted page always hits.
    #[test]
    fn pagecache_capacity_invariant(
        cap_pages in 1usize..64,
        accesses in proptest::collection::vec(0u64..100, 1..200),
    ) {
        let mut cache = PageCache::new(cap_pages as u64 * 4096);
        for &page in &accesses {
            cache.access(page * 4096, 4096);
            prop_assert!(cache.len() <= cap_pages);
            prop_assert_eq!(cache.access(page * 4096, 4096), 0, "MRU page must hit");
        }
    }

    /// Trace aggregate counters equal a manual fold over the steps.
    #[test]
    fn trace_counters_consistent(ops in proptest::collection::vec(0u8..3, 0..50)) {
        let mut trace = QueryTrace::new();
        let (mut reads, mut bytes) = (0u64, 0u64);
        for (i, &op) in ops.iter().enumerate() {
            match op {
                0 => trace.push_compute(i as u64 + 1, 768),
                1 => trace.push_pq_lookup(i as u64 + 1, 48),
                _ => {
                    let reqs: Vec<IoReq> =
                        (0..(i % 4) + 1).map(|j| IoReq::new(j as u64 * 4096, 4096)).collect();
                    reads += reqs.len() as u64;
                    bytes += reqs.iter().map(|r| r.len as u64).sum::<u64>();
                    trace.push_read(reqs);
                }
            }
        }
        prop_assert_eq!(trace.io_count(), reads);
        prop_assert_eq!(trace.read_bytes(), bytes);
    }

    /// Scalar quantization round-trips within one quantization step per
    /// dimension.
    #[test]
    fn sq_error_bounded(rows in proptest::collection::vec(
        proptest::collection::vec(-10.0f32..10.0, 8), 2..40)) {
        let data = Dataset::from_rows(rows.clone()).unwrap();
        let sq = sann::quant::ScalarQuantizer::train(&data).unwrap();
        for row in &rows {
            let rec = sq.decode(&sq.encode(row));
            for (orig, dec) in row.iter().zip(&rec) {
                // One step = (max-min)/255 <= 20/255.
                prop_assert!((orig - dec).abs() <= 20.0 / 255.0 + 1e-4);
            }
        }
    }

    /// Flat index search equals ground truth for arbitrary data.
    #[test]
    fn flat_index_is_exact(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 2..50),
        qi in 0usize..49,
    ) {
        use sann::index::{FlatIndex, SearchParams, VectorIndex};
        let data = Dataset::from_rows(rows.clone()).unwrap();
        let qi = qi % rows.len();
        let index = FlatIndex::build(&data, Metric::L2);
        let out = index.search(data.row(qi), 1, &SearchParams::default()).unwrap();
        let best = out.neighbors[0];
        // The query vector itself must be at distance 0 (ties allowed).
        prop_assert!(best.dist <= 1e-6);
    }
}
