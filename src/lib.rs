//! `sann` — storage-based approximate nearest neighbor search.
//!
//! A facade crate re-exporting the whole workspace: from-scratch vector
//! indexes (Flat, IVF, HNSW, DiskANN), quantization, a parametric NVMe SSD
//! model with block-layer tracing, a discrete-event execution engine, a
//! single-node vector database layer with per-database engine profiles, and
//! the IISWC'25 characterization harness that drives them.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.
//!
//! # Examples
//!
//! ```
//! use sann::core::{Dataset, Metric};
//!
//! let data = Dataset::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]])?;
//! assert_eq!(Metric::L2.distance(data.row(0), data.row(1)), 2.0);
//! # Ok::<(), sann::core::Error>(())
//! ```

pub use sann_core as core;
pub use sann_datagen as datagen;
pub use sann_engine as engine;
pub use sann_index as index;
pub use sann_obs as obs;
pub use sann_quant as quant;
pub use sann_ssdsim as ssdsim;
pub use sann_vdb as vdb;
