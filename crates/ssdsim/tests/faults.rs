//! Property tests for the deterministic fault-injection layer: schedule
//! reproducibility, clean-profile transparency, and device conservation
//! with faulted (including failed) requests.

use sann_ssdsim::{DeviceSim, FaultInjector, FaultProfile, IoTracer, SsdModel, HEDGE_TAG};

/// Replays a deterministic pseudo-workload through the injector and
/// returns the resulting fault schedule.
fn schedule(profile: FaultProfile, seed: u64) -> Vec<(u64, u64, f64, bool)> {
    let inj = FaultInjector::new(profile, seed, SsdModel::samsung_990_pro().base_latency_us);
    let mut out = Vec::new();
    for uid in 0..20u64 {
        for req in 0..8u64 {
            let arrival = (uid * 137 + req * 53) as f64;
            let f = inj.draw(uid, req, 0, arrival);
            out.push((uid, req, f.extra_us, f.error));
        }
    }
    out
}

#[test]
fn same_seed_gives_identical_fault_schedule() {
    for profile in [
        FaultProfile::aging(),
        FaultProfile::gc_heavy(),
        FaultProfile::flaky(),
    ] {
        assert_eq!(
            schedule(profile, 0xBE7C4),
            schedule(profile, 0xBE7C4),
            "profile {} is not seed-deterministic",
            profile.name
        );
        assert_ne!(
            schedule(profile, 1),
            schedule(profile, 2),
            "profile {} ignores the seed",
            profile.name
        );
    }
}

#[test]
fn none_profile_injects_nothing_for_any_seed() {
    for seed in [0u64, 1, 0xFFFF_FFFF_FFFF_FFFF] {
        for (_, _, extra, error) in schedule(FaultProfile::none(), seed) {
            assert_eq!(extra, 0.0);
            assert!(!error);
        }
    }
}

#[test]
fn zero_extra_schedule_faulted_is_bit_identical_to_schedule() {
    // The faulted entry point with no perturbation must be *exactly* the
    // plain read path — this is what keeps `--fault-profile none` runs
    // byte-identical to a pre-fault build.
    let model = SsdModel::samsung_990_pro();
    let mut plain = DeviceSim::new(model);
    let mut faulted = DeviceSim::new(model);
    for i in 0..500u64 {
        let arrival = i as f64 * 1.7;
        let len = if i % 3 == 0 { 4096 } else { 128 * 1024 };
        let a = plain.schedule(arrival, len);
        let b = faulted.schedule_faulted(arrival, len, 0.0);
        assert_eq!(a.to_bits(), b.to_bits(), "request {i} diverged");
    }
    assert_eq!(plain.completed(), faulted.completed());
    assert_eq!(plain.bytes(), faulted.bytes());
}

#[test]
fn injected_latency_only_delays_never_drops() {
    // Conservation: every issued request completes on the device, faults
    // included — errors surface at the host, not as lost device work.
    let model = SsdModel::samsung_990_pro();
    let inj = FaultInjector::new(FaultProfile::flaky(), 7, model.base_latency_us);
    let mut dev = DeviceSim::new(model);
    let mut tracer = IoTracer::new();
    let n = 400u64;
    let mut issued_bytes = 0u64;
    for i in 0..n {
        let arrival = i as f64 * 2.0;
        let fault = inj.draw(i, 0, 0, arrival);
        tracer.record_read(arrival, i * 4096, 4096);
        let done = dev.schedule_faulted(arrival, 4096, fault.extra_us);
        assert!(
            done >= arrival + model.base_latency_us + fault.extra_us,
            "request {i} completed before its media stage could finish"
        );
        issued_bytes += 4096;
    }
    assert_eq!(dev.completed(), n, "every issued request must complete");
    assert_eq!(dev.bytes(), issued_bytes);
    let stats = tracer.stats();
    assert_eq!(stats.reads, n);
    assert_eq!(stats.read_bytes, dev.bytes());
}

#[test]
fn faulted_service_dominates_clean_service() {
    // Under any profile, a request's completion time is never earlier
    // than the same request on a healthy device (faults only add time).
    let model = SsdModel::samsung_990_pro();
    let inj = FaultInjector::new(FaultProfile::gc_heavy(), 3, model.base_latency_us);
    let mut clean = DeviceSim::new(model);
    let mut faulty = DeviceSim::new(model);
    for i in 0..300u64 {
        let arrival = i as f64 * 10.0;
        let fault = inj.draw(i, 0, 0, arrival);
        let a = clean.schedule(arrival, 4096);
        let b = faulty.schedule_faulted(arrival, 4096, fault.extra_us);
        assert!(b >= a, "fault made request {i} faster: {b} < {a}");
    }
}

#[test]
fn retry_attempts_draw_independent_outcomes() {
    // A retry must not replay the failed attempt's coin flips: with a
    // high error rate, some primary failures are followed by a retry
    // success (otherwise retrying would be pointless).
    let inj = FaultInjector::new(
        FaultProfile {
            read_error_prob: 0.5,
            ..FaultProfile::flaky()
        },
        11,
        48.0,
    );
    let mut recovered = 0;
    for uid in 0..500u64 {
        let primary = inj.draw(uid, 0, 0, 0.0);
        let retry = inj.draw(uid, 0, 1, 0.0);
        if primary.error && !retry.error {
            recovered += 1;
        }
    }
    assert!(
        recovered > 50,
        "retries never recover: {recovered}/500 primary failures recovered"
    );
}

#[test]
fn hedge_stream_is_decorrelated_from_primary() {
    let inj = FaultInjector::new(FaultProfile::flaky(), 23, 48.0);
    let mut diverged = 0;
    for uid in 0..500u64 {
        let primary = inj.draw(uid, 0, 0, 0.0);
        let hedge = inj.draw(uid, 0, HEDGE_TAG, 0.0);
        if primary != hedge {
            diverged += 1;
        }
    }
    assert!(diverged > 100, "hedge stream mirrors primary: {diverged}");
}

#[test]
fn gc_pause_shapes_the_arrival_timeline() {
    // Requests arriving inside the GC window stall to its end; requests
    // outside pass untouched — so completion order can invert around the
    // window edge, deterministically.
    let p = FaultProfile::gc_heavy();
    let inj = FaultInjector::new(p, 0, 48.0);
    let inside = inj.draw(0, 0, 0, p.gc_period_us + 10.0);
    let outside = inj.draw(0, 1, 0, p.gc_period_us + p.gc_pause_us + 10.0);
    assert!(inside.gc_stall_us > 0.0);
    assert_eq!(outside.gc_stall_us, 0.0);
    assert!((inside.gc_stall_us - (p.gc_pause_us - 10.0)).abs() < 1e-9);
}
