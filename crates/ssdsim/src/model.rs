//! The SSD service model.

use sann_core::cast;
use std::collections::BinaryHeap;

/// Parameters describing an SSD's performance envelope.
///
/// Times are microseconds; bandwidths are bytes per microsecond (= MB/s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdModel {
    /// Internal parallelism: number of independent flash units.
    pub units: usize,
    /// Media access latency per read request, µs (independent of size).
    pub base_latency_us: f64,
    /// Media program latency per write request, µs. NAND programs are
    /// slower than reads even through the SLC cache; concurrent writes
    /// therefore inflate read latency by occupying flash units longer
    /// (the read-write interference the paper's §VIII points at).
    pub write_latency_us: f64,
    /// Shared-bus bandwidth, bytes/µs.
    pub device_bw: f64,
    /// Host CPU time consumed per I/O (submission + completion path), µs.
    /// Charged by the execution engine to the submitting core.
    pub submit_cpu_us: f64,
}

impl SsdModel {
    /// A model calibrated to the paper's Samsung 990 Pro 4 TiB measurements:
    ///
    /// * peak 4 KiB random-read IOPS ≈ `units / base_latency_us` ≈ 1.33 M
    ///   (paper: 1.3 M at QD 64),
    /// * sequential 128 KiB bandwidth ≈ `device_bw` = 7,730 B/µs ≈ 7.2 GiB/s,
    /// * single-core 4 KiB IOPS ≈ `1 / submit_cpu_us` ≈ 325 K (paper: 324.3 K,
    ///   CPU-bound on the Linux storage stack),
    /// * QD1 4 KiB latency ≈ `base_latency_us` + transfer ≈ 49 µs.
    pub fn samsung_990_pro() -> SsdModel {
        SsdModel {
            units: 64,
            base_latency_us: 48.0,
            write_latency_us: 130.0,
            device_bw: 7730.0,
            submit_cpu_us: 3.08,
        }
    }

    /// A slower SATA-class model (the paper's OS drive, Samsung MZ7L31T9);
    /// useful for contrast experiments.
    pub fn sata_ssd() -> SsdModel {
        SsdModel {
            units: 8,
            base_latency_us: 90.0,
            write_latency_us: 250.0,
            device_bw: 550.0,
            submit_cpu_us: 4.0,
        }
    }

    /// Theoretical peak 4 KiB random-read IOPS of the model (media-limited).
    pub fn peak_iops_4k(&self) -> f64 {
        let media = cast::f64_from_usize(self.units) / self.base_latency_us;
        let bus = self.device_bw / 4096.0;
        media.min(bus) * 1e6
    }

    /// Theoretical peak sequential bandwidth in bytes/second.
    pub fn peak_bandwidth(&self) -> f64 {
        self.device_bw * 1e6
    }

    /// Service time of one request in an otherwise idle device, µs.
    pub fn idle_latency_us(&self, len: u32) -> f64 {
        self.base_latency_us + f64::from(len) / self.device_bw
    }
}

impl Default for SsdModel {
    fn default() -> Self {
        SsdModel::samsung_990_pro()
    }
}

/// Applies an [`SsdModel`] to a stream of requests.
///
/// Requests must be scheduled in non-decreasing arrival order (the engine's
/// event loop guarantees this). Each request:
///
/// 1. waits for the earliest-free flash unit (media stage,
///    `base_latency_us`),
/// 2. then transfers its payload over the shared bus in FIFO order
///    (`len / device_bw`).
///
/// The returned completion time is when the data is in host memory.
#[derive(Debug, Clone)]
pub struct DeviceSim {
    model: SsdModel,
    /// Min-heap of unit free times (stored negated in a max-heap).
    units: BinaryHeap<std::cmp::Reverse<u64>>,
    /// Bus free time, in nanoseconds (integer for determinism).
    bus_free_ns: u64,
    /// Completed request count.
    completed: u64,
    /// Total bytes transferred.
    bytes: u64,
    /// Queue-depth samples: (arrival ns, flash units busy at arrival),
    /// one per scheduled request — DES event granularity.
    qd_samples: Vec<(u64, u32)>,
    /// Media-occupancy samples: (media start ns, media busy ns) per
    /// request, for the utilization timeline.
    busy_samples: Vec<(u64, u64)>,
    /// Total media-busy nanoseconds accumulated across all units.
    busy_ns_total: u64,
}

const NS_PER_US: f64 = 1_000.0;

impl DeviceSim {
    /// Creates an idle device.
    pub fn new(model: SsdModel) -> DeviceSim {
        let mut units = BinaryHeap::with_capacity(model.units);
        for _ in 0..model.units.max(1) {
            units.push(std::cmp::Reverse(0));
        }
        DeviceSim {
            model,
            units,
            bus_free_ns: 0,
            completed: 0,
            bytes: 0,
            qd_samples: Vec::new(),
            busy_samples: Vec::new(),
            busy_ns_total: 0,
        }
    }

    /// The model in use.
    pub fn model(&self) -> &SsdModel {
        &self.model
    }

    /// Schedules a read arriving at `arrival_us`; returns its completion
    /// time in µs.
    pub fn schedule(&mut self, arrival_us: f64, len: u32) -> f64 {
        self.schedule_op(arrival_us, len, self.model.base_latency_us)
    }

    /// Schedules a write arriving at `arrival_us`; returns its completion
    /// time in µs. Writes share the flash units and the bus with reads, so
    /// mixed workloads interfere.
    pub fn schedule_write(&mut self, arrival_us: f64, len: u32) -> f64 {
        self.schedule_op(arrival_us, len, self.model.write_latency_us)
    }

    /// Schedules a read whose media stage is inflated by `extra_media_us`
    /// (a fault-injected spike, GC stall, or throttle penalty from
    /// [`crate::faults`]); returns its completion time in µs. With
    /// `extra_media_us == 0.0` this is exactly [`DeviceSim::schedule`].
    pub fn schedule_faulted(&mut self, arrival_us: f64, len: u32, extra_media_us: f64) -> f64 {
        self.schedule_op(arrival_us, len, self.model.base_latency_us + extra_media_us)
    }

    fn schedule_op(&mut self, arrival_us: f64, len: u32, media_us: f64) -> f64 {
        let arrival_ns = cast::u64_from_f64((arrival_us * NS_PER_US).round().max(0.0));
        // Telemetry: queue depth at arrival = units still busy past this
        // instant. Heap iteration order is irrelevant to a count, and the
        // heap never exceeds `model.units` (≤ 64 for every preset).
        let busy_units = self
            .units
            .iter()
            .filter(|std::cmp::Reverse(t)| *t > arrival_ns)
            .count();
        self.qd_samples
            .push((arrival_ns, cast::u32_from_usize(busy_units)));
        // Media stage on the earliest-free unit. The constructor guarantees
        // at least one flash unit; if that invariant ever broke, treating
        // the unit as immediately free keeps the completion path panic-free
        // instead of aborting a sweep mid-run.
        let unit_free = match self.units.pop() {
            Some(std::cmp::Reverse(t)) => t,
            None => {
                debug_assert!(false, "DeviceSim built with zero flash units");
                arrival_ns
            }
        };
        let media_start = arrival_ns.max(unit_free);
        let media_done = media_start + cast::u64_from_f64(media_us * NS_PER_US);
        self.units.push(std::cmp::Reverse(media_done));
        self.busy_samples
            .push((media_start, media_done - media_start));
        self.busy_ns_total += media_done - media_start;
        // Bus stage, FIFO.
        let transfer_ns =
            cast::u64_from_f64((f64::from(len) / self.model.device_bw * NS_PER_US).ceil());
        let bus_start = media_done.max(self.bus_free_ns);
        let done = bus_start + transfer_ns;
        self.bus_free_ns = done;
        self.completed += 1;
        self.bytes += u64::from(len);
        cast::f64_from_u64(done) / NS_PER_US
    }

    /// Number of requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total bytes transferred so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean queue depth over every scheduled request: how many flash
    /// units were already busy when each request arrived (0 with no
    /// traffic).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.qd_samples.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.qd_samples.iter().map(|&(_, d)| u64::from(d)).sum();
        sum as f64 / cast::f64_from_usize(self.qd_samples.len())
    }

    /// Mean device utilization over `duration_us`: media-busy time summed
    /// across all flash units divided by total unit-time (0.0 for a
    /// non-positive duration).
    pub fn utilization(&self, duration_us: f64) -> f64 {
        if duration_us <= 0.0 {
            return 0.0;
        }
        let unit_time_ns = cast::f64_from_usize(self.model.units.max(1)) * duration_us * NS_PER_US;
        cast::f64_from_u64(self.busy_ns_total) / unit_time_ns
    }

    /// Windowed mean queue depth (one value per `bucket_us` window; empty
    /// for a non-positive duration).
    pub fn queue_depth_timeline(&self, duration_us: f64, bucket_us: f64) -> Vec<f64> {
        let Some(mut tl) = sann_obs::Timeline::new(duration_us, bucket_us) else {
            return Vec::new();
        };
        for &(t_ns, depth) in &self.qd_samples {
            tl.record(cast::f64_from_u64(t_ns) / NS_PER_US, f64::from(depth));
        }
        tl.means()
    }

    /// Windowed device utilization (busy fraction of total unit-time per
    /// `bucket_us` window; empty for a non-positive duration). Each
    /// request's media occupancy is billed to the window it starts in.
    pub fn utilization_timeline(&self, duration_us: f64, bucket_us: f64) -> Vec<f64> {
        let Some(mut tl) = sann_obs::Timeline::new(duration_us, bucket_us) else {
            return Vec::new();
        };
        for &(t_ns, busy_ns) in &self.busy_samples {
            tl.record(
                cast::f64_from_u64(t_ns) / NS_PER_US,
                cast::f64_from_u64(busy_ns) / NS_PER_US,
            );
        }
        let units = cast::f64_from_usize(self.model.units.max(1));
        tl.fractions_of_window().iter().map(|f| f / units).collect()
    }

    /// Resets the device to idle (keeps the model).
    pub fn reset(&mut self) {
        *self = DeviceSim::new(self.model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_paper_envelope() {
        let m = SsdModel::samsung_990_pro();
        let iops = m.peak_iops_4k();
        assert!((1.25e6..1.45e6).contains(&iops), "peak IOPS {iops}");
        let bw_gib = m.peak_bandwidth() / (1 << 30) as f64;
        assert!(
            (7.0..7.4).contains(&bw_gib),
            "peak bandwidth {bw_gib} GiB/s"
        );
        let lat = m.idle_latency_us(4096);
        assert!((40.0..80.0).contains(&lat), "QD1 latency {lat}");
        let single_core_iops = 1e6 / m.submit_cpu_us;
        assert!((300e3..350e3).contains(&single_core_iops));
    }

    #[test]
    fn qd1_latency_matches_idle_model() {
        let m = SsdModel::samsung_990_pro();
        let mut dev = DeviceSim::new(m);
        let done = dev.schedule(100.0, 4096);
        assert!((done - 100.0 - m.idle_latency_us(4096)).abs() < 0.01);
    }

    #[test]
    fn parallel_requests_overlap_on_units() {
        let m = SsdModel::samsung_990_pro();
        let mut dev = DeviceSim::new(m);
        // 64 concurrent 4 KiB requests: all fit in the units, so they finish
        // within ~one media latency of each other (bus transfer is fast).
        let mut last = 0.0f64;
        for _ in 0..64 {
            last = last.max(dev.schedule(0.0, 4096));
        }
        assert!(
            last < m.base_latency_us * 2.0,
            "64 parallel reads took {last} µs"
        );
    }

    #[test]
    fn excess_requests_queue() {
        let m = SsdModel::samsung_990_pro();
        let mut dev = DeviceSim::new(m);
        let mut last = 0.0f64;
        for _ in 0..128 {
            last = last.max(dev.schedule(0.0, 4096));
        }
        // Second wave waits one extra media latency.
        assert!(last >= m.base_latency_us * 2.0);
        assert_eq!(dev.completed(), 128);
        assert_eq!(dev.bytes(), 128 * 4096);
    }

    #[test]
    fn bus_serializes_large_transfers() {
        let m = SsdModel::samsung_990_pro();
        let mut dev = DeviceSim::new(m);
        // 32 concurrent 128 KiB reads: media overlaps, bus serializes.
        let n = 32u32;
        let mut last = 0.0f64;
        for _ in 0..n {
            last = last.max(dev.schedule(0.0, 128 * 1024));
        }
        let total_bytes = (n as f64) * 128.0 * 1024.0;
        let achieved_bw = total_bytes / last; // bytes per µs
        assert!(
            achieved_bw <= m.device_bw * 1.01,
            "achieved {achieved_bw} exceeds bus {}",
            m.device_bw
        );
        assert!(
            achieved_bw > m.device_bw * 0.8,
            "bus underutilized: {achieved_bw}"
        );
    }

    #[test]
    fn sustained_random_iops_approaches_peak() {
        let m = SsdModel::samsung_990_pro();
        let mut dev = DeviceSim::new(m);
        // Closed feedback: keep 64 in flight for a simulated 100 ms.
        let mut completions: Vec<f64> = (0..64).map(|_| dev.schedule(0.0, 4096)).collect();
        let horizon = 100_000.0;
        let mut done = 0u64;
        loop {
            // Find earliest completion and immediately resubmit.
            let (i, &t) = completions
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap();
            if t > horizon {
                break;
            }
            done += 1;
            completions[i] = dev.schedule(t, 4096);
        }
        let iops = done as f64 / (horizon / 1e6);
        assert!(iops > 0.85 * m.peak_iops_4k(), "sustained IOPS {iops}");
    }

    #[test]
    fn writes_are_slower_and_interfere_with_reads() {
        let m = SsdModel::samsung_990_pro();
        let mut dev = DeviceSim::new(m);
        let write_done = dev.schedule_write(0.0, 4096);
        assert!(
            write_done > m.base_latency_us,
            "writes cost more than reads"
        );
        // Saturate the units with writes, then a read queues behind them.
        let mut dev = DeviceSim::new(m);
        for _ in 0..m.units {
            dev.schedule_write(0.0, 4096);
        }
        let read_done = dev.schedule(0.0, 4096);
        assert!(
            read_done > m.write_latency_us,
            "read {read_done} must wait for a unit busy writing"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut dev = DeviceSim::new(SsdModel::samsung_990_pro());
        dev.schedule(0.0, 4096);
        dev.reset();
        assert_eq!(dev.completed(), 0);
        assert_eq!(dev.mean_queue_depth(), 0.0);
        assert_eq!(dev.utilization(1e6), 0.0);
        let done = dev.schedule(0.0, 4096);
        assert!(done < 100.0);
    }

    #[test]
    fn queue_depth_samples_at_arrival() {
        let m = SsdModel::samsung_990_pro();
        let mut dev = DeviceSim::new(m);
        // First arrival sees an idle device; the next 63 each see one more
        // busy unit.
        for _ in 0..64 {
            dev.schedule(0.0, 4096);
        }
        // 0 + 1 + ... + 63 over 64 samples = 31.5.
        assert!((dev.mean_queue_depth() - 31.5).abs() < 1e-9);
        let tl = dev.queue_depth_timeline(1e6, 1e6);
        assert_eq!(tl.len(), 1);
        assert!((tl[0] - 31.5).abs() < 1e-9);
    }

    #[test]
    fn idle_device_reports_zero_telemetry() {
        let dev = DeviceSim::new(SsdModel::samsung_990_pro());
        assert_eq!(dev.mean_queue_depth(), 0.0);
        assert_eq!(dev.utilization(1e6), 0.0);
        assert_eq!(dev.utilization(0.0), 0.0, "zero duration guarded");
        assert!(dev.queue_depth_timeline(0.0, 1e6).is_empty());
        assert!(dev.utilization_timeline(-1.0, 1e6).is_empty());
    }

    #[test]
    fn utilization_tracks_media_occupancy() {
        let m = SsdModel::samsung_990_pro();
        let mut dev = DeviceSim::new(m);
        // One read occupies one of 64 units for base_latency_us out of a
        // 4800 µs window: utilization = 48 / (64 * 4800).
        dev.schedule(0.0, 4096);
        let expect = m.base_latency_us / (64.0 * 4800.0);
        assert!((dev.utilization(4800.0) - expect).abs() < 1e-9);
        let tl = dev.utilization_timeline(4800.0, 4800.0);
        assert_eq!(tl.len(), 1);
        assert!((tl[0] - expect).abs() < 1e-9);
        // Saturating all units for the whole window approaches 1.0.
        let mut busy = DeviceSim::new(m);
        let horizon = 10_000.0;
        let mut completions: Vec<f64> = (0..64).map(|_| busy.schedule(0.0, 4096)).collect();
        loop {
            let (i, &t) = completions
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap();
            if t > horizon {
                break;
            }
            completions[i] = busy.schedule(t, 4096);
        }
        let util = busy.utilization(horizon);
        assert!(util > 0.9, "saturated device reads {util}");
    }
}
