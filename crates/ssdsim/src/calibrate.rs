//! An fio-like calibrator: replays the paper's device-characterization
//! workloads (§III-A) against the model and reports the achieved envelope.
//!
//! The three workloads mirror the paper's fio runs on the Samsung 990 Pro:
//!
//! 1. 4 KiB random read, one CPU core, deep queue → single-core IOPS
//!    (paper: 324.3 KIOPS, CPU-bound),
//! 2. 4 KiB random read, 64 concurrent requests over four cores → peak IOPS
//!    (paper: 1.3 MIOPS),
//! 3. 128 KiB sequential read, 32 concurrent threads → peak bandwidth
//!    (paper: 7.2 GiB/s).

use crate::model::{DeviceSim, SsdModel};

/// Runs the calibration workloads against an [`SsdModel`].
#[derive(Debug, Clone)]
pub struct Calibrator {
    model: SsdModel,
    /// Simulated duration of each workload, µs.
    duration_us: f64,
}

impl Calibrator {
    /// Creates a calibrator with a 1-second simulated run per workload.
    pub fn new(model: SsdModel) -> Calibrator {
        Calibrator {
            model,
            duration_us: 1e6,
        }
    }

    /// Overrides the per-workload simulated duration.
    pub fn with_duration_us(mut self, duration_us: f64) -> Calibrator {
        self.duration_us = duration_us.max(1e3);
        self
    }

    /// Runs all three workloads.
    pub fn run(&self) -> CalibrationReport {
        let qd1 = self.closed_loop(1, 1, 4096);
        let single_core = self.closed_loop(1, 64, 4096);
        let four_core = self.closed_loop(4, 64, 4096);
        let seq = self.closed_loop(32, 32, 128 * 1024);
        CalibrationReport {
            model: self.model,
            qd1_latency_us: self.duration_us / qd1.max(1.0) * 1.0,
            qd1_iops: qd1 / (self.duration_us / 1e6),
            single_core_iops: single_core / (self.duration_us / 1e6),
            peak_iops: four_core / (self.duration_us / 1e6),
            seq_bandwidth_gib: (seq * 128.0 * 1024.0)
                / (self.duration_us / 1e6)
                / (1u64 << 30) as f64,
        }
    }

    /// Simulates `cores` CPU cores, each keeping `qd_per_core` requests of
    /// `len` bytes in flight. Submission costs `submit_cpu_us` of the core's
    /// time, so a core can issue at most `1/submit_cpu_us` requests per µs.
    /// Returns completed requests within the duration.
    fn closed_loop(&self, cores: usize, qd_per_core: usize, len: u32) -> f64 {
        let mut dev = DeviceSim::new(self.model);
        // Per-core CPU availability and the in-flight completion times.
        let mut cpu_free = vec![0.0f64; cores];
        // (completion_time, core) for each in-flight request.
        let mut inflight: Vec<(f64, usize)> = Vec::with_capacity(cores * qd_per_core);
        for (core, free_at) in cpu_free.iter_mut().enumerate() {
            for _ in 0..qd_per_core {
                let submit_at = *free_at;
                *free_at += self.model.submit_cpu_us;
                inflight.push((dev.schedule(submit_at, len), core));
            }
        }
        let mut completed = 0f64;
        loop {
            // Pop the earliest completion (linear scan: queue depths here are
            // small, and determinism matters more than asymptotics).
            let (i, &(t, core)) = inflight
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                .unwrap();
            if t > self.duration_us {
                break;
            }
            completed += 1.0;
            // The core resubmits as soon as it has CPU time for it.
            let submit_at = t.max(cpu_free[core]);
            cpu_free[core] = submit_at + self.model.submit_cpu_us;
            inflight[i] = (dev.schedule(submit_at, len), core);
        }
        completed
    }
}

/// The achieved device envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// The model calibrated.
    pub model: SsdModel,
    /// Mean latency at queue depth 1, µs.
    pub qd1_latency_us: f64,
    /// IOPS at queue depth 1.
    pub qd1_iops: f64,
    /// 4 KiB random-read IOPS on one core (deep queue).
    pub single_core_iops: f64,
    /// 4 KiB random-read IOPS over four cores at QD 64.
    pub peak_iops: f64,
    /// 128 KiB sequential-read bandwidth, GiB/s.
    pub seq_bandwidth_gib: f64,
}

impl std::fmt::Display for CalibrationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "device envelope (fio-equivalent workloads)")?;
        writeln!(
            f,
            "  4KiB randread QD1      : {:>10.1} us/op",
            self.qd1_latency_us
        )?;
        writeln!(
            f,
            "  4KiB randread 1 core   : {:>10.1} KIOPS",
            self.single_core_iops / 1e3
        )?;
        writeln!(
            f,
            "  4KiB randread 4 cores  : {:>10.2} MIOPS",
            self.peak_iops / 1e6
        )?;
        write!(
            f,
            "  128KiB seqread 32 thr  : {:>10.2} GiB/s",
            self.seq_bandwidth_gib
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let report = Calibrator::new(SsdModel::samsung_990_pro()).run();
        // Paper: 324.3 KIOPS single core.
        assert!(
            (280e3..340e3).contains(&report.single_core_iops),
            "single-core IOPS {}",
            report.single_core_iops
        );
        // Paper: 1.3 MIOPS with 64 concurrent requests on four cores.
        assert!(
            (1.15e6..1.45e6).contains(&report.peak_iops),
            "peak IOPS {}",
            report.peak_iops
        );
        // Paper: 7.2 GiB/s sequential.
        assert!(
            (6.5..7.4).contains(&report.seq_bandwidth_gib),
            "seq bandwidth {}",
            report.seq_bandwidth_gib
        );
    }

    #[test]
    fn qd1_latency_is_tens_of_microseconds() {
        let report = Calibrator::new(SsdModel::samsung_990_pro()).run();
        assert!(
            (40.0..90.0).contains(&report.qd1_latency_us),
            "QD1 latency {}",
            report.qd1_latency_us
        );
    }

    #[test]
    fn sata_is_slower_than_nvme() {
        let nvme = Calibrator::new(SsdModel::samsung_990_pro()).run();
        let sata = Calibrator::new(SsdModel::sata_ssd()).run();
        assert!(sata.peak_iops < nvme.peak_iops / 4.0);
        assert!(sata.seq_bandwidth_gib < 1.0);
    }

    #[test]
    fn display_is_nonempty() {
        let report = Calibrator::new(SsdModel::samsung_990_pro()).run();
        let text = report.to_string();
        assert!(text.contains("GiB/s"));
        assert!(text.contains("MIOPS"));
    }
}
