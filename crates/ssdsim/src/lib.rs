//! A parametric NVMe SSD model with block-layer tracing.
//!
//! The paper benchmarks a Samsung 990 Pro 4 TiB: 324.3 KIOPS of 4 KiB random
//! reads on a single CPU core, 1.3 MIOPS at 64-deep queues over four cores,
//! and 7.2 GiB/s of 128 KiB sequential reads (Table I / §III-A, measured with
//! fio). This crate substitutes that physical device with a service model
//! whose envelope matches those numbers:
//!
//! * `units` parallel flash channels, each serving one request's media access
//!   at a time (`base_latency_us` per access),
//! * a shared bus that serializes data transfer at `device_bw` bytes/µs,
//! * a per-request host CPU cost (`submit_cpu_us`) that the execution engine
//!   charges to the submitting core — which is what caps single-core IOPS.
//!
//! [`DeviceSim`] applies the model to a stream of timed requests;
//! [`trace::IoTracer`] records every request at the block layer (the
//! bpftrace `block_rq_issue` analog); [`calibrate`] re-runs the paper's fio
//! workloads against the model and prints the achieved envelope;
//! [`pagecache::PageCache`] models the OS page cache the paper flushes
//! before each run.
//!
//! # Examples
//!
//! ```
//! use sann_ssdsim::{DeviceSim, SsdModel};
//!
//! let mut dev = DeviceSim::new(SsdModel::samsung_990_pro());
//! let done = dev.schedule(0.0, 4096);
//! assert!(done > 0.0 && done < 200.0, "a lone 4 KiB read takes tens of µs");
//! ```

pub mod calibrate;
pub mod faults;
pub mod model;
pub mod pagecache;
pub mod trace;

pub use calibrate::{CalibrationReport, Calibrator};
pub use faults::{FaultInjector, FaultProfile, ReadFault, HEDGE_TAG};
pub use model::{DeviceSim, SsdModel};
pub use pagecache::PageCache;
pub use trace::{IoEvent, IoStats, IoTracer, NO_OWNER};
