//! Block-layer I/O tracing — the simulator's analog of the paper's bpftrace
//! probe on `block_rq_issue` (§III-A): for every request issued to the
//! device it records the timestamp, operation, offset, and size.

use sann_core::cast;
use sann_obs::{IoProvenance, Timeline};
use std::collections::BTreeMap;

/// Type of a block request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Block read.
    Read,
    /// Block write.
    Write,
}

/// Owner tag for an [`IoEvent`] recorded outside any span (background
/// writes, warmup traffic, callers that predate span tracing).
pub const NO_OWNER: u64 = u64::MAX;

/// One traced block request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoEvent {
    /// Issue timestamp, µs since experiment start.
    pub time_us: f64,
    /// Operation type.
    pub op: IoOp,
    /// Device byte offset.
    pub offset: u64,
    /// Request size in bytes.
    pub len: u32,
    /// Payload bytes the issuer actually needs out of this request
    /// (`len` minus sector padding; equals `len` for untagged callers).
    pub needed: u32,
    /// What the bytes are — threaded down from the index layer's
    /// [`IoReq`](sann_obs::IoProvenance) tags so block-level accounting
    /// can break down by what each read fetched.
    pub provenance: IoProvenance,
    /// The span that issued this request (a `sann-obs` span id), or
    /// [`NO_OWNER`]. Lets exported timelines nest block I/O under the
    /// owning query.
    pub owner: u64,
}

/// Collects [`IoEvent`]s and derives the paper's I/O statistics.
#[derive(Debug, Clone, Default)]
pub struct IoTracer {
    events: Vec<IoEvent>,
}

impl IoTracer {
    /// Creates an empty tracer.
    pub fn new() -> IoTracer {
        IoTracer::default()
    }

    /// Records a read issue with no owning span.
    pub fn record_read(&mut self, time_us: f64, offset: u64, len: u32) {
        self.record_read_owned(time_us, offset, len, NO_OWNER);
    }

    /// Records a write issue with no owning span.
    pub fn record_write(&mut self, time_us: f64, offset: u64, len: u32) {
        self.record_write_owned(time_us, offset, len, NO_OWNER);
    }

    /// Records a read issue tagged with the owning span (untagged
    /// provenance, every byte needed).
    pub fn record_read_owned(&mut self, time_us: f64, offset: u64, len: u32, owner: u64) {
        self.record_read_tagged(time_us, offset, len, len, IoProvenance::default(), owner);
    }

    /// Records a write issue tagged with the owning span (untagged
    /// provenance, every byte needed).
    pub fn record_write_owned(&mut self, time_us: f64, offset: u64, len: u32, owner: u64) {
        self.record_write_tagged(time_us, offset, len, len, IoProvenance::default(), owner);
    }

    /// Records a fully tagged read issue: provenance plus the payload
    /// bytes the issuer needs out of the fetched `len`.
    pub fn record_read_tagged(
        &mut self,
        time_us: f64,
        offset: u64,
        len: u32,
        needed: u32,
        provenance: IoProvenance,
        owner: u64,
    ) {
        self.events.push(IoEvent {
            time_us,
            op: IoOp::Read,
            offset,
            len,
            needed,
            provenance,
            owner,
        });
    }

    /// Records a fully tagged write issue.
    pub fn record_write_tagged(
        &mut self,
        time_us: f64,
        offset: u64,
        len: u32,
        needed: u32,
        provenance: IoProvenance,
        owner: u64,
    ) {
        self.events.push(IoEvent {
            time_us,
            op: IoOp::Write,
            offset,
            len,
            needed,
            provenance,
            owner,
        });
    }

    /// All events in issue order.
    pub fn events(&self) -> &[IoEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Derives summary statistics.
    pub fn stats(&self) -> IoStats {
        let mut size_histogram = BTreeMap::new();
        let mut read_bytes = 0u64;
        let mut write_bytes = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut needed_read_bytes = 0u64;
        let mut prov_reads = [0u64; IoProvenance::COUNT];
        let mut prov_read_bytes = [0u64; IoProvenance::COUNT];
        for e in &self.events {
            *size_histogram.entry(e.len).or_insert(0u64) += 1;
            match e.op {
                IoOp::Read => {
                    reads += 1;
                    read_bytes += e.len as u64;
                    needed_read_bytes += u64::from(e.needed);
                    prov_reads[e.provenance.index()] += 1;
                    prov_read_bytes[e.provenance.index()] += u64::from(e.len);
                }
                IoOp::Write => {
                    writes += 1;
                    write_bytes += e.len as u64;
                }
            }
        }
        IoStats {
            reads,
            writes,
            read_bytes,
            write_bytes,
            needed_read_bytes,
            prov_reads,
            prov_read_bytes,
            size_histogram,
        }
    }

    /// Per-second read bandwidth series in MiB/s — the series plotted in the
    /// paper's Fig. 5. `duration_us` fixes the number of buckets (a trailing
    /// partial second is scaled by its actual width).
    pub fn bandwidth_timeline(&self, duration_us: f64) -> Vec<f64> {
        // The trailing-partial-bucket width lives in `sann_obs::Timeline`,
        // shared with the iostat queue-depth/utilization series.
        let Some(mut tl) = Timeline::new(duration_us, 1e6) else {
            return Vec::new();
        };
        for e in &self.events {
            if e.op != IoOp::Read || e.time_us < 0.0 || e.time_us >= duration_us {
                continue;
            }
            tl.record(e.time_us, e.len as f64);
        }
        tl.rates_per_s()
            .iter()
            .map(|b| b / (1 << 20) as f64)
            .collect()
    }

    /// Per-4-KiB-page device-read access counts (page index = byte offset
    /// / 4096; a 128 KiB request touches 32 pages). The raw heat map
    /// behind the hot-page-skew metric.
    pub fn page_heat(&self) -> BTreeMap<u64, u64> {
        let mut heat = BTreeMap::new();
        for e in &self.events {
            if e.op != IoOp::Read {
                continue;
            }
            let first = e.offset / 4096;
            let last = (e.offset + u64::from(e.len.max(1)) - 1) / 4096;
            for page in first..=last {
                *heat.entry(page).or_insert(0u64) += 1;
            }
        }
        heat
    }

    /// Hot-page skew: the fraction of page accesses served by the hottest
    /// 10 % of touched pages (0.1 = perfectly uniform, → 1.0 = a few pages
    /// absorb everything). 0.0 when no reads were traced.
    pub fn hot_page_skew(&self) -> f64 {
        let heat = self.page_heat();
        if heat.is_empty() {
            return 0.0;
        }
        let mut counts: Vec<u64> = heat.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top = counts.len().div_ceil(10);
        let hot: u64 = counts[..top].iter().sum();
        cast::f64_from_u64(hot) / cast::f64_from_u64(total)
    }

    /// Mean read bandwidth in MiB/s over `duration_us`.
    pub fn mean_read_bandwidth(&self, duration_us: f64) -> f64 {
        if duration_us <= 0.0 {
            return 0.0;
        }
        let bytes: u64 = self
            .events
            .iter()
            .filter(|e| e.op == IoOp::Read)
            .map(|e| e.len as u64)
            .sum();
        bytes as f64 / (1 << 20) as f64 / (duration_us / 1e6)
    }

    /// Clears all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoStats {
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Total bytes read.
    pub read_bytes: u64,
    /// Total bytes written.
    pub write_bytes: u64,
    /// Payload bytes the issuers actually needed out of `read_bytes`
    /// (read amplification denominator).
    pub needed_read_bytes: u64,
    /// Read-request counts per provenance tag, indexed by
    /// [`IoProvenance::index`]. Sums to `reads` exactly (the engine's
    /// provenance-conservation tests audit this end to end).
    pub prov_reads: [u64; IoProvenance::COUNT],
    /// Read bytes per provenance tag; sums to `read_bytes` exactly.
    pub prov_read_bytes: [u64; IoProvenance::COUNT],
    /// Request-size histogram (size → count), both ops combined.
    pub size_histogram: BTreeMap<u32, u64>,
}

impl IoStats {
    /// Read amplification: bytes fetched from the device over bytes the
    /// searches actually needed (≥ 1 for any tagged workload; 0.0 when no
    /// bytes were needed, i.e. no reads were traced).
    pub fn read_amplification(&self) -> f64 {
        if self.needed_read_bytes == 0 {
            return 0.0;
        }
        cast::f64_from_u64(self.read_bytes) / cast::f64_from_u64(self.needed_read_bytes)
    }

    /// Fraction of requests with size exactly `len` (the paper's O-15 checks
    /// this for 4 KiB).
    pub fn size_fraction(&self, len: u32) -> f64 {
        let total: u64 = self.size_histogram.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.size_histogram.get(&len).unwrap_or(&0) as f64 / total as f64
    }

    /// The exact size→count map folded into the shared log₂ bucketing
    /// ([`sann_obs::hist::bucket_index`]). Because Fig. 6 and every
    /// exported trace derive their buckets from this one scheme, they
    /// cannot drift apart.
    pub fn size_log_histogram(&self) -> sann_obs::LogHistogram {
        let mut h = sann_obs::LogHistogram::new();
        for (&size, &count) in &self.size_histogram {
            h.record_n(size as u64, count);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tracer() -> IoTracer {
        let mut t = IoTracer::new();
        t.record_read(100.0, 0, 4096);
        t.record_read(1_500_000.0, 4096, 4096);
        t.record_read(1_600_000.0, 8192, 8192);
        t.record_write(2_000_000.0, 0, 4096);
        t
    }

    #[test]
    fn stats_aggregate_correctly() {
        let stats = sample_tracer().stats();
        assert_eq!(stats.reads, 3);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.read_bytes, 4096 + 4096 + 8192);
        assert_eq!(stats.write_bytes, 4096);
        assert_eq!(stats.size_histogram[&4096], 3);
        assert_eq!(stats.size_histogram[&8192], 1);
    }

    #[test]
    fn size_fraction_matches() {
        let stats = sample_tracer().stats();
        assert!((stats.size_fraction(4096) - 0.75).abs() < 1e-12);
        assert_eq!(stats.size_fraction(1234), 0.0);
    }

    #[test]
    fn timeline_buckets_by_second() {
        let t = sample_tracer();
        let tl = t.bandwidth_timeline(3e6);
        assert_eq!(tl.len(), 3);
        assert!((tl[0] - 4096.0 / (1 << 20) as f64).abs() < 1e-9);
        assert!((tl[1] - (4096.0 + 8192.0) / (1 << 20) as f64).abs() < 1e-9);
        assert_eq!(tl[2], 0.0, "writes are excluded from read bandwidth");
    }

    #[test]
    fn timeline_partial_last_bucket_scales() {
        let mut t = IoTracer::new();
        t.record_read(0.0, 0, 1 << 20); // 1 MiB in the first half-second
        let tl = t.bandwidth_timeline(0.5e6);
        assert_eq!(tl.len(), 1);
        assert!(
            (tl[0] - 2.0).abs() < 1e-9,
            "1 MiB in 0.5 s = 2 MiB/s, got {}",
            tl[0]
        );
    }

    #[test]
    fn mean_bandwidth() {
        let t = sample_tracer();
        let mean = t.mean_read_bandwidth(2e6);
        let expect = (4096.0 + 4096.0 + 8192.0) / (1 << 20) as f64 / 2.0;
        assert!((mean - expect).abs() < 1e-9);
        assert_eq!(t.mean_read_bandwidth(0.0), 0.0);
    }

    #[test]
    fn clear_empties() {
        let mut t = sample_tracer();
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn owner_tags_flow_through() {
        let mut t = IoTracer::new();
        t.record_read(0.0, 0, 4096);
        t.record_read_owned(1.0, 4096, 4096, 17);
        t.record_write_owned(2.0, 8192, 512, 17);
        assert_eq!(t.events()[0].owner, NO_OWNER);
        assert_eq!(t.events()[1].owner, 17);
        assert_eq!(t.events()[2].owner, 17);
        // Owner tags are metadata: aggregate stats are unchanged.
        assert_eq!(t.stats().reads, 2);
    }

    #[test]
    fn size_log_histogram_uses_shared_buckets() {
        let stats = sample_tracer().stats();
        let h = stats.size_log_histogram();
        assert_eq!(h.count(), 4);
        // All three 4096-byte requests share the bucket whose floor is
        // 4096 under the scheme defined once in sann-obs.
        assert_eq!(
            sann_obs::hist::bucket_floor(sann_obs::hist::bucket_index(4096)),
            4096
        );
        assert_eq!(h.nonzero_buckets(), vec![(4096, 3), (8192, 1)]);
    }

    #[test]
    fn zero_event_size_fraction_is_zero() {
        // Satellite guard: an empty trace must not divide by zero.
        let stats = IoTracer::new().stats();
        assert_eq!(stats.size_fraction(4096), 0.0);
        assert_eq!(stats.reads, 0);
        assert_eq!(stats.read_amplification(), 0.0);
    }

    #[test]
    fn zero_duration_bandwidth_is_guarded() {
        // Satellite guard: zero / negative duration yields 0.0 and an
        // empty timeline instead of a NaN or a panic.
        let t = sample_tracer();
        assert_eq!(t.mean_read_bandwidth(0.0), 0.0);
        assert_eq!(t.mean_read_bandwidth(-5.0), 0.0);
        assert!(t.bandwidth_timeline(0.0).is_empty());
        assert!(t.bandwidth_timeline(-1.0).is_empty());
        // And an empty tracer over a real window reads 0 MiB/s.
        assert_eq!(IoTracer::new().mean_read_bandwidth(1e6), 0.0);
    }

    #[test]
    fn provenance_tags_aggregate_per_tag() {
        let mut t = IoTracer::new();
        t.record_read_tagged(0.0, 0, 4096, 3332, IoProvenance::GraphAdjacency, 1);
        t.record_read_tagged(1.0, 4096, 4096, 3332, IoProvenance::GraphAdjacency, 1);
        t.record_read_tagged(2.0, 8192, 8192, 6000, IoProvenance::PqCodes, 2);
        t.record_write_tagged(3.0, 0, 4096, 4096, IoProvenance::GraphAdjacency, 1);
        let stats = t.stats();
        assert_eq!(stats.prov_reads[IoProvenance::GraphAdjacency.index()], 2);
        assert_eq!(stats.prov_reads[IoProvenance::PqCodes.index()], 1);
        assert_eq!(
            stats.prov_read_bytes[IoProvenance::GraphAdjacency.index()],
            8192
        );
        // Conservation: per-tag totals sum exactly to the raw totals.
        assert_eq!(stats.prov_reads.iter().sum::<u64>(), stats.reads);
        assert_eq!(stats.prov_read_bytes.iter().sum::<u64>(), stats.read_bytes);
        // Writes do not leak into the read breakdown.
        assert_eq!(stats.write_bytes, 4096);
        // Read amplification: fetched / needed.
        let expect = (4096.0 + 4096.0 + 8192.0) / (3332.0 + 3332.0 + 6000.0);
        assert!((stats.read_amplification() - expect).abs() < 1e-12);
    }

    #[test]
    fn untagged_reads_default_to_metadata_with_full_need() {
        let stats = sample_tracer().stats();
        assert_eq!(
            stats.prov_reads[IoProvenance::Metadata.index()],
            stats.reads
        );
        assert_eq!(stats.needed_read_bytes, stats.read_bytes);
        assert!((stats.read_amplification() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn page_heat_counts_every_touched_page() {
        let mut t = IoTracer::new();
        t.record_read(0.0, 0, 4096);
        t.record_read(1.0, 0, 4096);
        t.record_read(2.0, 8192, 8192); // pages 2 and 3
        t.record_write(3.0, 0, 4096); // writes are not read heat
        let heat = t.page_heat();
        assert_eq!(heat[&0], 2);
        assert_eq!(heat[&2], 1);
        assert_eq!(heat[&3], 1);
        assert_eq!(heat.len(), 3);
    }

    #[test]
    fn hot_page_skew_separates_uniform_from_skewed() {
        // Uniform: 20 pages touched once each → top 10% holds 2/20.
        let mut uniform = IoTracer::new();
        for i in 0..20u64 {
            uniform.record_read(i as f64, i * 4096, 4096);
        }
        assert!((uniform.hot_page_skew() - 0.1).abs() < 1e-12);
        // Skewed: one page absorbs most accesses.
        let mut skewed = IoTracer::new();
        for i in 0..20u64 {
            skewed.record_read(i as f64, 0, 4096);
        }
        for i in 0..5u64 {
            skewed.record_read(100.0 + i as f64, (i + 1) * 4096, 4096);
        }
        assert!(skewed.hot_page_skew() > 0.7);
        // Empty trace: no skew, not NaN.
        assert_eq!(IoTracer::new().hot_page_skew(), 0.0);
    }

    #[test]
    fn out_of_window_events_are_ignored_by_timeline() {
        let mut t = IoTracer::new();
        t.record_read(5e6, 0, 4096);
        let tl = t.bandwidth_timeline(1e6);
        assert_eq!(tl, vec![0.0]);
    }
}
