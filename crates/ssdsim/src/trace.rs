//! Block-layer I/O tracing — the simulator's analog of the paper's bpftrace
//! probe on `block_rq_issue` (§III-A): for every request issued to the
//! device it records the timestamp, operation, offset, and size.

use std::collections::BTreeMap;

/// Type of a block request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Block read.
    Read,
    /// Block write.
    Write,
}

/// Owner tag for an [`IoEvent`] recorded outside any span (background
/// writes, warmup traffic, callers that predate span tracing).
pub const NO_OWNER: u64 = u64::MAX;

/// One traced block request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoEvent {
    /// Issue timestamp, µs since experiment start.
    pub time_us: f64,
    /// Operation type.
    pub op: IoOp,
    /// Device byte offset.
    pub offset: u64,
    /// Request size in bytes.
    pub len: u32,
    /// The span that issued this request (a `sann-obs` span id), or
    /// [`NO_OWNER`]. Lets exported timelines nest block I/O under the
    /// owning query.
    pub owner: u64,
}

/// Collects [`IoEvent`]s and derives the paper's I/O statistics.
#[derive(Debug, Clone, Default)]
pub struct IoTracer {
    events: Vec<IoEvent>,
}

impl IoTracer {
    /// Creates an empty tracer.
    pub fn new() -> IoTracer {
        IoTracer::default()
    }

    /// Records a read issue with no owning span.
    pub fn record_read(&mut self, time_us: f64, offset: u64, len: u32) {
        self.record_read_owned(time_us, offset, len, NO_OWNER);
    }

    /// Records a write issue with no owning span.
    pub fn record_write(&mut self, time_us: f64, offset: u64, len: u32) {
        self.record_write_owned(time_us, offset, len, NO_OWNER);
    }

    /// Records a read issue tagged with the owning span.
    pub fn record_read_owned(&mut self, time_us: f64, offset: u64, len: u32, owner: u64) {
        self.events.push(IoEvent {
            time_us,
            op: IoOp::Read,
            offset,
            len,
            owner,
        });
    }

    /// Records a write issue tagged with the owning span.
    pub fn record_write_owned(&mut self, time_us: f64, offset: u64, len: u32, owner: u64) {
        self.events.push(IoEvent {
            time_us,
            op: IoOp::Write,
            offset,
            len,
            owner,
        });
    }

    /// All events in issue order.
    pub fn events(&self) -> &[IoEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Derives summary statistics.
    pub fn stats(&self) -> IoStats {
        let mut size_histogram = BTreeMap::new();
        let mut read_bytes = 0u64;
        let mut write_bytes = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        for e in &self.events {
            *size_histogram.entry(e.len).or_insert(0u64) += 1;
            match e.op {
                IoOp::Read => {
                    reads += 1;
                    read_bytes += e.len as u64;
                }
                IoOp::Write => {
                    writes += 1;
                    write_bytes += e.len as u64;
                }
            }
        }
        IoStats {
            reads,
            writes,
            read_bytes,
            write_bytes,
            size_histogram,
        }
    }

    /// Per-second read bandwidth series in MiB/s — the series plotted in the
    /// paper's Fig. 5. `duration_us` fixes the number of buckets (a trailing
    /// partial second is scaled by its actual width).
    pub fn bandwidth_timeline(&self, duration_us: f64) -> Vec<f64> {
        if duration_us <= 0.0 {
            return Vec::new();
        }
        let n_buckets = (duration_us / 1e6).ceil() as usize;
        let mut bytes = vec![0u64; n_buckets];
        for e in &self.events {
            if e.op != IoOp::Read || e.time_us < 0.0 || e.time_us >= duration_us {
                continue;
            }
            bytes[(e.time_us / 1e6) as usize] += e.len as u64;
        }
        bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let width_us = if i + 1 == n_buckets {
                    duration_us - i as f64 * 1e6
                } else {
                    1e6
                };
                b as f64 / (1 << 20) as f64 / (width_us / 1e6)
            })
            .collect()
    }

    /// Mean read bandwidth in MiB/s over `duration_us`.
    pub fn mean_read_bandwidth(&self, duration_us: f64) -> f64 {
        if duration_us <= 0.0 {
            return 0.0;
        }
        let bytes: u64 = self
            .events
            .iter()
            .filter(|e| e.op == IoOp::Read)
            .map(|e| e.len as u64)
            .sum();
        bytes as f64 / (1 << 20) as f64 / (duration_us / 1e6)
    }

    /// Clears all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoStats {
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Total bytes read.
    pub read_bytes: u64,
    /// Total bytes written.
    pub write_bytes: u64,
    /// Request-size histogram (size → count), both ops combined.
    pub size_histogram: BTreeMap<u32, u64>,
}

impl IoStats {
    /// Fraction of requests with size exactly `len` (the paper's O-15 checks
    /// this for 4 KiB).
    pub fn size_fraction(&self, len: u32) -> f64 {
        let total: u64 = self.size_histogram.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.size_histogram.get(&len).unwrap_or(&0) as f64 / total as f64
    }

    /// The exact size→count map folded into the shared log₂ bucketing
    /// ([`sann_obs::hist::bucket_index`]). Because Fig. 6 and every
    /// exported trace derive their buckets from this one scheme, they
    /// cannot drift apart.
    pub fn size_log_histogram(&self) -> sann_obs::LogHistogram {
        let mut h = sann_obs::LogHistogram::new();
        for (&size, &count) in &self.size_histogram {
            h.record_n(size as u64, count);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tracer() -> IoTracer {
        let mut t = IoTracer::new();
        t.record_read(100.0, 0, 4096);
        t.record_read(1_500_000.0, 4096, 4096);
        t.record_read(1_600_000.0, 8192, 8192);
        t.record_write(2_000_000.0, 0, 4096);
        t
    }

    #[test]
    fn stats_aggregate_correctly() {
        let stats = sample_tracer().stats();
        assert_eq!(stats.reads, 3);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.read_bytes, 4096 + 4096 + 8192);
        assert_eq!(stats.write_bytes, 4096);
        assert_eq!(stats.size_histogram[&4096], 3);
        assert_eq!(stats.size_histogram[&8192], 1);
    }

    #[test]
    fn size_fraction_matches() {
        let stats = sample_tracer().stats();
        assert!((stats.size_fraction(4096) - 0.75).abs() < 1e-12);
        assert_eq!(stats.size_fraction(1234), 0.0);
    }

    #[test]
    fn timeline_buckets_by_second() {
        let t = sample_tracer();
        let tl = t.bandwidth_timeline(3e6);
        assert_eq!(tl.len(), 3);
        assert!((tl[0] - 4096.0 / (1 << 20) as f64).abs() < 1e-9);
        assert!((tl[1] - (4096.0 + 8192.0) / (1 << 20) as f64).abs() < 1e-9);
        assert_eq!(tl[2], 0.0, "writes are excluded from read bandwidth");
    }

    #[test]
    fn timeline_partial_last_bucket_scales() {
        let mut t = IoTracer::new();
        t.record_read(0.0, 0, 1 << 20); // 1 MiB in the first half-second
        let tl = t.bandwidth_timeline(0.5e6);
        assert_eq!(tl.len(), 1);
        assert!(
            (tl[0] - 2.0).abs() < 1e-9,
            "1 MiB in 0.5 s = 2 MiB/s, got {}",
            tl[0]
        );
    }

    #[test]
    fn mean_bandwidth() {
        let t = sample_tracer();
        let mean = t.mean_read_bandwidth(2e6);
        let expect = (4096.0 + 4096.0 + 8192.0) / (1 << 20) as f64 / 2.0;
        assert!((mean - expect).abs() < 1e-9);
        assert_eq!(t.mean_read_bandwidth(0.0), 0.0);
    }

    #[test]
    fn clear_empties() {
        let mut t = sample_tracer();
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn owner_tags_flow_through() {
        let mut t = IoTracer::new();
        t.record_read(0.0, 0, 4096);
        t.record_read_owned(1.0, 4096, 4096, 17);
        t.record_write_owned(2.0, 8192, 512, 17);
        assert_eq!(t.events()[0].owner, NO_OWNER);
        assert_eq!(t.events()[1].owner, 17);
        assert_eq!(t.events()[2].owner, 17);
        // Owner tags are metadata: aggregate stats are unchanged.
        assert_eq!(t.stats().reads, 2);
    }

    #[test]
    fn size_log_histogram_uses_shared_buckets() {
        let stats = sample_tracer().stats();
        let h = stats.size_log_histogram();
        assert_eq!(h.count(), 4);
        // All three 4096-byte requests share the bucket whose floor is
        // 4096 under the scheme defined once in sann-obs.
        assert_eq!(
            sann_obs::hist::bucket_floor(sann_obs::hist::bucket_index(4096)),
            4096
        );
        assert_eq!(h.nonzero_buckets(), vec![(4096, 3), (8192, 1)]);
    }

    #[test]
    fn out_of_window_events_are_ignored_by_timeline() {
        let mut t = IoTracer::new();
        t.record_read(5e6, 0, 4096);
        let tl = t.bandwidth_timeline(1e6);
        assert_eq!(tl, vec![0.0]);
    }
}
