//! Deterministic fault injection for the SSD service model.
//!
//! A [`FaultProfile`] names a device-misbehavior envelope (transient read
//! errors, latency spikes, periodic GC pauses, sustained throttling). A
//! [`FaultInjector`] turns the profile plus the run's seed into per-request
//! fault outcomes.
//!
//! Determinism is the whole point: the outcome of a read attempt depends
//! only on `(seed, query uid, request index, attempt tag)` — never on the
//! global order in which I/Os reach the device. Two runs with the same seed
//! produce byte-identical fault schedules, and a request retried at a
//! different simulated time still observes the same per-attempt coin flips.
//! This is what lets the xtask determinism audit byte-diff faulted runs and
//! what makes deadline/retry sweeps comparable across configurations.

use sann_core::rng::SplitMix64;

/// A named device-misbehavior envelope.
///
/// `none()` disables every perturbation; the engine keeps its fault-free
/// fast path in that case, so a `none` run is byte-identical to a build
/// without the fault layer at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Short name used by `--fault-profile` and reports.
    pub name: &'static str,
    /// Probability that a read attempt fails with a transient error after
    /// consuming its (possibly inflated) service time.
    pub read_error_prob: f64,
    /// Probability that a read attempt suffers a latency spike.
    pub spike_prob: f64,
    /// Minimum extra media latency of a spike, µs.
    pub spike_min_us: f64,
    /// Maximum extra media latency of a spike, µs.
    pub spike_max_us: f64,
    /// Period of the background garbage-collection cycle, µs (0 = no GC).
    pub gc_period_us: f64,
    /// Duration of the GC pause at the start of each cycle, µs. Reads
    /// arriving inside the pause window stall until it ends.
    pub gc_pause_us: f64,
    /// Sustained media-latency multiplier (1.0 = healthy). Models an aging
    /// or thermally throttled device; applied to every read attempt.
    pub throttle_factor: f64,
}

impl FaultProfile {
    /// The healthy device: no perturbation of any kind.
    pub fn none() -> FaultProfile {
        FaultProfile {
            name: "none",
            read_error_prob: 0.0,
            spike_prob: 0.0,
            spike_min_us: 0.0,
            spike_max_us: 0.0,
            gc_period_us: 0.0,
            gc_pause_us: 0.0,
            throttle_factor: 1.0,
        }
    }

    /// A worn device: sustained 1.6× media slowdown plus occasional mild
    /// spikes, no errors.
    pub fn aging() -> FaultProfile {
        FaultProfile {
            name: "aging",
            read_error_prob: 0.0,
            spike_prob: 0.02,
            spike_min_us: 100.0,
            spike_max_us: 400.0,
            gc_period_us: 0.0,
            gc_pause_us: 0.0,
            throttle_factor: 1.6,
        }
    }

    /// Aggressive background garbage collection: every 5 ms the device
    /// stalls new reads for 800 µs, with mild spiking in between.
    pub fn gc_heavy() -> FaultProfile {
        FaultProfile {
            name: "gc-heavy",
            read_error_prob: 0.0,
            spike_prob: 0.01,
            spike_min_us: 150.0,
            spike_max_us: 600.0,
            gc_period_us: 5_000.0,
            gc_pause_us: 800.0,
            throttle_factor: 1.0,
        }
    }

    /// A misbehaving device: transient read errors, frequent heavy spikes,
    /// and mild throttling. Exercises the full retry/hedge/deadline path.
    pub fn flaky() -> FaultProfile {
        FaultProfile {
            name: "flaky",
            read_error_prob: 0.05,
            spike_prob: 0.08,
            spike_min_us: 200.0,
            spike_max_us: 2_000.0,
            gc_period_us: 0.0,
            gc_pause_us: 0.0,
            throttle_factor: 1.2,
        }
    }

    /// All built-in profiles, in documentation order.
    pub fn all() -> [FaultProfile; 4] {
        [
            FaultProfile::none(),
            FaultProfile::aging(),
            FaultProfile::gc_heavy(),
            FaultProfile::flaky(),
        ]
    }

    /// Looks up a built-in profile by name.
    pub fn parse(name: &str) -> Option<FaultProfile> {
        FaultProfile::all().into_iter().find(|p| p.name == name)
    }

    /// Whether the profile can perturb any request. `false` means the
    /// engine may keep its fault-free fast path.
    pub fn active(&self) -> bool {
        self.read_error_prob > 0.0
            || self.spike_prob > 0.0
            || (self.gc_period_us > 0.0 && self.gc_pause_us > 0.0)
            || self.throttle_factor != 1.0
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

/// The fault outcome of one read attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadFault {
    /// Extra media latency to add to the device's base read latency, µs
    /// (throttle + spike + GC stall combined).
    pub extra_us: f64,
    /// Whether a latency spike fired.
    pub spiked: bool,
    /// Whether the attempt fails with a transient read error. The attempt
    /// still consumes device time; the host sees the error only at
    /// completion.
    pub error: bool,
    /// Portion of `extra_us` owed to a GC pause, µs.
    pub gc_stall_us: f64,
}

impl ReadFault {
    /// The no-fault outcome.
    pub fn clean() -> ReadFault {
        ReadFault {
            extra_us: 0.0,
            spiked: false,
            error: false,
            gc_stall_us: 0.0,
        }
    }
}

/// Tag space reserved for hedged (duplicate) attempts so a hedge never
/// replays the primary attempt's coin flips.
pub const HEDGE_TAG: u64 = 0x8000_0000;

/// Derives per-attempt fault outcomes from a profile and the run seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    profile: FaultProfile,
    /// Root RNG; children are split off per (uid, req, attempt), never
    /// advanced in place, so outcomes are order-independent.
    base: SplitMix64,
    /// The device's healthy media read latency, µs (throttle baseline).
    base_media_us: f64,
}

impl FaultInjector {
    /// Creates an injector for `profile` under the run's `seed`.
    /// `base_media_us` is the device's healthy read media latency (the
    /// throttle multiplier applies to it).
    pub fn new(profile: FaultProfile, seed: u64, base_media_us: f64) -> FaultInjector {
        FaultInjector {
            profile,
            base: SplitMix64::new(seed ^ 0xFA17_5EED_D15C_0BAD),
            base_media_us,
        }
    }

    /// The profile in use.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Extra stall for a read arriving at `arrival_us` caused by the
    /// periodic GC pause, µs. Pure function of arrival time: requests
    /// arriving `pos` µs into a cycle stall until the pause window
    /// (`gc_pause_us` long) ends.
    pub fn gc_stall_us(&self, arrival_us: f64) -> f64 {
        let (period, pause) = (self.profile.gc_period_us, self.profile.gc_pause_us);
        if period <= 0.0 || pause <= 0.0 {
            return 0.0;
        }
        let pos = arrival_us.rem_euclid(period);
        if pos < pause {
            pause - pos
        } else {
            0.0
        }
    }

    /// Draws the fault outcome for one read attempt.
    ///
    /// * `uid` — the engine-wide query uid,
    /// * `req` — the request's index within its query plan,
    /// * `attempt` — retry ordinal (0 = first try); hedged duplicates pass
    ///   `HEDGE_TAG | attempt` so they draw from a disjoint stream,
    /// * `arrival_us` — when the attempt reaches the device (GC phase).
    pub fn draw(&self, uid: u64, req: u64, attempt: u64, arrival_us: f64) -> ReadFault {
        if !self.profile.active() {
            return ReadFault::clean();
        }
        let mut rng = self.base.split(uid).split(req).split(attempt);
        let mut fault = ReadFault::clean();
        fault.extra_us += self.base_media_us * (self.profile.throttle_factor - 1.0);
        if self.profile.spike_prob > 0.0 && rng.next_f64() < self.profile.spike_prob {
            fault.spiked = true;
            let span = self.profile.spike_max_us - self.profile.spike_min_us;
            fault.extra_us += self.profile.spike_min_us + rng.next_f64() * span;
        }
        if self.profile.read_error_prob > 0.0 && rng.next_f64() < self.profile.read_error_prob {
            fault.error = true;
        }
        fault.gc_stall_us = self.gc_stall_us(arrival_us);
        fault.extra_us += fault.gc_stall_us;
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_preset() {
        for p in FaultProfile::all() {
            assert_eq!(FaultProfile::parse(p.name), Some(p));
        }
        assert_eq!(FaultProfile::parse("bogus"), None);
    }

    #[test]
    fn none_is_inactive_and_others_are_active() {
        assert!(!FaultProfile::none().active());
        assert!(FaultProfile::aging().active());
        assert!(FaultProfile::gc_heavy().active());
        assert!(FaultProfile::flaky().active());
    }

    #[test]
    fn none_profile_draws_clean() {
        let inj = FaultInjector::new(FaultProfile::none(), 42, 48.0);
        for req in 0..100 {
            assert_eq!(inj.draw(7, req, 0, req as f64 * 13.0), ReadFault::clean());
        }
    }

    #[test]
    fn draws_are_order_independent_and_seed_deterministic() {
        let a = FaultInjector::new(FaultProfile::flaky(), 99, 48.0);
        let b = FaultInjector::new(FaultProfile::flaky(), 99, 48.0);
        // Same identities, drawn in different orders, give the same faults.
        let fwd: Vec<ReadFault> = (0..64).map(|r| a.draw(3, r, 1, 0.0)).collect();
        let rev: Vec<ReadFault> = (0..64).rev().map(|r| b.draw(3, r, 1, 0.0)).collect();
        let rev: Vec<ReadFault> = rev.into_iter().rev().collect();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultInjector::new(FaultProfile::flaky(), 1, 48.0);
        let b = FaultInjector::new(FaultProfile::flaky(), 2, 48.0);
        let fa: Vec<ReadFault> = (0..256).map(|r| a.draw(0, r, 0, 0.0)).collect();
        let fb: Vec<ReadFault> = (0..256).map(|r| b.draw(0, r, 0, 0.0)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn hedge_tag_gives_a_distinct_stream() {
        let inj = FaultInjector::new(FaultProfile::flaky(), 5, 48.0);
        let primary: Vec<ReadFault> = (0..256).map(|r| inj.draw(1, r, 0, 0.0)).collect();
        let hedged: Vec<ReadFault> = (0..256).map(|r| inj.draw(1, r, HEDGE_TAG, 0.0)).collect();
        assert_ne!(primary, hedged);
    }

    #[test]
    fn gc_window_is_periodic_and_pure() {
        let inj = FaultInjector::new(FaultProfile::gc_heavy(), 0, 48.0);
        let p = FaultProfile::gc_heavy();
        // Inside the pause: stalls to the end of the window.
        assert!((inj.gc_stall_us(0.0) - p.gc_pause_us).abs() < 1e-9);
        assert!((inj.gc_stall_us(100.0) - (p.gc_pause_us - 100.0)).abs() < 1e-9);
        // Outside: no stall.
        assert_eq!(inj.gc_stall_us(p.gc_pause_us + 1.0), 0.0);
        // Periodic.
        assert_eq!(
            inj.gc_stall_us(37.0),
            inj.gc_stall_us(37.0 + 3.0 * p.gc_period_us)
        );
    }

    #[test]
    fn throttle_adds_constant_extra() {
        let inj = FaultInjector::new(FaultProfile::aging(), 11, 48.0);
        let expected = 48.0 * (FaultProfile::aging().throttle_factor - 1.0);
        // Draw until one without a spike; its extra is pure throttle.
        let f = (0..1000)
            .map(|r| inj.draw(0, r, 0, 0.0))
            .find(|f| !f.spiked)
            .expect("some draw without a spike");
        assert!((f.extra_us - expected).abs() < 1e-9, "extra {}", f.extra_us);
    }

    #[test]
    fn error_rate_tracks_probability() {
        let inj = FaultInjector::new(FaultProfile::flaky(), 1234, 48.0);
        let n = 20_000u64;
        let errors = (0..n).filter(|&r| inj.draw(0, r, 0, 0.0).error).count();
        let rate = errors as f64 / n as f64;
        let p = FaultProfile::flaky().read_error_prob;
        assert!(
            (rate - p).abs() < 0.01,
            "observed error rate {rate}, want ~{p}"
        );
    }

    #[test]
    fn spike_extra_stays_in_bounds() {
        let p = FaultProfile::flaky();
        let inj = FaultInjector::new(p, 77, 48.0);
        let throttle = 48.0 * (p.throttle_factor - 1.0);
        let mut spikes = 0;
        for r in 0..5_000 {
            let f = inj.draw(2, r, 0, 0.0);
            if f.spiked {
                spikes += 1;
                let spike = f.extra_us - throttle;
                assert!(
                    spike >= p.spike_min_us && spike <= p.spike_max_us,
                    "spike {spike} outside [{}, {}]",
                    p.spike_min_us,
                    p.spike_max_us
                );
            }
        }
        assert!(spikes > 0, "flaky profile never spiked in 5000 draws");
    }
}
