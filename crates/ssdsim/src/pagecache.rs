//! An LRU page cache over 4 KiB pages — the OS page cache the paper flushes
//! (`sync; echo 1 > /proc/sys/vm/drop_caches`) before each run (§III-B).

use std::collections::BTreeMap;

/// Page size (matches the device sector and the x86 page).
pub const PAGE_BYTES: u64 = 4096;

/// A fixed-capacity LRU cache of device pages.
///
/// The cache answers, per request, which of its pages hit and which must be
/// fetched from the device; the execution engine only sends misses to the
/// [`crate::DeviceSim`].
#[derive(Debug)]
pub struct PageCache {
    capacity_pages: usize,
    /// page id -> LRU stamp.
    pages: BTreeMap<u64, u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// Creates a cache with room for `capacity_bytes / 4096` pages. A
    /// capacity of zero disables caching (everything misses), which models
    /// direct I/O.
    pub fn new(capacity_bytes: u64) -> PageCache {
        PageCache {
            capacity_pages: (capacity_bytes / PAGE_BYTES) as usize,
            pages: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses a byte range; returns the number of pages that missed (and
    /// were inserted). `0` means the whole range was cached.
    pub fn access(&mut self, offset: u64, len: u32) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = offset / PAGE_BYTES;
        let last = (offset + len as u64 - 1) / PAGE_BYTES;
        let mut missed = 0;
        for page in first..=last {
            self.clock += 1;
            if self.capacity_pages == 0 {
                self.misses += 1;
                missed += 1;
                continue;
            }
            if let Some(stamp) = self.pages.get_mut(&page) {
                *stamp = self.clock;
                self.hits += 1;
            } else {
                self.misses += 1;
                missed += 1;
                if self.pages.len() >= self.capacity_pages {
                    // Evict the least recently used page.
                    if let Some((&victim, _)) = self.pages.iter().min_by_key(|(_, &s)| s) {
                        self.pages.remove(&victim);
                    }
                }
                self.pages.insert(page, self.clock);
            }
        }
        missed
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the cache holds no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Cache hits so far (page granularity).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (page granularity).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every cached page — the paper's
    /// `echo 1 > /proc/sys/vm/drop_caches` between runs. Counters survive.
    pub fn drop_caches(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = PageCache::new(1 << 20);
        assert_eq!(c.access(0, 4096), 1);
        assert_eq!(c.access(0, 4096), 0);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn range_spanning_pages_counts_each_page() {
        let mut c = PageCache::new(1 << 20);
        // 10 KiB starting mid-page touches pages 0,1,2.
        assert_eq!(c.access(2048, 10 * 1024), 3);
        assert_eq!(c.access(0, 4096), 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = PageCache::new(2 * 4096);
        c.access(0, 4096); // page 0
        c.access(4096, 4096); // page 1
        c.access(0, 4096); // touch page 0 (now MRU)
        c.access(8192, 4096); // page 2 evicts page 1
        assert_eq!(c.access(0, 4096), 0, "page 0 must survive");
        assert_eq!(c.access(4096, 4096), 1, "page 1 was evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PageCache::new(0);
        assert_eq!(c.access(0, 4096), 1);
        assert_eq!(c.access(0, 4096), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn drop_caches_flushes() {
        let mut c = PageCache::new(1 << 20);
        c.access(0, 4096);
        assert_eq!(c.len(), 1);
        c.drop_caches();
        assert!(c.is_empty());
        assert_eq!(c.access(0, 4096), 1, "re-access misses after flush");
    }

    #[test]
    fn zero_length_access_is_noop() {
        let mut c = PageCache::new(1 << 20);
        assert_eq!(c.access(123, 0), 0);
        assert_eq!(c.hits() + c.misses(), 0);
    }
}
