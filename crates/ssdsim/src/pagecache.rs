//! An LRU page cache over 4 KiB pages — the OS page cache the paper flushes
//! (`sync; echo 1 > /proc/sys/vm/drop_caches`) before each run (§III-B).

use std::collections::BTreeMap;

/// Page size (matches the device sector and the x86 page).
pub const PAGE_BYTES: u64 = 4096;

/// A fixed-capacity LRU cache of device pages.
///
/// The cache answers, per request, which of its pages hit and which must be
/// fetched from the device; the execution engine only sends misses to the
/// [`crate::DeviceSim`].
///
/// Recency is tracked with two mirrored maps — page → stamp and
/// stamp → page — so a hit, a miss, and an eviction are each O(log n).
/// Stamps come from a monotone access clock and are therefore unique, which
/// makes `by_stamp.first_key_value()` *exactly* the page a full
/// `min_by_key(stamp)` scan over the old single-map design would have
/// picked: eviction order is unchanged, only its cost (previously
/// O(capacity) per miss — quadratic over a GiB-sized cache warm-up, the
/// configurations Fig. 5 sweeps).
#[derive(Debug)]
pub struct PageCache {
    capacity_pages: usize,
    /// page id -> LRU stamp.
    pages: BTreeMap<u64, u64>,
    /// LRU stamp -> page id (mirror of `pages`; smallest stamp = LRU victim).
    by_stamp: BTreeMap<u64, u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// Creates a cache with room for `capacity_bytes / 4096` pages. A
    /// capacity of zero disables caching (everything misses), which models
    /// direct I/O.
    pub fn new(capacity_bytes: u64) -> PageCache {
        PageCache {
            capacity_pages: (capacity_bytes / PAGE_BYTES) as usize,
            pages: BTreeMap::new(),
            by_stamp: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses a byte range; returns the number of pages that missed (and
    /// were inserted). `0` means the whole range was cached.
    pub fn access(&mut self, offset: u64, len: u32) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = offset / PAGE_BYTES;
        let last = (offset + len as u64 - 1) / PAGE_BYTES;
        let mut missed = 0;
        for page in first..=last {
            self.clock += 1;
            if self.capacity_pages == 0 {
                self.misses += 1;
                missed += 1;
                continue;
            }
            if let Some(stamp) = self.pages.get_mut(&page) {
                self.by_stamp.remove(stamp);
                *stamp = self.clock;
                self.by_stamp.insert(self.clock, page);
                self.hits += 1;
            } else {
                self.misses += 1;
                missed += 1;
                if self.pages.len() >= self.capacity_pages {
                    // Evict the least recently used page: the smallest stamp.
                    if let Some((_, victim)) = self.by_stamp.pop_first() {
                        self.pages.remove(&victim);
                    }
                }
                self.pages.insert(page, self.clock);
                self.by_stamp.insert(self.clock, page);
            }
        }
        missed
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the cache holds no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Cache hits so far (page granularity).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (page granularity).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every cached page — the paper's
    /// `echo 1 > /proc/sys/vm/drop_caches` between runs. Counters survive.
    pub fn drop_caches(&mut self) {
        self.pages.clear();
        self.by_stamp.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::rng::SplitMix64;

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = PageCache::new(1 << 20);
        assert_eq!(c.access(0, 4096), 1);
        assert_eq!(c.access(0, 4096), 0);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn range_spanning_pages_counts_each_page() {
        let mut c = PageCache::new(1 << 20);
        // 10 KiB starting mid-page touches pages 0,1,2.
        assert_eq!(c.access(2048, 10 * 1024), 3);
        assert_eq!(c.access(0, 4096), 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = PageCache::new(2 * 4096);
        c.access(0, 4096); // page 0
        c.access(4096, 4096); // page 1
        c.access(0, 4096); // touch page 0 (now MRU)
        c.access(8192, 4096); // page 2 evicts page 1
        assert_eq!(c.access(0, 4096), 0, "page 0 must survive");
        assert_eq!(c.access(4096, 4096), 1, "page 1 was evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PageCache::new(0);
        assert_eq!(c.access(0, 4096), 1);
        assert_eq!(c.access(0, 4096), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn drop_caches_flushes() {
        let mut c = PageCache::new(1 << 20);
        c.access(0, 4096);
        assert_eq!(c.len(), 1);
        c.drop_caches();
        assert!(c.is_empty());
        assert_eq!(c.access(0, 4096), 1, "re-access misses after flush");
    }

    #[test]
    fn zero_length_access_is_noop() {
        let mut c = PageCache::new(1 << 20);
        assert_eq!(c.access(123, 0), 0);
        assert_eq!(c.hits() + c.misses(), 0);
    }

    /// The pre-fix eviction policy, verbatim: a full `min_by_key` scan over
    /// the page → stamp map. Used as the behavioural reference.
    struct ScanLru {
        capacity_pages: usize,
        pages: BTreeMap<u64, u64>,
        clock: u64,
        hits: u64,
        misses: u64,
    }

    impl ScanLru {
        fn new(capacity_bytes: u64) -> ScanLru {
            ScanLru {
                capacity_pages: (capacity_bytes / PAGE_BYTES) as usize,
                pages: BTreeMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
            }
        }

        fn access(&mut self, offset: u64, len: u32) -> u64 {
            if len == 0 {
                return 0;
            }
            let first = offset / PAGE_BYTES;
            let last = (offset + len as u64 - 1) / PAGE_BYTES;
            let mut missed = 0;
            for page in first..=last {
                self.clock += 1;
                if self.capacity_pages == 0 {
                    self.misses += 1;
                    missed += 1;
                    continue;
                }
                if let Some(stamp) = self.pages.get_mut(&page) {
                    *stamp = self.clock;
                    self.hits += 1;
                } else {
                    self.misses += 1;
                    missed += 1;
                    if self.pages.len() >= self.capacity_pages {
                        if let Some((&victim, _)) = self.pages.iter().min_by_key(|(_, &s)| s) {
                            self.pages.remove(&victim);
                        }
                    }
                    self.pages.insert(page, self.clock);
                }
            }
            missed
        }
    }

    /// Every access returns the same miss count, and the cached page set is
    /// identical after every step — i.e. the two-map design evicts in
    /// exactly the order the O(capacity) scan did.
    #[test]
    fn eviction_order_matches_the_old_scan() {
        let mut rng = SplitMix64::new(0x9A6E);
        for capacity_pages in [1u64, 2, 3, 7, 16] {
            let mut fast = PageCache::new(capacity_pages * PAGE_BYTES);
            let mut slow = ScanLru::new(capacity_pages * PAGE_BYTES);
            for _ in 0..4_000 {
                let page = rng.next_bounded(40);
                let span_pages = 1 + rng.next_bounded(3) as u32;
                let offset = page * PAGE_BYTES + rng.next_bounded(PAGE_BYTES);
                let len = span_pages * PAGE_BYTES as u32;
                assert_eq!(
                    fast.access(offset, len),
                    slow.access(offset, len),
                    "miss count diverged at capacity {capacity_pages}"
                );
                assert_eq!(
                    fast.pages, slow.pages,
                    "cached set diverged at capacity {capacity_pages}"
                );
            }
            assert_eq!(fast.hits(), slow.hits);
            assert_eq!(fast.misses(), slow.misses);
        }
    }

    /// Regression for the quadratic eviction scan: a GiB-class cache kept at
    /// full occupancy under miss pressure. With the old O(capacity)
    /// `min_by_key` eviction this workload costs ~capacity × misses
    /// (≈ 3.4 × 10^10 comparisons) and does not finish in test time; with
    /// O(log n) eviction it is a few hundred thousand map operations.
    #[test]
    fn large_cache_under_miss_pressure_is_not_quadratic() {
        let capacity_pages: u64 = 262_144; // 1 GiB of 4 KiB pages
        let mut c = PageCache::new(capacity_pages * PAGE_BYTES);
        // Fill to capacity, then force `extra` evictions with fresh pages.
        let extra = 131_072u64;
        for page in 0..capacity_pages + extra {
            assert_eq!(c.access(page * PAGE_BYTES, PAGE_BYTES as u32), 1);
        }
        assert_eq!(c.len() as u64, capacity_pages, "cache stays at capacity");
        assert_eq!(c.misses(), capacity_pages + extra);
        assert_eq!(c.hits(), 0);
        // The survivors are exactly the most recent `capacity_pages` pages.
        assert_eq!(c.access(extra * PAGE_BYTES, PAGE_BYTES as u32), 0);
        assert_eq!(c.access((extra - 1) * PAGE_BYTES, PAGE_BYTES as u32), 1);
    }

    /// The two maps stay perfect mirrors of each other across a mixed
    /// hit/miss/evict workload.
    #[test]
    fn stamp_mirror_stays_consistent() {
        let mut rng = SplitMix64::new(77);
        let mut c = PageCache::new(8 * PAGE_BYTES);
        for _ in 0..2_000 {
            c.access(rng.next_bounded(20) * PAGE_BYTES, PAGE_BYTES as u32);
            assert_eq!(c.pages.len(), c.by_stamp.len());
            assert!(c.pages.len() <= 8);
            for (page, stamp) in &c.pages {
                assert_eq!(c.by_stamp.get(stamp), Some(page));
            }
        }
    }
}
