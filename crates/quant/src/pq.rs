//! Product quantization (Jégou, Douze & Schmid, TPAMI 2011).
//!
//! A vector of dimension `d` is split into `m` contiguous sub-vectors; each
//! sub-vector is quantized to the nearest of `ksub` trained sub-centroids.
//! The code is then `m` small integers (stored as bytes). Asymmetric distance
//! computation (ADC) against a query uses one lookup table of
//! `m × ksub` partial distances computed once per query.
//!
//! DiskANN keeps exactly this representation in memory to rank candidates
//! while full-precision vectors stay on disk (§II-B of the paper).

use crate::kmeans::KMeans;
use sann_core::distance::l2_squared;
use sann_core::{Dataset, Error, Result};

/// A trained product quantizer.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    dim: usize,
    m: usize,
    ksub: usize,
    sub_dim: usize,
    /// `m` codebooks, each `ksub × sub_dim`, flattened.
    codebooks: Vec<f32>,
}

impl ProductQuantizer {
    /// Trains a quantizer with `m` sub-spaces of `ksub` centroids each.
    ///
    /// Typical configurations use `ksub = 256` so codes are exactly `m`
    /// bytes; smaller `ksub` values train faster on small datasets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `m` does not divide the data
    /// dimensionality, if `ksub` is 0 or > 256, or if there are fewer
    /// training vectors than `ksub`.
    pub fn train(data: &Dataset, m: usize, ksub: usize, seed: u64) -> Result<ProductQuantizer> {
        let dim = data.dim();
        if m == 0 || !dim.is_multiple_of(m) {
            return Err(Error::invalid_parameter(
                "m",
                format!("{m} must be a positive divisor of dim {dim}"),
            ));
        }
        if ksub == 0 || ksub > 256 {
            return Err(Error::invalid_parameter("ksub", "must be in 1..=256"));
        }
        if data.len() < ksub {
            return Err(Error::invalid_parameter(
                "ksub",
                format!("{ksub} sub-centroids need at least that many training vectors"),
            ));
        }
        let sub_dim = dim / m;
        let mut codebooks = Vec::with_capacity(m * ksub * sub_dim);
        for sub in 0..m {
            // Slice out the sub-vectors for this subspace.
            let mut subdata = Dataset::with_dim(sub_dim);
            for row in data.iter() {
                subdata
                    .push(&row[sub * sub_dim..(sub + 1) * sub_dim])
                    .expect("same dim");
            }
            let model = KMeans::new(ksub)
                .with_seed(seed.wrapping_add(sub as u64))
                .with_sample_limit(50_000)
                .with_max_iters(15)
                .fit(&subdata)?;
            codebooks.extend_from_slice(model.centroids.as_flat());
        }
        Ok(ProductQuantizer {
            dim,
            m,
            ksub,
            sub_dim,
            codebooks,
        })
    }

    /// Dimensionality of input vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of sub-spaces (bytes per code).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of centroids per sub-space.
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// Bytes of one encoded vector.
    pub fn code_bytes(&self) -> usize {
        self.m
    }

    fn codebook(&self, sub: usize) -> &[f32] {
        let stride = self.ksub * self.sub_dim;
        &self.codebooks[sub * stride..(sub + 1) * stride]
    }

    /// Encodes a vector to its `m`-byte code.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim, "encode dimension mismatch");
        let mut code = Vec::with_capacity(self.m);
        for sub in 0..self.m {
            let sv = &v[sub * self.sub_dim..(sub + 1) * self.sub_dim];
            let book = self.codebook(sub);
            let mut best = 0u8;
            let mut best_d = f32::INFINITY;
            for c in 0..self.ksub {
                let d = l2_squared(sv, &book[c * self.sub_dim..(c + 1) * self.sub_dim]);
                if d < best_d {
                    best_d = d;
                    best = c as u8;
                }
            }
            code.push(best);
        }
        code
    }

    /// Encodes every row of a dataset, returning a flat `n × m` code matrix.
    /// Encoding is parallelized across all cores.
    pub fn encode_all(&self, data: &Dataset) -> Vec<u8> {
        let mut codes = vec![0u8; data.len() * self.m];
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let chunk_rows = data.len().div_ceil(threads.max(1)).max(1);
        std::thread::scope(|scope| {
            for (t, out) in codes.chunks_mut(chunk_rows * self.m).enumerate() {
                scope.spawn(move || {
                    for (i, slot) in out.chunks_mut(self.m).enumerate() {
                        slot.copy_from_slice(&self.encode(data.row(t * chunk_rows + i)));
                    }
                });
            }
        });
        codes
    }

    /// Reconstructs the approximate vector for a code.
    ///
    /// # Panics
    ///
    /// Panics if `code.len() != self.m()`.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.m, "decode length mismatch");
        let mut v = Vec::with_capacity(self.dim);
        for (sub, &c) in code.iter().enumerate() {
            let book = self.codebook(sub);
            v.extend_from_slice(&book[c as usize * self.sub_dim..(c as usize + 1) * self.sub_dim]);
        }
        v
    }

    /// Appends the canonical little-endian encoding of the trained quantizer
    /// (shape, then the flattened codebooks) to `buf`.
    pub fn encode_into(&self, buf: &mut sann_core::buf::ByteWriter) {
        buf.put_u32_le(self.dim as u32);
        buf.put_u32_le(self.m as u32);
        buf.put_u32_le(self.ksub as u32);
        for &x in &self.codebooks {
            buf.put_f32_le(x);
        }
    }

    /// Reads a quantizer previously written by
    /// [`ProductQuantizer::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation or an inconsistent shape.
    pub fn decode_from(r: &mut sann_core::buf::ByteReader<'_>) -> Result<ProductQuantizer> {
        let dim = r.get_u32_le()? as usize;
        let m = r.get_u32_le()? as usize;
        let ksub = r.get_u32_le()? as usize;
        if m == 0 || dim == 0 || !dim.is_multiple_of(m) || ksub == 0 || ksub > 256 {
            return Err(Error::Corrupt("pq: inconsistent shape".into()));
        }
        let sub_dim = dim / m;
        let total = m * ksub * sub_dim;
        if r.remaining() < total * 4 {
            return Err(Error::Corrupt("pq: truncated codebooks".into()));
        }
        let mut codebooks = Vec::with_capacity(total);
        for _ in 0..total {
            codebooks.push(r.get_f32_le()?);
        }
        Ok(ProductQuantizer {
            dim,
            m,
            ksub,
            sub_dim,
            codebooks,
        })
    }

    /// Builds the ADC lookup table for a query.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn distance_table(&self, query: &[f32]) -> DistanceTable {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut table = Vec::with_capacity(self.m * self.ksub);
        for sub in 0..self.m {
            let qv = &query[sub * self.sub_dim..(sub + 1) * self.sub_dim];
            let book = self.codebook(sub);
            for c in 0..self.ksub {
                table.push(l2_squared(
                    qv,
                    &book[c * self.sub_dim..(c + 1) * self.sub_dim],
                ));
            }
        }
        DistanceTable {
            table,
            m: self.m,
            ksub: self.ksub,
        }
    }
}

/// Per-query ADC lookup table produced by
/// [`ProductQuantizer::distance_table`].
#[derive(Debug, Clone)]
pub struct DistanceTable {
    table: Vec<f32>,
    m: usize,
    ksub: usize,
}

impl DistanceTable {
    /// Approximate squared L2 distance between the table's query and an
    /// encoded vector.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `code.len()` differs from the quantizer's `m`.
    #[inline]
    pub fn distance(&self, code: &[u8]) -> f32 {
        debug_assert_eq!(code.len(), self.m);
        let mut d = 0.0f32;
        for (sub, &c) in code.iter().enumerate() {
            d += self.table[sub * self.ksub + c as usize];
        }
        d
    }

    /// Distance of the `i`-th code in a flat code matrix.
    #[inline]
    pub fn distance_at(&self, codes: &[u8], i: usize) -> f32 {
        self.distance(&codes[i * self.m..(i + 1) * self.m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_datagen::EmbeddingModel;

    fn train_small() -> (Dataset, ProductQuantizer) {
        let data = EmbeddingModel::new(32, 4, 11).generate(600);
        let pq = ProductQuantizer::train(&data, 4, 16, 1).unwrap();
        (data, pq)
    }

    #[test]
    fn code_shape() {
        let (data, pq) = train_small();
        let code = pq.encode(data.row(0));
        assert_eq!(code.len(), 4);
        assert_eq!(pq.code_bytes(), 4);
        assert!(code.iter().all(|&c| (c as usize) < pq.ksub()));
    }

    #[test]
    fn reconstruction_error_is_bounded() {
        let (data, pq) = train_small();
        let mut total = 0.0f64;
        for row in data.iter().take(100) {
            let rec = pq.decode(&pq.encode(row));
            total += l2_squared(row, &rec) as f64;
        }
        // Unit vectors; squared distance between random unit vectors is ~2.
        let mse = total / 100.0;
        assert!(mse < 0.5, "reconstruction MSE {mse} too large");
    }

    #[test]
    fn adc_approximates_true_distance() {
        let (data, pq) = train_small();
        let q = data.row(0);
        let table = pq.distance_table(q);
        let mut err = 0.0f64;
        for (i, row) in data.iter().enumerate().take(200) {
            let true_d = l2_squared(q, row);
            let approx = table.distance(&pq.encode(row));
            err += (true_d - approx).abs() as f64;
            let _ = i;
        }
        assert!(
            err / 200.0 < 0.5,
            "mean ADC error too large: {}",
            err / 200.0
        );
    }

    #[test]
    fn adc_preserves_ranking_roughly() {
        // The PQ-nearest of a query among 200 points should be within the
        // true top-20 — that is the property DiskANN relies on.
        let (data, pq) = train_small();
        let codes = pq.encode_all(&data);
        let q = data.row(7);
        let table = pq.distance_table(q);
        let pq_best = (0..200).min_by(|&a, &b| {
            table
                .distance_at(&codes, a)
                .total_cmp(&table.distance_at(&codes, b))
        });
        let mut true_dists: Vec<(f32, usize)> =
            (0..200).map(|i| (l2_squared(q, data.row(i)), i)).collect();
        true_dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let top20: Vec<usize> = true_dists.iter().take(20).map(|&(_, i)| i).collect();
        assert!(top20.contains(&pq_best.unwrap()));
    }

    #[test]
    fn rejects_bad_m() {
        let data = EmbeddingModel::new(30, 2, 1).generate(100);
        assert!(ProductQuantizer::train(&data, 4, 16, 1).is_err());
        assert!(ProductQuantizer::train(&data, 0, 16, 1).is_err());
    }

    #[test]
    fn rejects_bad_ksub() {
        let data = EmbeddingModel::new(32, 2, 1).generate(100);
        assert!(ProductQuantizer::train(&data, 4, 0, 1).is_err());
        assert!(ProductQuantizer::train(&data, 4, 257, 1).is_err());
        assert!(
            ProductQuantizer::train(&data, 4, 128, 1).is_err(),
            "too few training rows"
        );
    }

    #[test]
    fn codec_round_trips_bit_exact() {
        let (data, pq) = train_small();
        let mut w = sann_core::buf::ByteWriter::new();
        pq.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = sann_core::buf::ByteReader::new(&bytes, "test");
        let back = ProductQuantizer::decode_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        // The decoded quantizer produces identical codes and distances.
        assert_eq!(back.encode(data.row(0)), pq.encode(data.row(0)));
        let mut w2 = sann_core::buf::ByteWriter::new();
        back.encode_into(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn codec_rejects_corruption() {
        let (_, pq) = train_small();
        let mut w = sann_core::buf::ByteWriter::new();
        pq.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = sann_core::buf::ByteReader::new(&bytes[..bytes.len() - 1], "test");
        assert!(ProductQuantizer::decode_from(&mut r).is_err());
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&3u32.to_le_bytes()); // m=3 does not divide dim=32
        let mut r = sann_core::buf::ByteReader::new(&bad, "test");
        assert!(ProductQuantizer::decode_from(&mut r).is_err());
    }

    #[test]
    fn encode_all_is_row_major() {
        let (data, pq) = train_small();
        let codes = pq.encode_all(&data);
        assert_eq!(codes.len(), data.len() * pq.m());
        assert_eq!(&codes[..pq.m()], pq.encode(data.row(0)).as_slice());
    }
}
