//! Scalar quantization: per-dimension affine mapping of `f32` to `u8`.
//!
//! This is the compression LanceDB applies to its HNSW index in the paper's
//! setup ("HNSW index with scalar quantization", §III-C). Each dimension is
//! independently mapped onto `[0, 255]` using the training min/max.

use sann_core::{Dataset, Error, Result};

/// A trained scalar quantizer.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarQuantizer {
    min: Vec<f32>,
    /// Per-dimension scale `(max - min) / 255`, zero for constant dimensions.
    scale: Vec<f32>,
}

impl ScalarQuantizer {
    /// Trains on `data` by recording per-dimension extrema.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `data` has no rows.
    pub fn train(data: &Dataset) -> Result<ScalarQuantizer> {
        if data.is_empty() {
            return Err(Error::Empty("dataset"));
        }
        let dim = data.dim();
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        for row in data.iter() {
            for ((mn, mx), &x) in min.iter_mut().zip(max.iter_mut()).zip(row) {
                *mn = mn.min(x);
                *mx = mx.max(x);
            }
        }
        let scale = min
            .iter()
            .zip(&max)
            .map(|(&mn, &mx)| (mx - mn) / 255.0)
            .collect();
        Ok(ScalarQuantizer { min, scale })
    }

    /// Dimensionality of input vectors.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Quantizes a vector to one byte per dimension. Values outside the
    /// training range are clamped.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim(), "encode dimension mismatch");
        v.iter()
            .zip(&self.min)
            .zip(&self.scale)
            .map(|((&x, &mn), &s)| {
                if s == 0.0 {
                    0
                } else {
                    (((x - mn) / s).round()).clamp(0.0, 255.0) as u8
                }
            })
            .collect()
    }

    /// Reconstructs the approximate vector for a code.
    ///
    /// # Panics
    ///
    /// Panics if `code.len() != self.dim()`.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.dim(), "decode length mismatch");
        code.iter()
            .zip(&self.min)
            .zip(&self.scale)
            .map(|((&c, &mn), &s)| mn + c as f32 * s)
            .collect()
    }

    /// Appends the canonical little-endian encoding (per-dimension min and
    /// scale) to `buf`.
    pub fn encode_into(&self, buf: &mut sann_core::buf::ByteWriter) {
        buf.put_u32_le(self.min.len() as u32);
        for &x in &self.min {
            buf.put_f32_le(x);
        }
        for &x in &self.scale {
            buf.put_f32_le(x);
        }
    }

    /// Reads a quantizer previously written by
    /// [`ScalarQuantizer::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation or a zero dimension.
    pub fn decode_from(r: &mut sann_core::buf::ByteReader<'_>) -> Result<ScalarQuantizer> {
        let dim = r.get_u32_le()? as usize;
        if dim == 0 {
            return Err(Error::Corrupt("sq: zero dimension".into()));
        }
        if r.remaining() < dim * 8 {
            return Err(Error::Corrupt("sq: truncated tables".into()));
        }
        let mut min = Vec::with_capacity(dim);
        for _ in 0..dim {
            min.push(r.get_f32_le()?);
        }
        let mut scale = Vec::with_capacity(dim);
        for _ in 0..dim {
            scale.push(r.get_f32_le()?);
        }
        Ok(ScalarQuantizer { min, scale })
    }

    /// Approximate squared L2 distance between a full-precision query and an
    /// encoded vector (asymmetric: the query is not quantized).
    pub fn distance(&self, query: &[f32], code: &[u8]) -> f32 {
        let mut d = 0.0f32;
        for ((&q, &c), (&mn, &s)) in query.iter().zip(code).zip(self.min.iter().zip(&self.scale)) {
            let x = mn + c as f32 * s;
            let diff = q - x;
            d += diff * diff;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::distance::l2_squared;
    use sann_datagen::EmbeddingModel;

    #[test]
    fn round_trip_error_is_small() {
        let data = EmbeddingModel::new(16, 2, 3).generate(200);
        let sq = ScalarQuantizer::train(&data).unwrap();
        for row in data.iter().take(50) {
            let rec = sq.decode(&sq.encode(row));
            assert!(l2_squared(row, &rec) < 1e-3);
        }
    }

    #[test]
    fn constant_dimension_is_handled() {
        let data = Dataset::from_rows(vec![vec![1.0, 5.0], vec![1.0, 7.0]]).unwrap();
        let sq = ScalarQuantizer::train(&data).unwrap();
        let code = sq.encode(&[1.0, 6.0]);
        let rec = sq.decode(&code);
        assert_eq!(rec[0], 1.0);
        assert!((rec[1] - 6.0).abs() < 0.05);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        let sq = ScalarQuantizer::train(&data).unwrap();
        assert_eq!(sq.encode(&[-5.0]), vec![0]);
        assert_eq!(sq.encode(&[99.0]), vec![255]);
    }

    #[test]
    fn asymmetric_distance_tracks_true_distance() {
        let data = EmbeddingModel::new(16, 2, 4).generate(100);
        let sq = ScalarQuantizer::train(&data).unwrap();
        let q = data.row(0);
        for row in data.iter().take(30) {
            let approx = sq.distance(q, &sq.encode(row));
            let true_d = l2_squared(q, row);
            assert!((approx - true_d).abs() < 0.05 * (true_d + 0.1));
        }
    }

    #[test]
    fn rejects_empty_training_set() {
        let data = Dataset::with_dim(4);
        assert!(ScalarQuantizer::train(&data).is_err());
    }

    #[test]
    fn codec_round_trips_bit_exact() {
        let data = EmbeddingModel::new(16, 2, 5).generate(80);
        let sq = ScalarQuantizer::train(&data).unwrap();
        let mut w = sann_core::buf::ByteWriter::new();
        sq.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = sann_core::buf::ByteReader::new(&bytes, "test");
        let back = ScalarQuantizer::decode_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back, sq);
        let mut r = sann_core::buf::ByteReader::new(&bytes[..bytes.len() - 3], "test");
        assert!(ScalarQuantizer::decode_from(&mut r).is_err());
    }
}
