//! Clustering and vector quantization.
//!
//! Three building blocks used by the indexes in `sann-index`:
//!
//! * [`KMeans`] — Lloyd's algorithm with k-means++ seeding and parallel
//!   assignment; used by IVF to partition the dataset and by product
//!   quantization to train sub-codebooks.
//! * [`ProductQuantizer`] — product quantization (Jégou et al., TPAMI 2011):
//!   the compressed in-memory representation DiskANN keeps for candidate
//!   ranking, and the compression LanceDB applies to its IVF index.
//! * [`ScalarQuantizer`] — per-dimension u8 quantization, the compression
//!   LanceDB applies to its HNSW index.
//!
//! # Examples
//!
//! ```
//! use sann_quant::ProductQuantizer;
//! use sann_datagen::EmbeddingModel;
//!
//! let data = EmbeddingModel::new(64, 4, 1).generate(500);
//! let pq = ProductQuantizer::train(&data, 8, 16, 42)?;
//! let code = pq.encode(data.row(0));
//! assert_eq!(code.len(), 8);
//! let table = pq.distance_table(data.row(0));
//! // The reconstruction distance of a vector to itself is small.
//! assert!(table.distance(&code) < 0.5);
//! # Ok::<(), sann_core::Error>(())
//! ```

pub mod kmeans;
pub mod pq;
pub mod sq;

pub use kmeans::{KMeans, KMeansModel};
pub use pq::{DistanceTable, ProductQuantizer};
pub use sq::ScalarQuantizer;
