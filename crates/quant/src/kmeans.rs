//! Lloyd's k-means with k-means++ seeding and parallel assignment.

use sann_core::distance::l2_squared;
use sann_core::rng::SplitMix64;
use sann_core::{Dataset, Error, Result};

/// K-means trainer configuration.
///
/// # Examples
///
/// ```
/// use sann_quant::KMeans;
/// use sann_datagen::EmbeddingModel;
///
/// let data = EmbeddingModel::new(16, 4, 7).generate(400);
/// let model = KMeans::new(4).with_max_iters(10).fit(&data)?;
/// assert_eq!(model.centroids.len(), 4);
/// assert_eq!(model.assignments.len(), 400);
/// # Ok::<(), sann_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iters: usize,
    seed: u64,
    sample_limit: usize,
}

impl KMeans {
    /// Creates a trainer for `k` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KMeans {
            k,
            max_iters: 20,
            seed: 0x5EED_4B4B,
            sample_limit: usize::MAX,
        }
    }

    /// Sets the maximum number of Lloyd iterations (default 20).
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the RNG seed used for k-means++ seeding.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trains on at most `limit` sampled rows (assignments are still computed
    /// for every row afterwards). Use this to cap training cost on large
    /// datasets.
    pub fn with_sample_limit(mut self, limit: usize) -> Self {
        self.sample_limit = limit.max(1);
        self
    }

    /// Runs k-means on `data`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `data` has fewer rows than
    /// `k`, and [`Error::Empty`] when `data` is empty.
    pub fn fit(&self, data: &Dataset) -> Result<KMeansModel> {
        if data.is_empty() {
            return Err(Error::Empty("dataset"));
        }
        if data.len() < self.k {
            return Err(Error::invalid_parameter(
                "k",
                format!(
                    "{} clusters requested but only {} vectors",
                    self.k,
                    data.len()
                ),
            ));
        }
        let mut rng = SplitMix64::new(self.seed);

        // Train on a sample when the dataset is large.
        let train: Dataset = if data.len() > self.sample_limit {
            let idx = rng.sample_indices(data.len(), self.sample_limit);
            let mut sample = Dataset::with_dim(data.dim());
            for i in idx {
                sample.push(data.row(i)).expect("same dim");
            }
            sample
        } else {
            data.clone()
        };

        let dim = train.dim();
        let mut centroids = kmeanspp_init(&train, self.k, &mut rng);
        let mut assignments = vec![0u32; train.len()];
        for _ in 0..self.max_iters {
            let changed = assign_parallel(&train, &centroids, self.k, &mut assignments);
            recompute_centroids(&train, &assignments, self.k, &mut centroids, &mut rng);
            if changed == 0 {
                break;
            }
            let _ = dim;
        }

        // Final assignment over the full dataset.
        let mut full_assignments = vec![0u32; data.len()];
        assign_parallel(data, &centroids, self.k, &mut full_assignments);

        Ok(KMeansModel {
            centroids: Dataset::from_flat(centroids, data.dim()).expect("rectangular"),
            assignments: full_assignments,
        })
    }
}

/// The result of k-means training.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// One centroid per cluster (`k × dim`).
    pub centroids: Dataset,
    /// Cluster id of every input row.
    pub assignments: Vec<u32>,
}

impl KMeansModel {
    /// Id of the centroid closest to `v`.
    pub fn nearest(&self, v: &[f32]) -> u32 {
        nearest_centroid(
            v,
            self.centroids.as_flat(),
            self.centroids.len(),
            self.centroids.dim(),
        )
    }

    /// Ids of the `n` centroids closest to `v`, closest first.
    pub fn nearest_n(&self, v: &[f32], n: usize) -> Vec<u32> {
        let mut topk = sann_core::TopK::new(n.max(1).min(self.centroids.len()));
        for (c, row) in self.centroids.iter().enumerate() {
            topk.push(c as u32, l2_squared(v, row));
        }
        topk.into_sorted_vec().into_iter().map(|nb| nb.id).collect()
    }

    /// Total within-cluster sum of squared distances over `data`.
    pub fn inertia(&self, data: &Dataset) -> f64 {
        data.iter()
            .zip(&self.assignments)
            .map(|(row, &a)| l2_squared(row, self.centroids.row(a as usize)) as f64)
            .sum()
    }

    /// Appends the canonical little-endian encoding (centroids, then the
    /// assignment vector) to `buf`.
    pub fn encode_into(&self, buf: &mut sann_core::buf::ByteWriter) {
        self.centroids.encode_into(buf);
        buf.put_u64_le(self.assignments.len() as u64);
        for &a in &self.assignments {
            buf.put_u32_le(a);
        }
    }

    /// Reads a model previously written by [`KMeansModel::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation or an out-of-range
    /// assignment.
    pub fn decode_from(r: &mut sann_core::buf::ByteReader<'_>) -> Result<KMeansModel> {
        let centroids = Dataset::decode_from(r)?;
        let n = r.get_u64_le()? as usize;
        if r.remaining() < n.saturating_mul(4) {
            return Err(Error::Corrupt("kmeans: truncated assignments".into()));
        }
        let k = centroids.len() as u32;
        let mut assignments = Vec::with_capacity(n);
        for _ in 0..n {
            let a = r.get_u32_le()?;
            if a >= k {
                return Err(Error::Corrupt("kmeans: assignment out of range".into()));
            }
            assignments.push(a);
        }
        Ok(KMeansModel {
            centroids,
            assignments,
        })
    }
}

fn nearest_centroid(v: &[f32], centroids: &[f32], k: usize, dim: usize) -> u32 {
    let mut best = 0u32;
    let mut best_d = f32::INFINITY;
    for c in 0..k {
        let d = l2_squared(v, &centroids[c * dim..(c + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    best
}

/// k-means++ seeding (Arthur & Vassilvitskii, SODA 2007).
fn kmeanspp_init(data: &Dataset, k: usize, rng: &mut SplitMix64) -> Vec<f32> {
    let dim = data.dim();
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.next_bounded(data.len() as u64) as usize;
    centroids.extend_from_slice(data.row(first));

    let mut min_dist: Vec<f32> = data
        .iter()
        .map(|row| l2_squared(row, data.row(first)))
        .collect();
    for _ in 1..k {
        let total: f64 = min_dist.iter().map(|&d| d as f64).sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            rng.next_bounded(data.len() as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = data.len() - 1;
            for (i, &d) in min_dist.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let start = centroids.len();
        centroids.extend_from_slice(data.row(next));
        let new_c = centroids[start..].to_vec();
        for (i, row) in data.iter().enumerate() {
            let d = l2_squared(row, &new_c);
            if d < min_dist[i] {
                min_dist[i] = d;
            }
        }
    }
    centroids
}

/// Assigns every row to its nearest centroid in parallel; returns the number
/// of rows whose assignment changed.
fn assign_parallel(data: &Dataset, centroids: &[f32], k: usize, assignments: &mut [u32]) -> usize {
    let dim = data.dim();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let chunk = data.len().div_ceil(threads.max(1)).max(1);
    let changed = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (t, out_chunk) in assignments.chunks_mut(chunk).enumerate() {
            let changed = &changed;
            scope.spawn(move || {
                let mut local_changed = 0usize;
                for (i, slot) in out_chunk.iter_mut().enumerate() {
                    let row = data.row(t * chunk + i);
                    let best = nearest_centroid(row, centroids, k, dim);
                    if *slot != best {
                        *slot = best;
                        local_changed += 1;
                    }
                }
                changed.fetch_add(local_changed, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    changed.load(std::sync::atomic::Ordering::Relaxed)
}

fn recompute_centroids(
    data: &Dataset,
    assignments: &[u32],
    k: usize,
    centroids: &mut [f32],
    rng: &mut SplitMix64,
) {
    let dim = data.dim();
    let mut counts = vec![0u64; k];
    centroids.fill(0.0);
    for (row, &a) in data.iter().zip(assignments) {
        let c = a as usize;
        counts[c] += 1;
        for (acc, &x) in centroids[c * dim..(c + 1) * dim].iter_mut().zip(row) {
            *acc += x;
        }
    }
    for c in 0..k {
        if counts[c] == 0 {
            // Re-seed an empty cluster at a random data point so k survives.
            let i = rng.next_bounded(data.len() as u64) as usize;
            centroids[c * dim..(c + 1) * dim].copy_from_slice(data.row(i));
        } else {
            let inv = 1.0 / counts[c] as f32;
            for x in centroids[c * dim..(c + 1) * dim].iter_mut() {
                *x *= inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(n_per: usize) -> Dataset {
        let mut rng = SplitMix64::new(99);
        let mut rows = Vec::new();
        for _ in 0..n_per {
            rows.push(vec![
                10.0 + rng.next_f32() * 0.1,
                10.0 + rng.next_f32() * 0.1,
            ]);
        }
        for _ in 0..n_per {
            rows.push(vec![
                -10.0 + rng.next_f32() * 0.1,
                -10.0 + rng.next_f32() * 0.1,
            ]);
        }
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs(50);
        let model = KMeans::new(2).with_seed(1).fit(&data).unwrap();
        // All of the first blob maps to one cluster, all of the second to the other.
        let first = model.assignments[0];
        assert!(model.assignments[..50].iter().all(|&a| a == first));
        assert!(model.assignments[50..].iter().all(|&a| a != first));
    }

    #[test]
    fn inertia_decreases_vs_random_centroid() {
        let data = two_blobs(50);
        let model = KMeans::new(2).fit(&data).unwrap();
        // Tight blobs: inertia per point must be tiny compared with blob distance.
        assert!(model.inertia(&data) / 100.0 < 1.0);
    }

    #[test]
    fn rejects_k_larger_than_n() {
        let data = two_blobs(1);
        assert!(KMeans::new(5).fit(&data).is_err());
    }

    #[test]
    fn rejects_empty() {
        let data = Dataset::with_dim(4);
        assert!(matches!(KMeans::new(1).fit(&data), Err(Error::Empty(_))));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = two_blobs(30);
        let a = KMeans::new(2).with_seed(5).fit(&data).unwrap();
        let b = KMeans::new(2).with_seed(5).fit(&data).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn nearest_n_returns_sorted_prefix() {
        let data = two_blobs(30);
        let model = KMeans::new(2).fit(&data).unwrap();
        let near = model.nearest_n(&[10.0, 10.0], 2);
        assert_eq!(near.len(), 2);
        assert_eq!(near[0], model.nearest(&[10.0, 10.0]));
    }

    #[test]
    fn sample_limit_still_assigns_everything() {
        let data = two_blobs(200);
        let model = KMeans::new(2).with_sample_limit(40).fit(&data).unwrap();
        assert_eq!(model.assignments.len(), 400);
        let first = model.assignments[0];
        assert!(model.assignments[..200].iter().all(|&a| a == first));
    }

    #[test]
    fn codec_round_trips_bit_exact() {
        let data = two_blobs(30);
        let model = KMeans::new(2).with_seed(5).fit(&data).unwrap();
        let mut w = sann_core::buf::ByteWriter::new();
        model.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = sann_core::buf::ByteReader::new(&bytes, "test");
        let back = KMeansModel::decode_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back.centroids, model.centroids);
        assert_eq!(back.assignments, model.assignments);
        let mut w2 = sann_core::buf::ByteWriter::new();
        back.encode_into(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn codec_rejects_truncation_and_bad_assignment() {
        let data = two_blobs(10);
        let model = KMeans::new(2).fit(&data).unwrap();
        let mut w = sann_core::buf::ByteWriter::new();
        model.encode_into(&mut w);
        let mut bytes = w.into_bytes();
        let mut r = sann_core::buf::ByteReader::new(&bytes[..bytes.len() - 2], "test");
        assert!(KMeansModel::decode_from(&mut r).is_err());
        // Corrupt the last assignment to an out-of-range cluster id.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&99u32.to_le_bytes());
        let mut r = sann_core::buf::ByteReader::new(&bytes, "test");
        assert!(KMeansModel::decode_from(&mut r).is_err());
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        // All points identical: k-means++ falls back to uniform picks and
        // empty clusters are reseeded.
        let rows = vec![vec![1.0, 1.0]; 20];
        let data = Dataset::from_rows(rows).unwrap();
        let model = KMeans::new(3).fit(&data).unwrap();
        assert_eq!(model.centroids.len(), 3);
    }
}
