//! DESIGN.md §4 ablation: DiskANN beam width W — W = 1 is classic best-first
//! search (one round trip per hop); wider beams batch reads per hop. This
//! measures the *algorithmic* cost (distance evaluations, candidate-list
//! maintenance) per search; the latency effect of batching shows up in the
//! vdbbench fig12–fig15 harness, which adds the device model.

use sann_bench::microbench::{black_box, criterion_group, criterion_main, Criterion};
use sann_core::Metric;
use sann_datagen::EmbeddingModel;
use sann_index::{DiskAnnConfig, DiskAnnIndex, SearchParams, VamanaConfig, VectorIndex};

fn bench_beam_width(c: &mut Criterion) {
    let model = EmbeddingModel::new(128, 16, 15);
    let base = model.generate(5_000);
    let queries = model.generate_queries(32);
    let index = DiskAnnIndex::build(
        &base,
        Metric::L2,
        DiskAnnConfig {
            graph: VamanaConfig {
                r: 32,
                ..VamanaConfig::default()
            },
            ..DiskAnnConfig::default()
        },
    )
    .expect("index builds");

    let mut group = c.benchmark_group("diskann_beam");
    for w in [1usize, 2, 4, 8, 16] {
        let params = SearchParams::default()
            .with_search_list(100)
            .with_beam_width(w);
        let mut qi = 0usize;
        group.bench_function(format!("search_l100/w{w}"), |b| {
            b.iter(|| {
                qi = (qi + 1) % 32;
                black_box(index.search(queries.row(qi), 10, &params).expect("search"))
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_beam_width
);
criterion_main!(benches);
