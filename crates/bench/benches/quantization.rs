//! Quantization microbenchmarks: PQ encode, ADC table construction, ADC
//! lookups, and scalar quantization — the in-memory costs of the
//! storage-based indexes.

use sann_bench::microbench::{black_box, criterion_group, criterion_main, Criterion};
use sann_datagen::EmbeddingModel;
use sann_quant::{ProductQuantizer, ScalarQuantizer};

fn bench_pq(c: &mut Criterion) {
    let model = EmbeddingModel::new(768, 16, 7);
    let data = model.generate(2_000);
    let pq = ProductQuantizer::train(&data, 96, 64, 1).expect("pq trains");
    let codes = pq.encode_all(&data);
    let q = data.row(0).to_vec();
    let code = pq.encode(&q);
    let table = pq.distance_table(&q);

    c.bench_function("pq/encode_768d_m96", |b| {
        b.iter(|| pq.encode(black_box(&q)))
    });
    c.bench_function("pq/distance_table_768d_m96", |b| {
        b.iter(|| pq.distance_table(black_box(&q)))
    });
    c.bench_function("pq/adc_single", |b| {
        b.iter(|| table.distance(black_box(&code)))
    });
    c.bench_function("pq/adc_scan_1k", |b| {
        b.iter(|| {
            let mut best = f32::INFINITY;
            for i in 0..1_000 {
                let d = table.distance_at(black_box(&codes), i);
                if d < best {
                    best = d;
                }
            }
            best
        })
    });
}

fn bench_sq(c: &mut Criterion) {
    let model = EmbeddingModel::new(768, 16, 8);
    let data = model.generate(1_000);
    let sq = ScalarQuantizer::train(&data).expect("sq trains");
    let q = data.row(0).to_vec();
    let code = sq.encode(&q);
    c.bench_function("sq/encode_768d", |b| b.iter(|| sq.encode(black_box(&q))));
    c.bench_function("sq/asymmetric_distance_768d", |b| {
        b.iter(|| sq.distance(black_box(&q), black_box(&code)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pq, bench_sq
);
criterion_main!(benches);
