//! Distance-kernel microbenchmarks at the paper's two embedding
//! dimensionalities (768 and 1536). These kernels are the unit of the
//! engine's [`sann_engine::CostModel`]; the measured numbers justify its
//! `dist_us_per_dim` default.

use sann_bench::microbench::{black_box, criterion_group, criterion_main, Criterion};
use sann_core::distance::{cosine_distance, dot, l2_squared};
use sann_core::rng::SplitMix64;

fn random_vec(dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..dim).map(|_| rng.next_f32() - 0.5).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for dim in [768usize, 1536] {
        let a = random_vec(dim, 1);
        let b = random_vec(dim, 2);
        group.bench_function(format!("l2_squared/{dim}"), |bencher| {
            bencher.iter(|| l2_squared(black_box(&a), black_box(&b)))
        });
        group.bench_function(format!("dot/{dim}"), |bencher| {
            bencher.iter(|| dot(black_box(&a), black_box(&b)))
        });
        group.bench_function(format!("cosine/{dim}"), |bencher| {
            bencher.iter(|| cosine_distance(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_batch_scan(c: &mut Criterion) {
    // A 1,000-vector scan: the IVF posting-list inner loop.
    let dim = 768;
    let n = 1_000;
    let mut rng = SplitMix64::new(3);
    let data: Vec<f32> = (0..n * dim).map(|_| rng.next_f32()).collect();
    let q = random_vec(dim, 4);
    c.bench_function("distance/scan_1k_768d", |bencher| {
        bencher.iter(|| {
            let mut best = f32::INFINITY;
            for i in 0..n {
                let d = l2_squared(black_box(&q), &data[i * dim..(i + 1) * dim]);
                if d < best {
                    best = d;
                }
            }
            best
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_kernels, bench_batch_scan
);
criterion_main!(benches);
