//! Execution-engine microbenchmarks: events per second of host time (the
//! DESIGN.md §4 ablation for the trace-replay design) and end-to-end
//! simulated-run cost at low and high concurrency.

use sann_bench::microbench::{black_box, criterion_group, criterion_main, Criterion};
use sann_engine::{Executor, QueryPlan, RunConfig, Segment};
use sann_index::IoReq;

fn diskann_like_plan() -> QueryPlan {
    let mut segs = Vec::new();
    segs.push(Segment::delay(400.0));
    for hop in 0..10u64 {
        segs.push(Segment::cpu_parallel(120.0, 4));
        segs.push(Segment::io(vec![
            IoReq::new(hop * 16384, 4096),
            IoReq::new(hop * 16384 + 4096, 4096),
            IoReq::new(hop * 16384 + 8192, 4096),
            IoReq::new(hop * 16384 + 12288, 4096),
        ]));
    }
    QueryPlan::new(segs)
}

fn bench_runs(c: &mut Criterion) {
    let plan = diskann_like_plan();
    let mut group = c.benchmark_group("engine");
    for conc in [1usize, 256] {
        let config = RunConfig {
            cores: 20,
            concurrency: conc,
            duration_us: 0.2e6,
            ..RunConfig::default()
        };
        group.bench_function(format!("run_0.2s_conc{conc}"), |b| {
            b.iter(|| black_box(Executor::new(config).run(std::slice::from_ref(&plan))))
        });
    }
    group.finish();
}

fn bench_cpu_only_throughput(c: &mut Criterion) {
    // Pure-CPU plan: measures raw event-loop throughput without the device.
    let plan = QueryPlan::new(vec![Segment::cpu(50.0)]);
    let config = RunConfig {
        cores: 8,
        concurrency: 64,
        duration_us: 0.2e6,
        ..RunConfig::default()
    };
    let mut group = c.benchmark_group("engine");
    group.bench_function("run_cpu_only_0.2s_conc64", |b| {
        b.iter(|| black_box(Executor::new(config).run(std::slice::from_ref(&plan))))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_runs, bench_cpu_only_throughput
);
criterion_main!(benches);
