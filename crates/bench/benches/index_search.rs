//! Search-throughput microbenchmarks of the four index families on one
//! dataset, at the paper's Table II search parameters.

use sann_bench::microbench::{black_box, criterion_group, criterion_main, Criterion};
use sann_core::Metric;
use sann_datagen::EmbeddingModel;
use sann_index::{
    DiskAnnConfig, DiskAnnIndex, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex,
    SearchParams, VamanaConfig, VectorIndex,
};

const N: usize = 5_000;
const DIM: usize = 128;

fn world() -> (sann_core::Dataset, sann_core::Dataset) {
    let model = EmbeddingModel::new(DIM, 16, 9);
    (model.generate(N), model.generate_queries(64))
}

fn bench_indexes(c: &mut Criterion) {
    let (base, queries) = world();
    let flat = FlatIndex::build(&base, Metric::L2);
    let ivf =
        IvfIndex::build(&base, Metric::L2, IvfConfig::default().with_nlist(128)).expect("ivf");
    let hnsw = HnswIndex::build(&base, Metric::L2, HnswConfig::default()).expect("hnsw");
    let diskann = DiskAnnIndex::build(
        &base,
        Metric::L2,
        DiskAnnConfig {
            graph: VamanaConfig {
                r: 32,
                ..VamanaConfig::default()
            },
            ..DiskAnnConfig::default()
        },
    )
    .expect("diskann");

    let params = SearchParams::default();
    let mut qi = 0usize;
    let mut next_query = move || {
        qi = (qi + 1) % 64;
        qi
    };

    let mut group = c.benchmark_group("index_search_k10");
    group.bench_function("flat", |b| {
        b.iter(|| flat.search(black_box(queries.row(next_query())), 10, &params))
    });
    let mut qi2 = 0usize;
    group.bench_function("ivf_nprobe16", |b| {
        b.iter(|| {
            qi2 = (qi2 + 1) % 64;
            ivf.search(black_box(queries.row(qi2)), 10, &params)
        })
    });
    let mut qi3 = 0usize;
    group.bench_function("hnsw_ef27", |b| {
        b.iter(|| {
            qi3 = (qi3 + 1) % 64;
            hnsw.search(black_box(queries.row(qi3)), 10, &params)
        })
    });
    let mut qi4 = 0usize;
    group.bench_function("diskann_l10_w4", |b| {
        b.iter(|| {
            qi4 = (qi4 + 1) % 64;
            diskann.search(black_box(queries.row(qi4)), 10, &params)
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_indexes
);
criterion_main!(benches);
