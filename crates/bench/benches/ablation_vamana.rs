//! DESIGN.md §4 ablation: Vamana's α-RNG pruning vs a plain (α = 1.0)
//! relative-neighborhood graph. α > 1 keeps long-range edges, which should
//! shorten search (fewer distance evaluations to converge) at equal recall.

use sann_bench::microbench::{black_box, criterion_group, criterion_main, Criterion};
use sann_core::Metric;
use sann_datagen::EmbeddingModel;
use sann_index::{VamanaConfig, VamanaGraph};

fn bench_alpha(c: &mut Criterion) {
    let model = EmbeddingModel::new(128, 16, 13);
    let base = model.generate(5_000);
    let queries = model.generate_queries(32);

    let mut group = c.benchmark_group("vamana_alpha");
    for alpha in [1.0f32, 1.2, 1.5] {
        let graph = VamanaGraph::build(
            &base,
            Metric::L2,
            VamanaConfig {
                alpha,
                r: 32,
                ..VamanaConfig::default()
            },
        )
        .expect("graph builds");
        let mut qi = 0usize;
        group.bench_function(format!("search_l50/alpha_{alpha}"), |b| {
            b.iter(|| {
                qi = (qi + 1) % 32;
                black_box(graph.greedy_search(&base, Metric::L2, queries.row(qi), 50))
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let model = EmbeddingModel::new(64, 8, 14);
    let base = model.generate(800);
    let mut group = c.benchmark_group("vamana_build");
    for alpha in [1.0f32, 1.2] {
        group.bench_function(format!("n800_r32/alpha_{alpha}"), |b| {
            b.iter(|| {
                black_box(
                    VamanaGraph::build(
                        &base,
                        Metric::L2,
                        VamanaConfig {
                            alpha,
                            r: 32,
                            ..VamanaConfig::default()
                        },
                    )
                    .expect("graph builds"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_alpha, bench_build
);
criterion_main!(benches);
