//! Observability-overhead microbenchmark: the ISSUE's acceptance check
//! that span tracing costs < 2% at `--trace-level off` and `run`.
//!
//! `Executor::run` *is* `run_traced(.., Off)`, so the baseline is the
//! instrumented hot loop at `off`; the check compares `run` (counters +
//! phase attribution, no spans) against it. `query`/`io` are reported for
//! information — they allocate spans and are allowed to cost more.
//!
//! A second gate covers the iostat machinery: provenance-tagged plans
//! (what the index layer emits so `vdbbench iostat` can attribute every
//! read) run through the same per-read accounting as untagged ones, so
//! tagging must also cost < 2% over the untagged baseline. The measured
//! numbers are written to `BENCH_obs.json` at the workspace root so
//! `scripts/check.sh` (and CI) archive them alongside the pass/fail.

use sann_bench::microbench::{black_box, criterion_group, criterion_main, Criterion};
use sann_engine::{Executor, QueryPlan, RunConfig, Segment};
use sann_index::IoReq;
use sann_obs::{IoProvenance, TraceLevel};

fn diskann_like_plan(tagged: bool) -> QueryPlan {
    let req = |offset: u64| {
        if tagged {
            IoReq::tagged(offset, 4096, 3332, IoProvenance::GraphAdjacency)
        } else {
            IoReq::new(offset, 4096)
        }
    };
    let mut segs = Vec::new();
    for hop in 0..10u64 {
        segs.push(Segment::cpu(120.0));
        segs.push(Segment::io(vec![
            req(hop * 16384),
            req(hop * 16384 + 4096),
            req(hop * 16384 + 8192),
            req(hop * 16384 + 12288),
        ]));
    }
    segs.push(Segment::cpu(60.0));
    QueryPlan::new(segs)
}

fn measure(c: &mut Criterion, level: TraceLevel, tagged: bool) -> f64 {
    let plan = diskann_like_plan(tagged);
    let config = RunConfig {
        cores: 20,
        concurrency: 64,
        duration_us: 0.1e6,
        ..RunConfig::default()
    };
    let mut group = c.benchmark_group("obs_overhead");
    let suffix = if tagged { "_tagged" } else { "" };
    let stats = group.bench_function(format!("run_0.1s_conc64_{level}{suffix}"), |b| {
        b.iter(|| black_box(Executor::new(config).run_traced(std::slice::from_ref(&plan), level)))
    });
    group.finish();
    stats.min_ns
}

/// Measures `candidate` against `baseline` with the retry discipline: the
/// min-over-samples estimates are compared, a few times over, so a
/// scheduler hiccup cannot fail the build. Returns the last relative
/// overhead (candidate/baseline − 1).
fn gated_overhead(
    c: &mut Criterion,
    what: &str,
    baseline: impl Fn(&mut Criterion) -> f64,
    candidate: impl Fn(&mut Criterion) -> f64,
) -> f64 {
    let mut last = f64::INFINITY;
    for attempt in 0..3 {
        let base_ns = baseline(c);
        let cand_ns = candidate(c);
        last = cand_ns / base_ns - 1.0;
        println!(
            "obs_overhead: {what}: {:+.2}% (attempt {attempt})",
            last * 100.0
        );
        if last < 0.02 {
            break;
        }
    }
    assert!(
        last < 0.02,
        "{what} must cost < 2% (measured {:+.2}%)",
        last * 100.0
    );
    last
}

fn bench_overhead(c: &mut Criterion) {
    let run_overhead = gated_overhead(
        c,
        "level run vs off",
        |c| measure(c, TraceLevel::Off, false),
        |c| measure(c, TraceLevel::Run, false),
    );
    let tagged_overhead = gated_overhead(
        c,
        "provenance-tagged vs untagged (level off)",
        |c| measure(c, TraceLevel::Off, false),
        |c| measure(c, TraceLevel::Off, true),
    );
    // Informational: the span-recording levels.
    let query_ns = measure(c, TraceLevel::Query, false);
    let io_ns = measure(c, TraceLevel::Io, false);
    let json = format!(
        "{{\n  \"run_vs_off_overhead\": {run_overhead:.6},\n  \
         \"tagged_vs_untagged_overhead\": {tagged_overhead:.6},\n  \
         \"query_min_ns\": {query_ns:.0},\n  \"io_min_ns\": {io_ns:.0},\n  \
         \"gate\": 0.02\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
    std::fs::write(&path, json).expect("write BENCH_obs.json");
    println!("obs_overhead: wrote {}", path.display());
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_overhead
);
criterion_main!(benches);
