//! Observability-overhead microbenchmark: the ISSUE's acceptance check
//! that span tracing costs < 2% at `--trace-level off` and `run`.
//!
//! `Executor::run` *is* `run_traced(.., Off)`, so the baseline is the
//! instrumented hot loop at `off`; the check compares `run` (counters +
//! phase attribution, no spans) against it. `query`/`io` are reported for
//! information — they allocate spans and are allowed to cost more.

use sann_bench::microbench::{black_box, criterion_group, criterion_main, Criterion};
use sann_engine::{Executor, QueryPlan, RunConfig, Segment};
use sann_index::IoReq;
use sann_obs::TraceLevel;

fn diskann_like_plan() -> QueryPlan {
    let mut segs = Vec::new();
    for hop in 0..10u64 {
        segs.push(Segment::cpu(120.0));
        segs.push(Segment::io(vec![
            IoReq::new(hop * 16384, 4096),
            IoReq::new(hop * 16384 + 4096, 4096),
            IoReq::new(hop * 16384 + 8192, 4096),
            IoReq::new(hop * 16384 + 12288, 4096),
        ]));
    }
    segs.push(Segment::cpu(60.0));
    QueryPlan::new(segs)
}

fn measure(c: &mut Criterion, level: TraceLevel) -> f64 {
    let plan = diskann_like_plan();
    let config = RunConfig {
        cores: 20,
        concurrency: 64,
        duration_us: 0.1e6,
        ..RunConfig::default()
    };
    let mut group = c.benchmark_group("obs_overhead");
    let stats = group.bench_function(format!("run_0.1s_conc64_{level}"), |b| {
        b.iter(|| black_box(Executor::new(config).run_traced(std::slice::from_ref(&plan), level)))
    });
    group.finish();
    stats.min_ns
}

fn bench_overhead(c: &mut Criterion) {
    // The overhead check compares min-over-samples (the least
    // noise-contaminated estimate), retrying a few times before declaring
    // failure so a scheduler hiccup cannot fail the build.
    let mut last = f64::INFINITY;
    for attempt in 0..3 {
        let off_ns = measure(c, TraceLevel::Off);
        let run_ns = measure(c, TraceLevel::Run);
        last = run_ns / off_ns - 1.0;
        println!(
            "obs_overhead: level run vs off: {:+.2}% (attempt {attempt})",
            last * 100.0
        );
        if last < 0.02 {
            break;
        }
    }
    assert!(
        last < 0.02,
        "tracing at level `run` must cost < 2% over `off` (measured {:+.2}%)",
        last * 100.0
    );
    // Informational: the span-recording levels.
    for level in [TraceLevel::Query, TraceLevel::Io] {
        measure(c, level);
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_overhead
);
criterion_main!(benches);
