//! Device-model microbenchmarks: the simulator must schedule millions of
//! requests per second of host time for 256-thread sweeps to be cheap.

use sann_bench::microbench::{black_box, criterion_group, criterion_main, Criterion};
use sann_ssdsim::{Calibrator, DeviceSim, PageCache, SsdModel};

fn bench_device(c: &mut Criterion) {
    c.bench_function("ssd/schedule_4k", |b| {
        let mut dev = DeviceSim::new(SsdModel::samsung_990_pro());
        let mut t = 0.0f64;
        b.iter(|| {
            t += 1.0;
            black_box(dev.schedule(t, 4096))
        })
    });

    c.bench_function("ssd/calibration_run", |b| {
        let calibrator = Calibrator::new(SsdModel::samsung_990_pro()).with_duration_us(10_000.0);
        b.iter(|| black_box(calibrator.run()))
    });
}

fn bench_pagecache(c: &mut Criterion) {
    c.bench_function("pagecache/hit", |b| {
        let mut cache = PageCache::new(1 << 20);
        cache.access(0, 4096);
        b.iter(|| black_box(cache.access(0, 4096)))
    });
    c.bench_function("pagecache/miss_evict", |b| {
        let mut cache = PageCache::new(64 * 4096);
        let mut page = 0u64;
        b.iter(|| {
            page += 1;
            black_box(cache.access(page * 4096, 4096))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_device, bench_pagecache
);
criterion_main!(benches);
