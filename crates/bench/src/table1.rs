//! Table I: the benchmarking environment, including the SSD envelope the
//! paper establishes with fio before any database experiments (§III-A).

use crate::context::BenchContext;
use crate::report::Table;
use sann_core::Result;
use sann_ssdsim::{Calibrator, SsdModel};

/// Prints the simulated environment and the fio-equivalent device envelope;
/// returns the rendered table.
///
/// # Errors
///
/// Propagates CSV write errors.
pub fn run(ctx: &BenchContext) -> Result<String> {
    let model = SsdModel::samsung_990_pro();
    let report = Calibrator::new(model).run();

    let mut out = String::new();
    out.push_str("Table I: benchmarking environment (simulated)\n");
    out.push_str(&format!(
        "  CPU            : {} simulated cores\n",
        ctx.cores
    ));
    out.push_str(&format!(
        "  Storage device : modeled Samsung 990 Pro class NVMe ({} flash units, {:.0} us media, {:.1} GiB/s bus)\n",
        model.units,
        model.base_latency_us,
        model.device_bw * 1e6 / (1u64 << 30) as f64
    ));
    out.push_str(&format!(
        "  Run duration   : {:.0} s simulated per measurement\n\n",
        ctx.duration_us / 1e6
    ));
    out.push_str(&report.to_string());
    out.push('\n');

    let mut table = Table::new(["workload", "paper", "measured"]);
    table.row([
        "4KiB randread, 1 core".to_owned(),
        "324.3 KIOPS".to_owned(),
        format!("{:.1} KIOPS", report.single_core_iops / 1e3),
    ]);
    table.row([
        "4KiB randread, QD64 x 4 cores".to_owned(),
        "1.3 MIOPS".to_owned(),
        format!("{:.2} MIOPS", report.peak_iops / 1e6),
    ]);
    table.row([
        "128KiB seqread, 32 threads".to_owned(),
        "7.2 GiB/s".to_owned(),
        format!("{:.2} GiB/s", report.seq_bandwidth_gib),
    ]);
    out.push_str("\npaper-vs-measured:\n");
    out.push_str(&table.to_text());
    ctx.write_csv("table1.csv", &table.to_csv())?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_envelope_rows() {
        let mut ctx = BenchContext::new(0.001);
        ctx.results_dir = std::env::temp_dir().join("sann-table1-test");
        let text = run(&ctx).unwrap();
        assert!(text.contains("KIOPS"));
        assert!(text.contains("GiB/s"));
        assert!(text.contains("324.3"));
        std::fs::remove_dir_all(&ctx.results_dir).ok();
    }
}
