//! Figures 2, 3, and 4: throughput, P99 tail latency, and CPU usage of all
//! seven setups as query concurrency grows from 1 to 256 (§IV).

use crate::context::BenchContext;
use crate::report::{num, Table};
use sann_core::Result;
use sann_datagen::workload::CONCURRENCY_LADDER;
use sann_vdb::SetupKind;

/// Which of the three figures to render from the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Fig. 2: throughput (QPS).
    Throughput,
    /// Fig. 3: P99 tail latency (µs).
    P99Latency,
    /// Fig. 4: global CPU usage (%), large datasets only in the paper.
    CpuUsage,
}

impl Figure {
    fn title(&self) -> &'static str {
        match self {
            Figure::Throughput => "Figure 2: throughput (QPS) vs query threads",
            Figure::P99Latency => "Figure 3: P99 tail latency (us) vs query threads",
            Figure::CpuUsage => "Figure 4: global CPU usage (%) vs query threads",
        }
    }

    fn file(&self) -> &'static str {
        match self {
            Figure::Throughput => "fig2.csv",
            Figure::P99Latency => "fig3.csv",
            Figure::CpuUsage => "fig4.csv",
        }
    }

    fn cell(&self, m: &sann_engine::RunMetrics) -> String {
        match self {
            Figure::Throughput => num(m.qps),
            Figure::P99Latency => num(m.p99_latency_us),
            Figure::CpuUsage => format!("{:.1}", m.cpu_utilization * 100.0),
        }
    }
}

/// Runs the concurrency sweep and renders one of the figures.
///
/// # Errors
///
/// Propagates build/search errors.
pub fn run(ctx: &mut BenchContext, figure: Figure) -> Result<String> {
    let specs = match figure {
        // The paper's Fig. 4 only shows the two large datasets.
        Figure::CpuUsage => ctx
            .dataset_specs()
            .into_iter()
            .filter(|s| s.name.ends_with("-l"))
            .collect::<Vec<_>>(),
        _ => ctx.dataset_specs(),
    };

    let mut header = vec!["dataset".to_owned(), "setup".to_owned()];
    header.extend(CONCURRENCY_LADDER.iter().map(|c| format!("c{c}")));
    let mut table = Table::new(header);

    for spec in &specs {
        for kind in SetupKind::all() {
            let mut cells = vec![spec.name.clone(), kind.name().to_owned()];
            for &concurrency in CONCURRENCY_LADDER {
                match ctx.run_tuned(spec, kind, concurrency)? {
                    // LanceDB-HNSW beyond its client limit: the paper shows
                    // no point (out-of-memory).
                    None => cells.push("oom".to_owned()),
                    Some(m) => cells.push(figure.cell(&m)),
                }
            }
            table.row(cells);
        }
    }
    ctx.write_csv(figure.file(), &table.to_csv())?;
    let mut out = format!("{}\n", figure.title());
    out.push_str("(storage-based setups: milvus-diskann, lancedb-ivf)\n");
    out.push_str(&table.to_text());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small end-to-end smoke of the sweep (single dataset, tiny scale).
    #[test]
    fn sweep_produces_all_setup_rows() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("openai-s".into());
        ctx.duration_us = 0.5e6;
        ctx.results_dir = std::env::temp_dir().join("sann-fig2-test");
        let text = run(&mut ctx, Figure::Throughput).unwrap();
        for kind in SetupKind::all() {
            assert!(text.contains(kind.name()), "missing {}", kind.name());
        }
        assert!(text.contains("oom"), "lancedb-hnsw must oom at 256");
        std::fs::remove_dir_all(&ctx.results_dir).ok();
    }
}
