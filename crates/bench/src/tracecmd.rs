//! `vdbbench trace` — one fully-traced run of a tuned setup, exported for
//! timeline inspection.
//!
//! Runs the setup's tuned plans once with span tracing enabled, writes the
//! Chrome/Perfetto `trace.json` (and a JSONL sibling) to `--trace-out`,
//! and prints the per-phase latency breakdown table. The run is the same
//! deterministic simulation the figures use, so the exported bytes are
//! identical across identical-seed invocations — `sann-xtask lint
//! --determinism` audits exactly that.

use crate::context::BenchContext;
use crate::report::{self, num};
use sann_core::Result;
use sann_obs::export::{chrome_trace, jsonl};
use sann_obs::TraceLevel;
use sann_vdb::SetupKind;

/// Default setup to trace: the paper's storage-resident headline index.
const DEFAULT_SETUP: SetupKind = SetupKind::MilvusDiskann;

/// Default closed-loop clients for the traced run.
const DEFAULT_CLIENTS: usize = 8;

/// Runs the subcommand. `rest` holds flags `from_args` did not consume:
/// `--setup NAME` and `--clients N`.
///
/// # Errors
///
/// Returns [`sann_core::Error::InvalidParameter`] on malformed flags and
/// propagates build/search/filesystem errors.
pub fn run(ctx: &mut BenchContext, rest: &[String]) -> Result<String> {
    let (kind, clients) = parse_flags(rest)?;
    // `trace` is pointless at `off`; default to the full ladder unless the
    // user pinned a level explicitly.
    let level = if ctx.trace_level == TraceLevel::Off {
        TraceLevel::Io
    } else {
        ctx.trace_level
    };
    let spec = ctx
        .dataset_specs()
        .into_iter()
        .next()
        .ok_or_else(|| sann_core::Error::invalid_parameter("args", "no dataset matches"))?;
    let plans = ctx.plans(&spec, kind)?;
    let traced = ctx
        .run_traced(kind, &plans, clients, level)
        .ok_or_else(|| {
            sann_core::Error::invalid_parameter(
                "args",
                format!("{} does not support {clients} clients", kind.name()),
            )
        })?;
    traced
        .trace
        .validate()
        .map_err(|e| sann_core::Error::invalid_parameter("trace", e))?;

    let mut out = format!(
        "Trace: {} on {} at {clients} clients, level {level}\n",
        kind.name(),
        spec.name
    );
    out.push_str(&format!(
        "{} queries, {} spans, {} io events, horizon {} us\n",
        traced.metrics.completed,
        traced.trace.spans.len(),
        traced.trace.io.len(),
        num(traced.trace.end_ns as f64 / 1_000.0),
    ));
    if let Some(path) = ctx.trace_out.clone() {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, chrome_trace(&traced.trace))?;
        let jsonl_path = path.with_extension("jsonl");
        std::fs::write(&jsonl_path, jsonl(&traced.trace))?;
        out.push_str(&format!(
            "wrote {} (load in https://ui.perfetto.dev) and {}\n",
            path.display(),
            jsonl_path.display()
        ));
    } else {
        out.push_str("(pass --trace-out PATH to export the timeline)\n");
    }
    out.push_str("\nLatency breakdown (simulated time per query):\n");
    out.push_str(&report::latency_breakdown(&traced.metrics.phase_breakdown).to_text());
    Ok(out)
}

fn parse_flags(rest: &[String]) -> Result<(SetupKind, usize)> {
    let mut kind = DEFAULT_SETUP;
    let mut clients = DEFAULT_CLIENTS;
    let mut it = rest.iter().skip_while(|a| a.as_str() != "trace").skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--setup" => {
                let name = it.next().ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", "--setup needs a value")
                })?;
                kind = SetupKind::parse(name).ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", format!("unknown setup `{name}`"))
                })?;
            }
            "--clients" => {
                let value = it.next().ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", "--clients needs a value")
                })?;
                clients = value.parse().map_err(|_| {
                    sann_core::Error::invalid_parameter(
                        "args",
                        format!("bad value for --clients: `{value}`"),
                    )
                })?;
            }
            other => {
                return Err(sann_core::Error::invalid_parameter(
                    "args",
                    format!("unknown trace flag `{other}`"),
                ));
            }
        }
    }
    Ok((kind, clients))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_with_defaults() {
        let (kind, clients) = parse_flags(&strings(&["trace"])).unwrap();
        assert_eq!(kind, DEFAULT_SETUP);
        assert_eq!(clients, DEFAULT_CLIENTS);
        let (kind, clients) = parse_flags(&strings(&[
            "trace",
            "--setup",
            "qdrant-hnsw",
            "--clients",
            "4",
        ]))
        .unwrap();
        assert_eq!(kind, SetupKind::QdrantHnsw);
        assert_eq!(clients, 4);
        assert!(parse_flags(&strings(&["trace", "--setup", "pinecone"])).is_err());
        assert!(parse_flags(&strings(&["trace", "--bogus"])).is_err());
    }

    #[test]
    fn traced_run_exports_and_reports_breakdown() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.2e6;
        let dir = std::env::temp_dir().join("sann-tracecmd-test");
        ctx.trace_out = Some(dir.join("run.json"));
        let text = run(&mut ctx, &strings(&["trace", "--clients", "4"])).unwrap();
        assert!(text.contains("Latency breakdown"));
        assert!(text.contains("flash_service"));
        let json = std::fs::read_to_string(dir.join("run.json")).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        let lines = std::fs::read_to_string(dir.join("run.jsonl")).unwrap();
        assert!(lines.lines().next().unwrap().contains("\"type\":\"meta\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
