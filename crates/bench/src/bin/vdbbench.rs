//! `vdbbench` — reproduces every table and figure of the paper.
//!
//! ```text
//! vdbbench [--scale X] [--cores N] [--duration-secs S] [--dataset NAME] [--results DIR] <subcommand>
//!
//! subcommands:
//!   table1        device envelope (fio-equivalent calibration)
//!   table2        index parameters and achieved recall@10
//!   fig2          throughput vs concurrency, all setups
//!   fig3          P99 latency vs concurrency, all setups
//!   fig4          CPU usage vs concurrency (large datasets)
//!   fig5          DiskANN bandwidth timelines
//!   fig6          DiskANN per-query bandwidth + request sizes
//!   fig7..fig11   search_list sweeps (run together as `fig7`)
//!   fig12..fig15  beam_width sweeps (run together as `fig12`)
//!   ext-rw        extension: hybrid read-write workloads (SVIII)
//!   ext-filter    extension: payload-filtered search (SVIII)
//!   ext-spann     extension: DiskANN vs SPANN storage indexes (SII-B)
//!   trace         one traced run: Perfetto trace.json/JSONL + latency breakdown
//!   iostat        I/O characterization: provenance breakdown, telemetry, $/query
//!   explore       I/O design-space sweep: layout x prefetch x pipelining
//!   all           everything above in order
//! ```

use sann_bench::{
    context::BenchContext, explore, ext_filter, ext_rw, ext_spann, fig12_15, fig2_4, fig5_6,
    fig7_11, iostat, table1, table2, tracecmd,
};
use sann_vdb::SetupKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(err) = real_main(&args) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
}

fn real_main(args: &[String]) -> sann_core::Result<()> {
    let (mut ctx, rest) = BenchContext::from_args(args)?;
    let sub = rest.first().map(String::as_str).unwrap_or("help");
    // sann-lint: allow(wall-clock) -- harness-side progress timer; never feeds simulated metrics
    let started = std::time::Instant::now();
    // Fan the cold prep (dataset generation + index builds) for multi-setup
    // subcommands out over --prep-threads workers; warm artifacts load from
    // the cache instead. Subcommands with bespoke prep stay lazy.
    match sub {
        "table2" | "fig2" | "fig3" | "fig4" | "all" => ctx.prefetch(&SetupKind::all())?,
        "fig5" | "fig6" | "fig7" | "fig8" | "fig9" | "fig10" | "fig11" | "fig12" | "fig13"
        | "fig14" | "fig15" | "explore" => ctx.prefetch(&[SetupKind::MilvusDiskann])?,
        _ => {}
    }
    match sub {
        "table1" => println!("{}", table1::run(&ctx)?),
        "table2" => println!("{}", table2::run(&mut ctx)?),
        "fig2" => println!("{}", fig2_4::run(&mut ctx, fig2_4::Figure::Throughput)?),
        "fig3" => println!("{}", fig2_4::run(&mut ctx, fig2_4::Figure::P99Latency)?),
        "fig4" => println!("{}", fig2_4::run(&mut ctx, fig2_4::Figure::CpuUsage)?),
        "fig5" => println!("{}", fig5_6::run_fig5(&mut ctx)?),
        "fig6" => println!("{}", fig5_6::run_fig6(&mut ctx)?),
        "fig7" | "fig8" | "fig9" | "fig10" | "fig11" => {
            println!("{}", fig7_11::run(&mut ctx)?)
        }
        "fig12" | "fig13" | "fig14" | "fig15" => println!("{}", fig12_15::run(&mut ctx)?),
        "ext-rw" => println!("{}", ext_rw::run(&mut ctx)?),
        "ext-filter" => println!("{}", ext_filter::run(&mut ctx)?),
        "ext-spann" => println!("{}", ext_spann::run(&mut ctx)?),
        "trace" => println!("{}", tracecmd::run(&mut ctx, &rest)?),
        "iostat" => println!("{}", iostat::run(&mut ctx, &rest)?),
        "explore" => println!("{}", explore::run(&mut ctx, &rest)?),
        "all" => {
            println!("{}", table1::run(&ctx)?);
            println!("{}", table2::run(&mut ctx)?);
            println!("{}", fig2_4::run(&mut ctx, fig2_4::Figure::Throughput)?);
            println!("{}", fig2_4::run(&mut ctx, fig2_4::Figure::P99Latency)?);
            println!("{}", fig2_4::run(&mut ctx, fig2_4::Figure::CpuUsage)?);
            println!("{}", fig5_6::run_fig5(&mut ctx)?);
            println!("{}", fig5_6::run_fig6(&mut ctx)?);
            println!("{}", fig7_11::run(&mut ctx)?);
            println!("{}", fig12_15::run(&mut ctx)?);
            println!("{}", ext_rw::run(&mut ctx)?);
            println!("{}", ext_filter::run(&mut ctx)?);
            println!("{}", ext_spann::run(&mut ctx)?);
        }
        "help" | "--help" | "-h" => {
            println!("usage: vdbbench [--scale X] [--cores N] [--duration-secs S] [--dataset NAME] [--results DIR] [--cache-dir DIR] [--no-cache] [--prep-threads N] [--trace-out PATH] [--trace-level off|run|query|io] [--fault-profile none|aging|gc-heavy|flaky] <table1|table2|fig2..fig15|ext-rw|ext-filter|ext-spann|trace|iostat|explore|all>");
            println!("  trace [--setup NAME] [--clients N]   export one traced run (Perfetto trace.json + JSONL) with a latency breakdown");
            println!("  iostat [--setup NAME] [--clients N] [--device 990-pro|sata]   per-provenance I/O breakdown, queue-depth/utilization timelines, read amplification, and the $/query ledger under healthy and aging devices");
            println!("  explore [--setup NAME] [--clients N]   sweep the I/O design space ({{naive,paged}} layout x {{,look-ahead}} prefetch x {{phased,pipelined}} beam search) at fixed tuned knobs, reporting I/Os, device reads, read amplification, recall, and tail latency per strategy");
            println!("  prep artifacts (datasets, index builds, tuned knobs) persist under --cache-dir (default .sann-cache); warm runs skip prep entirely");
            println!("  --fault-profile injects deterministic SSD faults (read errors, latency spikes, GC pauses, throttling); each database reacts with its own retry/hedge/deadline policy and reports degraded-recall accounting");
            return Ok(());
        }
        other => {
            return Err(sann_core::Error::invalid_parameter(
                "subcommand",
                format!("unknown subcommand `{other}` (see `vdbbench help`)"),
            ));
        }
    }
    if let Some(stats) = ctx.cache_stats() {
        eprintln!(
            "[cache] {} hits, {} misses ({} corrupt entries rebuilt)",
            stats.hits, stats.misses, stats.corrupt
        );
    }
    eprintln!("[done] {sub} in {:.1}s", started.elapsed().as_secs_f64());
    Ok(())
}
