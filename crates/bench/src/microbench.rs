//! A minimal, criterion-shaped microbenchmark harness.
//!
//! The workspace carries no external dependencies, so the `benches/` targets
//! run on this shim instead of criterion. It reproduces the slice of the
//! criterion API the benches use — `Criterion::default()` with the builder
//! knobs, `benchmark_group`/`bench_function`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros — and reports
//! mean/min ns-per-iteration on stdout. Wall-clock timing is exactly what a
//! microbenchmark is for, hence the lint suppressions; simulation crates
//! still may not touch `Instant`.

pub use std::hint::black_box;
// sann-lint: allow(wall-clock) -- microbenchmark harness measures real elapsed time
use std::time::{Duration, Instant};

/// Top-level harness handle (criterion-compatible subset).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Total time budget for the measured samples.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark, returning its measured statistics so a
    /// bench target can compare two configurations (e.g. the tracing
    /// overhead check in `benches/obs_overhead.rs`).
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> BenchStats {
        run_one(self, name.as_ref(), f)
    }
}

/// Summary of one benchmark's measured samples, ns per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchStats {
    /// Mean over the measured samples.
    pub mean_ns: f64,
    /// Fastest sample (least noise-contaminated).
    pub min_ns: f64,
}

/// A named group of benchmarks sharing the harness configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> BenchStats {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_one(self.criterion, &full, f)
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Iterations to run this sample.
    iters: u64,
    /// Measured duration of the sample, filled in by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `body`.
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        // sann-lint: allow(wall-clock) -- the timed region of the microbenchmark
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(criterion: &Criterion, name: &str, mut f: impl FnMut(&mut Bencher)) -> BenchStats {
    // Warm-up: discover a per-sample iteration count that fills roughly one
    // sample slot, starting from a single iteration.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // sann-lint: allow(wall-clock) -- harness warm-up budget
    let warm_up_start = Instant::now();
    let mut per_iter = loop {
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        if warm_up_start.elapsed() >= criterion.warm_up_time || per_iter > 0.05 {
            break per_iter;
        }
        bencher.iters = (bencher.iters * 2).min(1 << 24);
    };
    if per_iter <= 0.0 {
        per_iter = 1e-9;
    }

    let sample_budget = criterion.measurement_time.as_secs_f64() / criterion.sample_size as f64;
    // per_iter is floored at 1e-9 above, so the quotient is finite and
    // non-negative; the saturating cast plus the clamp bound iters even for
    // degenerate budgets.
    let iters = ((sample_budget / per_iter) as u64).clamp(1, 1 << 24);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(criterion.sample_size);
    for _ in 0..criterion.sample_size {
        let mut sample = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut sample);
        samples_ns.push(sample.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(f64::total_cmp);
    let min = samples_ns.first().copied().unwrap_or(0.0);
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!(
        "{name:<40} {mean:>12.1} ns/iter (min {min:.1}, {iters} iters x {} samples)",
        samples_ns.len()
    );
    BenchStats {
        mean_ns: mean,
        min_ns: min,
    }
}

/// Declares a benchmark entry function from targets (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::microbench::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut runs = 0u64;
        let stats = c.bench_function("smoke/add", |b| {
            runs += 1;
            b.iter(|| black_box(1u64) + black_box(2u64))
        });
        assert!(runs >= 3, "warm-up plus samples must call the closure");
        assert!(stats.mean_ns >= stats.min_ns);
        assert!(stats.min_ns >= 0.0);
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| black_box(7u32)));
        group.finish();
    }
}
