//! Extension experiment (paper §VIII / related work): filtered vector
//! search.
//!
//! The benchmarked databases support payload-filtered search; the paper
//! measures only unfiltered traffic. This experiment characterizes the
//! post-filtering strategy (over-fetch from the index, filter, grow on
//! starvation): as the filter gets more selective, the index must be asked
//! for ever larger candidate sets, multiplying per-query work.

use crate::context::{BenchContext, K};
use crate::report::{num, Table};
use sann_core::recall::recall_at_k;
use sann_core::{Metric, Result, TopK};
use sann_index::SearchParams;
use sann_vdb::{Collection, Filter, IndexSpec, Payload, Value};

/// (label, matching buckets of 100) selectivity ladder.
const SELECTIVITY: &[(&str, i64)] = &[("1.00", 100), ("0.50", 50), ("0.10", 10), ("0.01", 1)];

/// Number of queries evaluated per selectivity level.
const QUERIES: usize = 100;

/// Runs the filtered-search characterization on each dataset's small
/// variant.
///
/// # Errors
///
/// Propagates build/search errors.
pub fn run(ctx: &mut BenchContext) -> Result<String> {
    let mut table = Table::new([
        "dataset",
        "selectivity",
        "recall@10",
        "mean_dists",
        "vs_unfiltered",
    ]);
    for spec in ctx
        .dataset_specs()
        .into_iter()
        .filter(|s| s.name.ends_with("-s"))
    {
        let data = ctx.dataset(&spec);
        let base = data.base.clone();
        let queries = data.queries.truncated(QUERIES);

        let mut collection = Collection::new(&spec.name, base.dim(), Metric::L2)?;
        for (i, row) in base.iter().enumerate() {
            collection.insert(
                row,
                Payload::new().with("bucket", Value::Int((i % 100) as i64)),
            )?;
        }
        collection.build_index(IndexSpec::Hnsw(Default::default()))?;
        let params = SearchParams::default().with_ef_search(48);

        let mut unfiltered_dists = 0.0f64;
        for (label, buckets) in SELECTIVITY {
            let filter = Filter::range("bucket", 0.0, (*buckets - 1) as f64);
            let filter = if *buckets == 100 { None } else { Some(&filter) };
            let mut recall_sum = 0.0;
            let mut dists = 0.0f64;
            for (qi, q) in queries.iter().enumerate() {
                let (hits, trace) = collection.search_traced(q, K, &params, filter)?;
                dists += trace.compute_count() as f64;
                let truth = filtered_truth(&base, q, *buckets, K);
                let ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
                recall_sum += recall_at_k(&truth, &ids, K);
                let _ = qi;
            }
            let mean_dists = dists / QUERIES as f64;
            if *buckets == 100 {
                unfiltered_dists = mean_dists;
            }
            table.row([
                spec.name.clone(),
                (*label).to_owned(),
                format!("{:.3}", recall_sum / QUERIES as f64),
                num(mean_dists),
                format!("{:.1}x", mean_dists / unfiltered_dists.max(1.0)),
            ]);
        }
    }
    ctx.write_csv("ext_filter.csv", &table.to_csv())?;
    let mut out = String::from(
        "Extension: payload-filtered search (post-filtering with over-fetch)\n\
         (HNSW ef=48; selectivity = fraction of vectors passing the filter)\n",
    );
    out.push_str(&table.to_text());
    Ok(out)
}

/// Exact top-k among vectors whose bucket passes the filter.
fn filtered_truth(base: &sann_core::Dataset, q: &[f32], buckets: i64, k: usize) -> Vec<u32> {
    let mut topk = TopK::new(k);
    for (i, row) in base.iter().enumerate() {
        if ((i % 100) as i64) < buckets {
            topk.push(i as u32, Metric::L2.distance(q, row));
        }
    }
    topk.into_sorted_vec().into_iter().map(|n| n.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_filters_cost_more_work() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("openai-s".into());
        ctx.results_dir = std::env::temp_dir().join("sann-extfilter-test");
        let text = run(&mut ctx).unwrap();
        assert!(text.contains("0.01"), "selectivity ladder missing:\n{text}");
        std::fs::remove_dir_all(&ctx.results_dir).ok();
    }
}
