//! Table II: build/search-time parameters and achieved recall@10 of every
//! index on every dataset.

use crate::context::{BenchContext, K};
use crate::report::Table;
use sann_core::Result;
use sann_vdb::SetupKind;

/// Reproduces Table II; returns the rendered table.
///
/// # Errors
///
/// Propagates build/search errors.
pub fn run(ctx: &mut BenchContext) -> Result<String> {
    let mut table = Table::new([
        "dataset",
        "index",
        "nlist",
        "nprobe",
        "M",
        "efC",
        "efSearch",
        "search_list",
        "recall@10",
    ]);
    // The three Table II index families, represented by the setups that tune
    // them on Milvus (plus LanceDB's separately tuned variants).
    let kinds = [
        SetupKind::MilvusIvf,
        SetupKind::MilvusHnsw,
        SetupKind::LancedbHnsw,
        SetupKind::MilvusDiskann,
        SetupKind::LancedbIvf,
    ];
    for spec in ctx.dataset_specs() {
        for kind in kinds {
            let prepared = ctx.setup(&spec, kind)?;
            let p = &prepared.setup.params;
            let (nlist, nprobe, m, efc, efs, sl) = match kind {
                SetupKind::MilvusIvf | SetupKind::LancedbIvf => (
                    p.nlist.to_string(),
                    p.nprobe.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ),
                SetupKind::MilvusDiskann => (
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    p.search_list.to_string(),
                ),
                _ => (
                    String::new(),
                    String::new(),
                    p.m.to_string(),
                    p.ef_construction.to_string(),
                    p.ef_search.to_string(),
                    String::new(),
                ),
            };
            table.row([
                spec.name.clone(),
                kind.name().to_owned(),
                nlist,
                nprobe,
                m,
                efc,
                efs,
                sl,
                format!("{:.3}", prepared.recall),
            ]);
        }
    }
    ctx.write_csv("table2.csv", &table.to_csv())?;
    let mut out = String::from("Table II: index parameters and achieved recall@10\n");
    out.push_str(&format!(
        "(k = {K}, target recall >= 0.9; LanceDB-IVF's nprobe ladder is capped as in the paper)\n"
    ));
    out.push_str(&table.to_text());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_table_has_all_rows() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.results_dir = std::env::temp_dir().join("sann-table2-test");
        let text = run(&mut ctx).unwrap();
        assert!(text.contains("milvus-ivf"));
        assert!(text.contains("milvus-diskann"));
        assert!(text.contains("lancedb-ivf"));
        std::fs::remove_dir_all(&ctx.results_dir).ok();
    }
}
