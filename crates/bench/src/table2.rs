//! Table II: build/search-time parameters and achieved recall@10 of every
//! index on every dataset.

use crate::context::{BenchContext, K};
use crate::report::Table;
use sann_core::Result;
use sann_vdb::SetupKind;

/// Reproduces Table II; returns the rendered table.
///
/// # Errors
///
/// Propagates build/search errors.
pub fn run(ctx: &mut BenchContext) -> Result<String> {
    let mut table = Table::new([
        "dataset",
        "index",
        "nlist",
        "nprobe",
        "M",
        "efC",
        "efSearch",
        "search_list",
        "recall@10",
    ]);
    // The three Table II index families, represented by the setups that tune
    // them on Milvus (plus LanceDB's separately tuned variants).
    let kinds = [
        SetupKind::MilvusIvf,
        SetupKind::MilvusHnsw,
        SetupKind::LancedbHnsw,
        SetupKind::MilvusDiskann,
        SetupKind::LancedbIvf,
    ];
    for spec in ctx.dataset_specs() {
        for kind in kinds {
            let prepared = ctx.setup(&spec, kind)?;
            let p = &prepared.setup.params;
            let (nlist, nprobe, m, efc, efs, sl) = match kind {
                SetupKind::MilvusIvf | SetupKind::LancedbIvf => (
                    p.nlist.to_string(),
                    p.nprobe.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ),
                SetupKind::MilvusDiskann => (
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    p.search_list.to_string(),
                ),
                _ => (
                    String::new(),
                    String::new(),
                    p.m.to_string(),
                    p.ef_construction.to_string(),
                    p.ef_search.to_string(),
                    String::new(),
                ),
            };
            table.row([
                spec.name.clone(),
                kind.name().to_owned(),
                nlist,
                nprobe,
                m,
                efc,
                efs,
                sl,
                format!("{:.3}", prepared.recall),
            ]);
        }
    }
    ctx.write_csv("table2.csv", &table.to_csv())?;
    let mut out = String::from("Table II: index parameters and achieved recall@10\n");
    out.push_str(&format!(
        "(k = {K}, target recall >= 0.9; LanceDB-IVF's nprobe ladder is capped as in the paper)\n"
    ));
    out.push_str(&table.to_text());
    if ctx.fault_profile.active() {
        out.push_str(&degraded_recall_section(ctx, &kinds)?);
    }
    Ok(out)
}

/// Degraded-recall addendum for `--fault-profile`: one engine run per setup
/// measures the fraction of planned reads actually served, and the honest
/// recall bound is `recall × served_fraction` (abandoned reads can only
/// remove true neighbors from the candidate set).
fn degraded_recall_section(ctx: &mut BenchContext, kinds: &[SetupKind]) -> Result<String> {
    const FAULT_CONCURRENCY: usize = 8;
    let profile = ctx.fault_profile;
    let mut table = Table::new(["dataset", "index", "recall@10", "served", "degraded@10"]);
    for spec in ctx.dataset_specs() {
        for &kind in kinds {
            let healthy = ctx.setup(&spec, kind)?.recall;
            let Some(m) = ctx.run_tuned(&spec, kind, FAULT_CONCURRENCY)? else {
                continue;
            };
            let f = &m.fault;
            table.row([
                spec.name.clone(),
                kind.name().to_owned(),
                format!("{healthy:.3}"),
                format!("{:.3}", f.served_fraction()),
                format!("{:.3}", f.degraded_recall(healthy)),
            ]);
        }
    }
    ctx.write_csv("table2_faults.csv", &table.to_csv())?;
    Ok(format!(
        "Degraded recall under fault profile `{}` (concurrency {FAULT_CONCURRENCY}):\n\
         (degraded@10 = recall@10 x served I/O fraction - a bound, not a re-measurement)\n{}",
        profile.name,
        table.to_text()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_table_has_all_rows() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.results_dir = std::env::temp_dir().join("sann-table2-test");
        let text = run(&mut ctx).unwrap();
        assert!(text.contains("milvus-ivf"));
        assert!(text.contains("milvus-diskann"));
        assert!(text.contains("lancedb-ivf"));
        assert!(
            !text.contains("Degraded recall"),
            "no fault addendum without a fault profile"
        );
        std::fs::remove_dir_all(&ctx.results_dir).ok();
    }

    #[test]
    fn fault_profile_adds_degraded_recall_addendum() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.2e6;
        ctx.fault_profile = sann_engine::FaultProfile::flaky();
        ctx.results_dir = std::env::temp_dir().join("sann-table2-fault-test");
        let text = run(&mut ctx).unwrap();
        assert!(text.contains("Degraded recall under fault profile `flaky`"));
        assert!(text.contains("degraded@10"));
        assert!(ctx.results_dir.join("table2_faults.csv").exists());
        std::fs::remove_dir_all(&ctx.results_dir).ok();
    }
}
