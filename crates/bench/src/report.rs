//! Text tables and CSV assembly for experiment output.

use sann_obs::{Phase, PhaseBreakdown};

/// A simple aligned text table that doubles as a CSV builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned text table (empty string for a zero-column
    /// table, which has nothing to align).
    pub fn to_text(&self) -> String {
        if self.header.is_empty() {
            return String::new();
        }
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Formats a float with engineering-friendly precision.
pub fn num(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// The per-phase latency-breakdown table: one row per [`Phase`], showing
/// where the mean query's time goes. In-latency fractions sum to 1 (the
/// executor asserts the underlying nanoseconds partition each query);
/// queue wait is excluded from latency and marked as such.
pub fn latency_breakdown(breakdown: &PhaseBreakdown) -> Table {
    let mut table = Table::new(["phase", "mean_us_per_query", "fraction_of_latency"]);
    for &phase in &Phase::ALL {
        let fraction = if phase.in_latency() {
            format!("{:.4}", breakdown.fraction(phase))
        } else {
            format!("{:.4} (excl.)", breakdown.fraction(phase))
        };
        table.row([
            phase.name().to_owned(),
            format!("{:.3}", breakdown.mean_us(phase)),
            fraction,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_table_covers_every_phase() {
        let mut b = PhaseBreakdown::new();
        let mut ns = [0u64; Phase::COUNT];
        ns[Phase::Compute.index()] = 750;
        ns[Phase::FlashService.index()] = 250;
        ns[Phase::QueueWait.index()] = 100;
        b.add_query(&ns);
        let t = latency_breakdown(&b);
        assert_eq!(t.len(), Phase::ALL.len());
        let text = t.to_text();
        assert!(text.contains("compute"));
        assert!(text.contains("0.7500"));
        assert!(text.contains("(excl.)"), "queue wait marked off-latency");
    }

    #[test]
    fn text_alignment_and_separator() {
        let mut t = Table::new(["name", "qps"]);
        t.row(["milvus-hnsw", "12345"]);
        t.row(["x", "1"]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].ends_with("12345"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn rows_pad_to_header_width() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.to_csv().lines().nth(1).unwrap(), "1,,");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn zero_column_table_renders_empty() {
        let empty: [&str; 0] = [];
        let mut t = Table::new(empty);
        assert_eq!(t.to_text(), "");
        assert_eq!(t.to_string(), "");
        // A zero-column row is representable too (it pads to zero cells).
        t.row(empty);
        assert_eq!(t.to_text(), "");
        assert_eq!(t.to_csv(), "\n\n");
    }

    #[test]
    fn num_precision_ladders() {
        assert_eq!(num(12345.6), "12346");
        assert_eq!(num(12.34), "12.3");
        assert_eq!(num(0.1234), "0.123");
        assert_eq!(num(0.0), "0");
    }
}
