//! `vdbbench iostat` — the I/O-characterization and cost report.
//!
//! Runs one tuned setup under a healthy device and under the `aging`
//! fault profile, and reports what the paper's bpftrace + price-sheet
//! methodology would: the per-provenance I/O breakdown (what each read
//! fetched and where it was served), device telemetry (queue depth,
//! utilization, read amplification, hot-page skew), per-second timelines,
//! and the $/query ledger on a concrete device cost model. Everything
//! derives from always-on simulation state, so the report — and the
//! `iostat_*.csv` files written under `--results` — is byte-identical
//! across identical invocations at any `--trace-level`.

use crate::context::BenchContext;
use crate::report::{num, Table};
use sann_core::{cast, Result};
use sann_engine::{DeviceCostModel, FaultProfile, RunMetrics};
use sann_obs::IoProvenance;
use sann_vdb::SetupKind;

/// Default setup to characterize: the storage-resident headline index.
const DEFAULT_SETUP: SetupKind = SetupKind::MilvusDiskann;

/// Default closed-loop clients.
const DEFAULT_CLIENTS: usize = 8;

/// Dollar figures span ~1e-9..1 USD; a fixed scientific mantissa keeps
/// them readable and byte-stable.
fn usd(x: f64) -> String {
    format!("{x:.3e}")
}

/// Runs the subcommand. `rest` holds flags `from_args` did not consume:
/// `--setup NAME`, `--clients N`, and `--device {990-pro|sata}`.
///
/// # Errors
///
/// Returns [`sann_core::Error::InvalidParameter`] on malformed flags and
/// propagates build/search/filesystem errors.
pub fn run(ctx: &mut BenchContext, rest: &[String]) -> Result<String> {
    let (kind, clients, device) = parse_flags(rest)?;
    let spec = ctx
        .dataset_specs()
        .into_iter()
        .next()
        .ok_or_else(|| sann_core::Error::invalid_parameter("args", "no dataset matches"))?;
    let plans = ctx.plans(&spec, kind)?;

    // One run per device-health profile; the tuned plans are shared, so
    // the delta between rows is purely the device's behaviour.
    let profiles = [FaultProfile::none(), FaultProfile::aging()];
    let saved = ctx.fault_profile;
    let mut runs: Vec<(&'static str, RunMetrics)> = Vec::new();
    for profile in profiles {
        ctx.fault_profile = profile;
        let metrics = ctx.run(kind, &plans, clients).ok_or_else(|| {
            sann_core::Error::invalid_parameter(
                "args",
                format!("{} does not support {clients} clients", kind.name()),
            )
        })?;
        runs.push((profile.name, metrics));
    }
    ctx.fault_profile = saved;

    let mut prov = Table::new([
        "profile",
        "provenance",
        "device_reads",
        "device_mib",
        "cache_hit_mib",
        "cache_hits",
        "byte_share",
    ]);
    for (label, m) in &runs {
        let total_bytes = m.io_stats.read_bytes.max(1);
        for p in IoProvenance::ALL {
            let i = p.index();
            prov.row([
                (*label).to_owned(),
                p.name().to_owned(),
                m.io_stats.prov_reads[i].to_string(),
                format!("{:.3}", mib(m.io_stats.prov_read_bytes[i])),
                format!("{:.3}", mib(m.prov_cache_hit_bytes[i])),
                m.prov_cache_hits[i].to_string(),
                format!(
                    "{:.4}",
                    cast::f64_from_u64(m.io_stats.prov_read_bytes[i])
                        / cast::f64_from_u64(total_bytes)
                ),
            ]);
        }
    }

    let mut chars = Table::new([
        "profile",
        "qps",
        "read_amp",
        "hot_page_skew",
        "mean_queue_depth",
        "device_util",
        "usd_per_query",
        "usd_per_1m_queries",
    ]);
    let mut cost = Table::new([
        "profile",
        "capacity_usd",
        "wear_usd",
        "energy_usd",
        "cpu_usd",
        "total_usd",
        "usd_per_query",
        "usd_per_1m_queries",
    ]);
    for (label, m) in &runs {
        let ledger = kind.profile().ledger(m, ctx.cores, device);
        chars.row([
            (*label).to_owned(),
            num(m.qps),
            format!("{:.4}", m.read_amplification()),
            format!("{:.4}", m.hot_page_skew),
            format!("{:.3}", m.device.mean_queue_depth),
            format!("{:.4}", m.device.utilization),
            usd(ledger.usd_per_query()),
            usd(ledger.usd_per_million()),
        ]);
        cost.row([
            (*label).to_owned(),
            usd(ledger.capacity_usd),
            usd(ledger.wear_usd),
            usd(ledger.energy_usd),
            usd(ledger.cpu_usd),
            usd(ledger.total_usd()),
            usd(ledger.usd_per_query()),
            usd(ledger.usd_per_million()),
        ]);
    }

    let mut timeline = Table::new(["profile", "t_s", "queue_depth", "device_util", "read_mib_s"]);
    for (label, m) in &runs {
        for (t, ((qd, util), bw)) in m
            .device
            .queue_depth_timeline
            .iter()
            .zip(&m.device.utilization_timeline)
            .zip(&m.bandwidth_timeline_mib)
            .enumerate()
        {
            timeline.row([
                (*label).to_owned(),
                t.to_string(),
                format!("{qd:.3}"),
                format!("{util:.4}"),
                format!("{bw:.3}"),
            ]);
        }
    }

    ctx.write_csv("iostat_provenance.csv", &prov.to_csv())?;
    ctx.write_csv("iostat_characterization.csv", &chars.to_csv())?;
    ctx.write_csv("iostat_cost.csv", &cost.to_csv())?;
    ctx.write_csv("iostat_timeline.csv", &timeline.to_csv())?;

    let mut out = format!(
        "I/O characterization: {} on {} at {clients} clients, device model {}\n\n",
        kind.name(),
        spec.name,
        device.name
    );
    out.push_str("Read provenance (what each device read fetched):\n");
    out.push_str(&prov.to_text());
    out.push_str("\nDevice characterization and unit cost:\n");
    out.push_str(&chars.to_text());
    out.push_str("\nCost ledger (per measurement window):\n");
    out.push_str(&cost.to_text());
    out.push_str("\nPer-second telemetry timeline:\n");
    out.push_str(&timeline.to_text());
    Ok(out)
}

fn mib(bytes: u64) -> f64 {
    cast::f64_from_u64(bytes) / f64::from(1u32 << 20)
}

fn parse_flags(rest: &[String]) -> Result<(SetupKind, usize, DeviceCostModel)> {
    let mut kind = DEFAULT_SETUP;
    let mut clients = DEFAULT_CLIENTS;
    let mut device = DeviceCostModel::samsung_990_pro();
    let mut it = rest.iter().skip_while(|a| a.as_str() != "iostat").skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--setup" => {
                let name = it.next().ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", "--setup needs a value")
                })?;
                kind = SetupKind::parse(name).ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", format!("unknown setup `{name}`"))
                })?;
            }
            "--clients" => {
                let value = it.next().ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", "--clients needs a value")
                })?;
                clients = value.parse().map_err(|_| {
                    sann_core::Error::invalid_parameter(
                        "args",
                        format!("bad value for --clients: `{value}`"),
                    )
                })?;
            }
            "--device" => {
                let value = it.next().ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", "--device needs a value")
                })?;
                device = DeviceCostModel::parse(value).ok_or_else(|| {
                    sann_core::Error::invalid_parameter(
                        "args",
                        format!("bad value for --device: `{value}` (990-pro|sata)"),
                    )
                })?;
            }
            other => {
                return Err(sann_core::Error::invalid_parameter(
                    "args",
                    format!("unknown iostat flag `{other}`"),
                ));
            }
        }
    }
    Ok((kind, clients, device))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_with_defaults() {
        let (kind, clients, device) = parse_flags(&strings(&["iostat"])).unwrap();
        assert_eq!(kind, DEFAULT_SETUP);
        assert_eq!(clients, DEFAULT_CLIENTS);
        assert_eq!(device.name, "990-pro");
        let (kind, clients, device) = parse_flags(&strings(&[
            "iostat",
            "--setup",
            "milvus-ivf",
            "--clients",
            "4",
            "--device",
            "sata",
        ]))
        .unwrap();
        assert_eq!(kind, SetupKind::MilvusIvf);
        assert_eq!(clients, 4);
        assert_eq!(device.name, "sata");
        assert!(parse_flags(&strings(&["iostat", "--device", "floppy"])).is_err());
        assert!(parse_flags(&strings(&["iostat", "--bogus"])).is_err());
    }

    #[test]
    fn report_covers_both_profiles_and_restores_context() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.2e6;
        let dir = std::env::temp_dir().join(format!("sann-iostat-{}", std::process::id()));
        ctx.results_dir = dir.clone();
        let before = ctx.fault_profile;
        let text = run(&mut ctx, &strings(&["iostat", "--clients", "4"])).unwrap();
        assert_eq!(ctx.fault_profile, before, "iostat must restore the profile");
        assert!(text.contains("graph-adjacency"), "diskann reads are tagged");
        assert!(text.contains("none") && text.contains("aging"));
        assert!(text.contains("usd_per_query"));
        for csv in [
            "iostat_provenance.csv",
            "iostat_characterization.csv",
            "iostat_cost.csv",
            "iostat_timeline.csv",
        ] {
            let body = std::fs::read_to_string(dir.join(csv)).unwrap();
            assert!(body.lines().count() > 1, "{csv} must have data rows");
        }
        // Double-run byte-stability of the full report and every export.
        let mut again = BenchContext::new(0.001);
        again.only_dataset = Some("cohere-s".into());
        again.duration_us = 0.2e6;
        again.results_dir = dir.clone();
        let text2 = run(&mut again, &strings(&["iostat", "--clients", "4"])).unwrap();
        assert_eq!(text, text2, "iostat must be byte-identical across runs");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aging_profile_degrades_throughput_and_unit_cost() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.2e6;
        let spec = ctx.dataset_specs().remove(0);
        let plans = ctx.plans(&spec, DEFAULT_SETUP).unwrap();
        let healthy = ctx.run(DEFAULT_SETUP, &plans, 4).unwrap();
        ctx.fault_profile = FaultProfile::aging();
        let aging = ctx.run(DEFAULT_SETUP, &plans, 4).unwrap();
        let device = DeviceCostModel::samsung_990_pro();
        let h = DEFAULT_SETUP.profile().ledger(&healthy, ctx.cores, device);
        let a = DEFAULT_SETUP.profile().ledger(&aging, ctx.cores, device);
        assert!(aging.completed < healthy.completed);
        assert!(a.usd_per_query() > h.usd_per_query());
    }
}
