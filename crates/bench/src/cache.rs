//! Persistent artifact cache: datasets, ground truth, built indexes, and
//! tuned knobs survive across `vdbbench` invocations.
//!
//! The expensive part of every run is *prep* — generating vectors, brute-force
//! ground truth, and graph/IVF builds — not the simulation itself. This module
//! stores each prep artifact under a cache directory (`.sann-cache/` by
//! default) as a checksummed file keyed by a content hash of everything that
//! went into building it, so a warm run replays the prep byte-for-byte from
//! disk:
//!
//! ```text
//! magic "SANC" | format version u32 | key u64 | payload | fnv1a64 checksum u64
//! ```
//!
//! The checksum covers every byte before it. Any mismatch — wrong magic, old
//! format version, foreign key, truncation, bit rot — is treated as a miss and
//! the artifact is rebuilt (and re-stored), never trusted. Keys fold in the
//! dataset's [`DatasetSpec::content_key`], the index family and build seed,
//! and the index persistence format version, so changing any input invalidates
//! exactly the artifacts it affects.
//!
//! Stores are atomic (write to a `.tmp` sibling, then rename) so a crash
//! mid-write leaves no half-written entry behind, and store failures are
//! non-fatal: the cache only ever accelerates, it never gates a run.

use sann_core::buf::{ByteReader, ByteWriter};
use sann_core::cast;
use sann_core::hash::fnv1a64;
use sann_datagen::DatasetSpec;
use std::path::{Path, PathBuf};

/// Entry magic, first four bytes of every cache file.
pub const MAGIC: [u8; 4] = *b"SANC";

/// Cache entry format version; bump on any layout change so stale entries
/// from older binaries read as misses instead of garbage.
pub const FORMAT_VERSION: u32 = 1;

/// Hit/miss/corruption counters, reported by `vdbbench` after prep.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries loaded successfully.
    pub hits: u64,
    /// Entries absent (never built, or evicted by the user).
    pub misses: u64,
    /// Entries present but rejected (truncated, checksum mismatch, stale
    /// format) — counted *in addition to* a miss.
    pub corrupt: u64,
}

/// A directory of checksummed artifact files.
pub struct ArtifactCache {
    dir: PathBuf,
    stats: CacheStats,
}

impl ArtifactCache {
    /// Opens (without touching the filesystem) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> ArtifactCache {
        ArtifactCache {
            dir: dir.into(),
            stats: CacheStats::default(),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters accumulated by [`load`](ArtifactCache::load) calls.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn entry_path(&self, label: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{label}-{key:016x}.bin"))
    }

    /// Loads the payload stored under (`label`, `key`), or `None` on a miss.
    ///
    /// Every failure mode — missing file, truncation, checksum mismatch,
    /// wrong magic/version/key — is a miss; corrupt entries also bump the
    /// [`CacheStats::corrupt`] counter.
    pub fn load(&mut self, label: &str, key: u64) -> Option<Vec<u8>> {
        let path = self.entry_path(label, key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.stats.misses += 1;
                return None;
            }
        };
        match decode_entry(&bytes, key) {
            Some(payload) => {
                self.stats.hits += 1;
                Some(payload)
            }
            None => {
                self.stats.misses += 1;
                self.stats.corrupt += 1;
                None
            }
        }
    }

    /// Stores `payload` under (`label`, `key`), atomically (tmp + rename).
    ///
    /// Failures are reported on stderr and otherwise ignored — a read-only or
    /// full disk degrades the cache to a no-op, it never fails the run.
    pub fn store(&mut self, label: &str, key: u64, payload: &[u8]) {
        let path = self.entry_path(label, key);
        if let Err(err) = self.try_store(&path, key, payload) {
            eprintln!("[cache] failed to store {}: {err}", path.display());
        }
    }

    fn try_store(&self, path: &Path, key: u64, payload: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let mut w = ByteWriter::new();
        w.put_slice(&MAGIC);
        w.put_u32_le(FORMAT_VERSION);
        w.put_u64_le(key);
        w.put_slice(payload);
        let mut bytes = w.into_bytes();
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)
    }
}

/// Validates one entry and peels the payload out of it.
fn decode_entry(bytes: &[u8], expected_key: u64) -> Option<Vec<u8>> {
    // Header (4 + 4 + 8) plus trailing checksum (8).
    if bytes.len() < 24 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let checksum = u64::from_le_bytes(tail.try_into().expect("split_at gave 8 bytes"));
    if fnv1a64(body) != checksum {
        return None;
    }
    let mut r = ByteReader::new(body, "cache-entry");
    if r.take(4).ok()? != MAGIC {
        return None;
    }
    if r.get_u32_le().ok()? != FORMAT_VERSION {
        return None;
    }
    if r.get_u64_le().ok()? != expected_key {
        return None;
    }
    Some(r.rest().to_vec())
}

/// Key of a prepared dataset artifact (base + queries + ground truth + tuning
/// truth): everything the generation depends on, via
/// [`DatasetSpec::content_key`], plus the truth parameters.
pub fn dataset_key(spec: &DatasetSpec, k: usize, tune_queries: usize) -> u64 {
    let mut w = ByteWriter::new();
    w.put_str("dataset");
    w.put_u64_le(spec.content_key());
    w.put_u64_le(cast::u64_from_usize(k));
    w.put_u64_le(cast::u64_from_usize(tune_queries));
    fnv1a64(&w.into_bytes())
}

/// Key of a built-index artifact: the dataset it was built on, the structural
/// family, the build seed, and the index persistence format version (so a
/// codec bump invalidates old frames instead of misreading them).
pub fn index_key(dataset_key: u64, family: &str, build_seed: u64) -> u64 {
    let mut w = ByteWriter::new();
    w.put_str("index");
    w.put_u64_le(dataset_key);
    w.put_str(family);
    w.put_u64_le(build_seed);
    w.put_u32_le(sann_index::persist::FORMAT_VERSION);
    fnv1a64(&w.into_bytes())
}

/// Key of a tuned-knob artifact: the index it was tuned on, the setup it was
/// tuned for, and the recall target (as exact bits).
pub fn tuned_key(index_key: u64, setup_name: &str, recall_target: f64) -> u64 {
    let mut w = ByteWriter::new();
    w.put_str("tuned");
    w.put_u64_le(index_key);
    w.put_str(setup_name);
    w.put_u64_le(recall_target.to_bits());
    fnv1a64(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sann-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_counts() {
        let dir = scratch("roundtrip");
        let mut cache = ArtifactCache::new(&dir);
        assert!(cache.load("x", 7).is_none());
        cache.store("x", 7, b"hello artifact");
        assert_eq!(cache.load("x", 7).as_deref(), Some(&b"hello artifact"[..]));
        // A second cache over the same directory sees the entry too.
        let mut warm = ArtifactCache::new(&dir);
        assert_eq!(warm.load("x", 7).as_deref(), Some(&b"hello artifact"[..]));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                corrupt: 0
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_truncation_and_corruption() {
        let dir = scratch("corrupt");
        let mut cache = ArtifactCache::new(&dir);
        cache.store("t", 1, b"some payload bytes");
        let path = cache.entry_path("t", 1);
        let good = std::fs::read(&path).unwrap();
        // Truncation anywhere — header, payload, checksum — is a miss.
        for cut in [0, 3, 10, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(cache.load("t", 1).is_none(), "cut={cut}");
        }
        // A single flipped payload bit fails the checksum.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(cache.load("t", 1).is_none());
        assert_eq!(cache.stats().corrupt, 6);
        // Restoring the original bytes makes it a hit again.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(
            cache.load("t", 1).as_deref(),
            Some(&b"some payload bytes"[..])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_is_corrupt() {
        let dir = scratch("key");
        let mut cache = ArtifactCache::new(&dir);
        cache.store("k", 42, b"payload");
        // Same file renamed under a different key: the embedded key disagrees.
        let from = cache.entry_path("k", 42);
        let to = cache.entry_path("k", 43);
        std::fs::rename(&from, &to).unwrap();
        assert!(cache.load("k", 43).is_none());
        assert_eq!(cache.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_cover_every_input() {
        let spec = sann_datagen::catalog::cohere_s().scaled(0.01);
        let d = dataset_key(&spec, 10, 200);
        assert_eq!(d, dataset_key(&spec, 10, 200), "stable");
        assert_ne!(d, dataset_key(&spec, 11, 200));
        assert_ne!(d, dataset_key(&spec, 10, 100));
        assert_ne!(d, dataset_key(&spec.scaled(0.5), 10, 200));
        let i = index_key(d, "hnsw", 0xBE7C4);
        assert_eq!(i, index_key(d, "hnsw", 0xBE7C4), "stable");
        assert_ne!(i, index_key(d, "ivf", 0xBE7C4));
        assert_ne!(i, index_key(d, "hnsw", 0xBE7C5));
        assert_ne!(i, index_key(d ^ 1, "hnsw", 0xBE7C4));
        let t = tuned_key(i, "milvus-hnsw", 0.9);
        assert_eq!(t, tuned_key(i, "milvus-hnsw", 0.9), "stable");
        assert_ne!(t, tuned_key(i, "qdrant-hnsw", 0.9));
        assert_ne!(t, tuned_key(i, "milvus-hnsw", 0.95));
        assert_ne!(t, tuned_key(i ^ 1, "milvus-hnsw", 0.9));
    }
}
