//! Extension experiment: graph-based vs. cluster-based storage indexes.
//!
//! The paper's §II-B lays out the storage-index dilemma — graph indexes
//! (DiskANN) issue many *dependent* 4 KiB reads; cluster indexes (SPANN)
//! issue a few *large* sequential reads but replicate border vectors up to
//! 8× on the device — and cites a companion study ([30]) that measures it.
//! This experiment quantifies the dilemma on equal footing: both indexes are
//! tuned to recall@10 ≥ 0.9 on the same dataset, then compared on I/O shape,
//! latency, throughput, and space.

use crate::context::{BenchContext, K, RECALL_TARGET};
use crate::report::{num, Table};
use sann_core::{Metric, Result};
use sann_index::{SearchParams, SpannConfig, SpannIndex, VectorIndex};
use sann_vdb::SetupKind;

/// Runs the DiskANN-vs-SPANN comparison on each dataset's small variant.
///
/// # Errors
///
/// Propagates build/search errors.
pub fn run(ctx: &mut BenchContext) -> Result<String> {
    let mut table = Table::new([
        "dataset",
        "index",
        "recall@10",
        "reads/query",
        "mean_req_KiB",
        "hops",
        "qps_c64",
        "p99_us_c64",
        "space_amp",
    ]);
    for spec in ctx
        .dataset_specs()
        .into_iter()
        .filter(|s| s.name.ends_with("-s"))
    {
        // DiskANN side: reuse the tuned setup.
        let diskann_plans = ctx.plans(&spec, SetupKind::MilvusDiskann)?;
        let (data, prepared) = ctx.dataset_and_setup(&spec, SetupKind::MilvusDiskann)?;
        let d_recall = prepared.recall;
        let d_metrics_input: Vec<(u64, u64, u64)> = data
            .queries
            .iter()
            .take(64)
            .map(|q| {
                let out = prepared
                    .index
                    .search(q, K, &prepared.setup.params.search_params())
                    .expect("diskann search");
                (
                    out.trace.io_count(),
                    out.trace.read_bytes(),
                    out.trace.hops(),
                )
            })
            .collect();
        let d_raw = (data.base.len() * data.base.row_bytes()) as u64;
        let d_space = prepared.index.storage_bytes() as f64 / d_raw as f64;

        // SPANN side: build + tune nprobe on the same data.
        eprintln!("[prep] building spann index on {}", spec.name);
        let spann = SpannIndex::build(&data.base, Metric::L2, SpannConfig::default())?;
        let mut nprobe = 4usize;
        let mut s_recall = 0.0;
        while nprobe <= 128 {
            let params = SearchParams::default().with_nprobe(nprobe);
            let ids = sann_index::search_ids(&spann, &data.tune_queries, K, &params)?;
            s_recall = data.tune_truth.mean_recall(&ids);
            if s_recall >= RECALL_TARGET {
                break;
            }
            nprobe *= 2;
        }
        let s_params = SearchParams::default().with_nprobe(nprobe);
        let s_metrics_input: Vec<(u64, u64, u64)> = data
            .queries
            .iter()
            .take(64)
            .map(|q| {
                let out = spann.search(q, K, &s_params).expect("spann search");
                (
                    out.trace.io_count(),
                    out.trace.read_bytes(),
                    out.trace.hops(),
                )
            })
            .collect();
        let s_space = spann.storage_bytes() as f64 / d_raw as f64;

        // Engine runs at 64 clients: DiskANN cached; SPANN compiled with the
        // same Milvus profile for an apples-to-apples run.
        let d_run = ctx
            .run(SetupKind::MilvusDiskann, &diskann_plans, 64)
            .expect("no client cap");
        let builder = ctx.plan_builder_for(&spec, SetupKind::MilvusDiskann);
        let (data, _) = ctx.dataset_and_setup(&spec, SetupKind::MilvusDiskann)?;
        let mut s_traces = Vec::with_capacity(data.queries.len());
        for q in data.queries.iter() {
            s_traces.push(spann.search(q, K, &s_params)?.trace);
        }
        let s_plans = builder.build_all(&s_traces);
        let s_run = ctx
            .run(SetupKind::MilvusDiskann, &s_plans, 64)
            .expect("no client cap");

        for (name, recall, inputs, run, space) in [
            ("diskann", d_recall, &d_metrics_input, &d_run, d_space),
            ("spann", s_recall, &s_metrics_input, &s_run, s_space),
        ] {
            let n = inputs.len().max(1) as f64;
            let ios: u64 = inputs.iter().map(|x| x.0).sum();
            let bytes: u64 = inputs.iter().map(|x| x.1).sum();
            let hops: u64 = inputs.iter().map(|x| x.2).sum();
            table.row([
                spec.name.clone(),
                name.to_owned(),
                format!("{recall:.3}"),
                num(ios as f64 / n),
                num(bytes as f64 / ios.max(1) as f64 / 1024.0),
                num(hops as f64 / n),
                num(run.qps),
                num(run.p99_latency_us),
                format!("{space:.2}x"),
            ]);
        }
    }
    ctx.write_csv("ext_spann.csv", &table.to_csv())?;
    let mut out = String::from(
        "Extension: graph-based (DiskANN) vs cluster-based (SPANN) storage \
         indexes at equal recall\n(SII-B's dilemma: request size vs space \
         amplification vs dependency chains)\n",
    );
    out.push_str(&table.to_text());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spann_vs_diskann_io_shapes_differ() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.3e6;
        ctx.results_dir = std::env::temp_dir().join("sann-extspann-test");
        let text = run(&mut ctx).unwrap();
        assert!(text.contains("spann"));
        assert!(text.contains("diskann"));
        std::fs::remove_dir_all(&ctx.results_dir).ok();
    }
}
