//! The IISWC'25 characterization harness.
//!
//! One module per experiment family; the `vdbbench` binary dispatches to
//! them. Every table and figure of the paper has a reproduction entry point
//! (see DESIGN.md §3 for the full index):
//!
//! | Paper artifact | Module | Subcommand |
//! |---|---|---|
//! | Table I (device envelope) | [`table1`] | `table1` |
//! | Table II (parameters & recall) | [`table2`] | `table2` |
//! | Fig. 2/3/4 (throughput/latency/CPU scalability) | [`fig2_4`] | `fig2`, `fig3`, `fig4` |
//! | Fig. 5/6 (I/O bandwidth & per-query I/O) | [`fig5_6`] | `fig5`, `fig6` |
//! | Fig. 7–11 (`search_list` sweeps) | [`fig7_11`] | `fig7` … `fig11` |
//! | Fig. 12–15 (`beam_width` sweeps) | [`fig12_15`] | `fig12` … `fig15` |
//! | §VIII ext.: hybrid read-write workloads | [`ext_rw`] | `ext-rw` |
//! | §VIII ext.: filtered search | [`ext_filter`] | `ext-filter` |
//! | §II-B ext.: DiskANN vs SPANN | [`ext_spann`] | `ext-spann` |
//! | — (timeline inspection, DESIGN.md §8) | [`tracecmd`] | `trace` |
//! | — (I/O characterization & $/query, DESIGN.md §12) | [`iostat`] | `iostat` |
//! | — (I/O design-space sweep, DESIGN.md §13) | [`explore`] | `explore` |
//!
//! Results print as aligned text tables and are also written as CSV under
//! `results/`.

pub mod cache;
pub mod context;
pub mod explore;
pub mod ext_filter;
pub mod ext_rw;
pub mod ext_spann;
pub mod fig12_15;
pub mod fig2_4;
pub mod fig5_6;
pub mod fig7_11;
pub mod iostat;
pub mod microbench;
pub mod report;
pub mod table1;
pub mod table2;
pub mod tracecmd;

pub use context::BenchContext;
pub use report::Table;
