//! Shared experiment state: datasets, ground truth, and built/tuned indexes,
//! cached so `vdbbench all` builds everything exactly once.
//!
//! Four layers of caching keep the harness affordable:
//!
//! * **datasets** — generated + ground-truthed once per name;
//! * **indexes** — shared across setups that build the same structure
//!   (Milvus/Qdrant/Weaviate/LanceDB all search one HNSW build, exactly as
//!   the paper uses the same build-time parameters across databases);
//! * **runs** — each (setup × concurrency) simulation at tuned parameters is
//!   executed once and reused by Figs. 2, 3, 4, and 5;
//! * **disk** — datasets, built indexes, and tuned knobs additionally persist
//!   across process invocations via [`crate::cache::ArtifactCache`]
//!   (`--cache-dir`, on by default for the CLI), so a warm `vdbbench` run
//!   skips prep entirely.
//!
//! Cold prep is parallel: [`BenchContext::prefetch`] fans independent
//! (dataset × index family) builds out over `--prep-threads` workers. The
//! builds themselves are single-threaded and deterministic, so the artifacts
//! are byte-identical at any thread count.

use crate::cache::{self, ArtifactCache, CacheStats};
use sann_core::buf::{ByteReader, ByteWriter};
use sann_core::{Error, Metric, Result};
use sann_datagen::{catalog, DatasetSpec, GroundTruth};
use sann_engine::{Executor, FaultProfile, QueryPlan, RunConfig, RunMetrics, TracedRun};
use sann_index::VectorIndex;
use sann_obs::TraceLevel;
use sann_vdb::{Setup, SetupKind};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Recall target the paper tunes every setup to (recall@10 ≥ 0.9).
pub const RECALL_TARGET: f64 = 0.9;

/// `k` for every search (the paper reports recall@10).
pub const K: usize = 10;

/// Queries used while tuning knobs (recall is re-measured on the full set
/// afterwards).
const TUNE_QUERIES: usize = 200;

/// A dataset with its ground truth, generated once.
pub struct PreparedDataset {
    /// The spec (already scaled).
    pub spec: DatasetSpec,
    /// Base vectors.
    pub base: sann_core::Dataset,
    /// Query vectors.
    pub queries: sann_core::Dataset,
    /// Exact top-K of each query.
    pub truth: GroundTruth,
    /// Prefix of `queries` used for knob tuning.
    pub tune_queries: sann_core::Dataset,
    /// Ground truth of the tuning prefix.
    pub tune_truth: GroundTruth,
}

/// A built index with its tuned setup and achieved recall.
pub struct PreparedSetup {
    /// Tuned setup (knob set by [`Setup::tune`]).
    pub setup: Setup,
    /// The built index (shared across setups with identical builds).
    pub index: Arc<dyn VectorIndex>,
    /// Recall@10 achieved at the tuned knob (on the full query set).
    pub recall: f64,
}

/// Harness configuration plus lazily-populated caches.
pub struct BenchContext {
    /// Dataset scale factor relative to the paper (default 0.002 — this
    /// harness targets a single-core CI box; raise it on real hardware).
    pub scale: f64,
    /// Simulated host cores (paper: 20).
    pub cores: usize,
    /// Simulated run duration per measurement, µs. The paper runs 30 s of
    /// wall-clock; the simulation is deterministic and reaches steady state
    /// immediately, so 5 s (the default) yields the same rates — pass
    /// `--duration-secs 30` for full fidelity.
    pub duration_us: f64,
    /// Restrict to one dataset by name (e.g. `cohere-s`), or run all four.
    pub only_dataset: Option<String>,
    /// Directory for CSV outputs.
    pub results_dir: std::path::PathBuf,
    /// Where to write exported traces (`--trace-out`); `None` disables
    /// export. The Chrome/Perfetto JSON goes to this path and the JSONL
    /// sibling next to it with a `.jsonl` extension.
    pub trace_out: Option<std::path::PathBuf>,
    /// Span-tracing verbosity (`--trace-level {off,run,query,io}`).
    pub trace_level: TraceLevel,
    /// Injected SSD fault profile (`--fault-profile
    /// {none,aging,gc-heavy,flaky}`). Each setup reacts with its own
    /// database's retry/hedge/deadline policy
    /// ([`sann_vdb::DbProfile::fault_config`]); `none` (the default) keeps
    /// every run byte-identical to a fault-free build.
    pub fault_profile: FaultProfile,
    /// Worker threads for cold-path prep builds ([`BenchContext::prefetch`]).
    /// Artifacts are byte-identical at any value; this only changes wall
    /// clock.
    pub prep_threads: usize,
    /// Persistent artifact cache; `None` (the [`BenchContext::new`] default)
    /// keeps everything in memory, which is what tests want. The CLI enables
    /// it at `.sann-cache` unless `--no-cache` is passed.
    disk: Option<ArtifactCache>,
    datasets: BTreeMap<String, PreparedDataset>,
    indexes: BTreeMap<(String, &'static str), Arc<dyn VectorIndex>>,
    setups: BTreeMap<(String, SetupKind), PreparedSetup>,
    plans: BTreeMap<(String, SetupKind), Arc<Vec<QueryPlan>>>,
    runs: BTreeMap<(String, SetupKind, usize), RunMetrics>,
}

impl BenchContext {
    /// Creates a context with paper-default settings at the given scale.
    pub fn new(scale: f64) -> BenchContext {
        BenchContext {
            scale,
            cores: 20,
            duration_us: 5e6,
            only_dataset: None,
            results_dir: std::path::PathBuf::from("results"),
            trace_out: None,
            trace_level: TraceLevel::Off,
            fault_profile: FaultProfile::none(),
            prep_threads: 1,
            disk: None,
            datasets: BTreeMap::new(),
            indexes: BTreeMap::new(),
            setups: BTreeMap::new(),
            plans: BTreeMap::new(),
            runs: BTreeMap::new(),
        }
    }

    /// Parses harness flags (`--scale X`, `--cores N`, `--duration-secs S`,
    /// `--dataset NAME`, `--results DIR`, `--cache-dir DIR`, `--no-cache`,
    /// `--prep-threads N`, `--trace-out PATH`,
    /// `--trace-level {off,run,query,io}`,
    /// `--fault-profile {none,aging,gc-heavy,flaky}`). Unrecognized flags
    /// are returned for the caller (subcommand) to interpret.
    ///
    /// The artifact cache defaults to `.sann-cache`; `--no-cache` disables it
    /// and `--cache-dir` moves it (last flag wins). `--prep-threads` defaults
    /// to the machine's parallelism, capped at 8.
    ///
    /// # Errors
    ///
    /// Returns [`sann_core::Error::InvalidParameter`] on malformed values.
    pub fn from_args(args: &[String]) -> Result<(BenchContext, Vec<String>)> {
        let mut ctx = BenchContext::new(0.002);
        ctx.prep_threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        let mut cache_dir = Some(std::path::PathBuf::from(".sann-cache"));
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut take = |name: &'static str| -> Result<String> {
                it.next().cloned().ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", format!("{name} needs a value"))
                })
            };
            match arg.as_str() {
                "--scale" => {
                    ctx.scale = parse_f64("--scale", &take("--scale")?)?;
                }
                "--cores" => {
                    ctx.cores = parse_f64("--cores", &take("--cores")?)? as usize;
                }
                "--duration-secs" => {
                    ctx.duration_us =
                        parse_f64("--duration-secs", &take("--duration-secs")?)? * 1e6;
                }
                "--dataset" => {
                    ctx.only_dataset = Some(take("--dataset")?);
                }
                "--results" => {
                    ctx.results_dir = std::path::PathBuf::from(take("--results")?);
                }
                "--cache-dir" => {
                    cache_dir = Some(std::path::PathBuf::from(take("--cache-dir")?));
                }
                "--no-cache" => {
                    cache_dir = None;
                }
                "--prep-threads" => {
                    let threads = parse_f64("--prep-threads", &take("--prep-threads")?)? as usize;
                    ctx.prep_threads = threads.max(1);
                }
                "--trace-out" => {
                    ctx.trace_out = Some(std::path::PathBuf::from(take("--trace-out")?));
                }
                "--trace-level" => {
                    let value = take("--trace-level")?;
                    ctx.trace_level = TraceLevel::parse(&value).ok_or_else(|| {
                        sann_core::Error::invalid_parameter(
                            "args",
                            format!("bad value for --trace-level: `{value}` (off|run|query|io)"),
                        )
                    })?;
                }
                "--fault-profile" => {
                    let value = take("--fault-profile")?;
                    ctx.fault_profile = FaultProfile::parse(&value).ok_or_else(|| {
                        sann_core::Error::invalid_parameter(
                            "args",
                            format!(
                                "bad value for --fault-profile: `{value}` \
                                 (none|aging|gc-heavy|flaky)"
                            ),
                        )
                    })?;
                }
                other => rest.push(other.to_owned()),
            }
        }
        ctx.disk = cache_dir.map(ArtifactCache::new);
        Ok((ctx, rest))
    }

    /// Enables the persistent artifact cache rooted at `dir`.
    pub fn enable_cache(&mut self, dir: impl Into<std::path::PathBuf>) {
        self.disk = Some(ArtifactCache::new(dir));
    }

    /// Disables the persistent artifact cache (in-memory caching only).
    pub fn disable_cache(&mut self) {
        self.disk = None;
    }

    /// Hit/miss counters of the artifact cache, or `None` when disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.disk.as_ref().map(ArtifactCache::stats)
    }

    /// The dataset specs this run covers (all four, or the `--dataset` one),
    /// scaled.
    pub fn dataset_specs(&self) -> Vec<DatasetSpec> {
        catalog::all()
            .into_iter()
            .filter(|s| {
                self.only_dataset
                    .as_deref()
                    .map(|o| o == s.name)
                    .unwrap_or(true)
            })
            .map(|s| s.scaled(self.scale))
            .collect()
    }

    /// Generates (or returns cached) base/queries/ground-truth for a spec.
    pub fn dataset(&mut self, spec: &DatasetSpec) -> &PreparedDataset {
        if !self.datasets.contains_key(&spec.name) {
            let prepared = match self.load_dataset(spec) {
                Some(d) => d,
                None => {
                    eprintln!(
                        "[prep] generating {} ({} x {}-d) + ground truth",
                        spec.name, spec.n_base, spec.dim
                    );
                    let d = generate_dataset(spec);
                    self.store_dataset(&d);
                    d
                }
            };
            self.datasets.insert(spec.name.clone(), prepared);
        }
        &self.datasets[&spec.name]
    }

    /// Prepares every (dataset × setup kind) this run will need, fanning cold
    /// builds out over [`prep_threads`](BenchContext::prep_threads) worker
    /// threads. Warm artifacts load from the disk cache instead. Tuning stays
    /// lazy (it is cheap relative to builds and per-kind, not per-family).
    ///
    /// Calling this is optional — [`BenchContext::setup`] prepares the same
    /// state serially on demand — but it is where the prep parallelism lives,
    /// so the CLI calls it before every multi-setup subcommand.
    ///
    /// # Errors
    ///
    /// Propagates the first build error.
    pub fn prefetch(&mut self, kinds: &[SetupKind]) -> Result<()> {
        let specs = self.dataset_specs();
        // Phase 1: datasets. Disk hits load serially (cheap); cold
        // generations fan out. Progress lines print before the fan-out so
        // their order is independent of scheduling.
        let mut cold_specs = Vec::new();
        for spec in &specs {
            if self.datasets.contains_key(&spec.name) {
                continue;
            }
            match self.load_dataset(spec) {
                Some(d) => {
                    self.datasets.insert(spec.name.clone(), d);
                }
                None => cold_specs.push(spec.clone()),
            }
        }
        for spec in &cold_specs {
            eprintln!(
                "[prep] generating {} ({} x {}-d) + ground truth",
                spec.name, spec.n_base, spec.dim
            );
        }
        for d in parallel_map(self.prep_threads, &cold_specs, generate_dataset) {
            self.store_dataset(&d);
            self.datasets.insert(d.spec.name.clone(), d);
        }
        // Phase 2: index builds, deduped per (dataset, family) exactly like
        // the lazy path, then fanned out. Each build is single-threaded
        // (deterministic), so artifacts are byte-identical at any
        // `prep_threads`.
        let mut jobs: Vec<(String, &'static str, Setup)> = Vec::new();
        for spec in &specs {
            for &kind in kinds {
                let family = index_family(kind);
                if self.indexes.contains_key(&(spec.name.clone(), family))
                    || jobs.iter().any(|(n, f, _)| n == &spec.name && *f == family)
                {
                    continue;
                }
                let setup = Setup::new(kind, self.datasets[&spec.name].base.len());
                if let Some(index) = self.load_index(spec, family, setup.seed) {
                    self.indexes.insert((spec.name.clone(), family), index);
                    continue;
                }
                eprintln!("[prep] building {family} index on {}", spec.name);
                jobs.push((spec.name.clone(), family, setup));
            }
        }
        let datasets = &self.datasets;
        let built = parallel_map(self.prep_threads, &jobs, |(name, _, setup)| {
            setup.build_index(&datasets[name].base, Metric::L2)
        });
        for ((name, family, setup), result) in jobs.iter().zip(built) {
            let index = result?;
            if let Some(bytes) = index.persist_encode() {
                let spec = &self.datasets[name].spec;
                let key = cache::index_key(
                    cache::dataset_key(spec, K, TUNE_QUERIES),
                    family,
                    setup.seed,
                );
                if let Some(disk) = &mut self.disk {
                    disk.store("index", key, &bytes);
                }
            }
            self.indexes
                .insert((name.clone(), family), Arc::from(index));
        }
        Ok(())
    }

    /// Builds and tunes (or returns cached) a setup on a dataset. Index
    /// structures are shared between setups whose build parameters coincide.
    ///
    /// # Errors
    ///
    /// Propagates build/tune errors.
    pub fn setup(&mut self, spec: &DatasetSpec, kind: SetupKind) -> Result<&PreparedSetup> {
        let key = (spec.name.clone(), kind);
        if !self.setups.contains_key(&key) {
            self.dataset(spec); // ensure dataset exists
            let mut setup = Setup::new(kind, self.datasets[&spec.name].base.len());
            let family = index_family(kind);
            let index_key = (spec.name.clone(), family);
            if !self.indexes.contains_key(&index_key) {
                let built = match self.load_index(spec, family, setup.seed) {
                    Some(index) => index,
                    None => {
                        eprintln!("[prep] building {} index on {}", family, spec.name);
                        let index =
                            setup.build_index(&self.datasets[&spec.name].base, Metric::L2)?;
                        if let Some(bytes) = index.persist_encode() {
                            let ikey = cache::index_key(
                                cache::dataset_key(spec, K, TUNE_QUERIES),
                                family,
                                setup.seed,
                            );
                            if let Some(disk) = &mut self.disk {
                                disk.store("index", ikey, &bytes);
                            }
                        }
                        Arc::from(index)
                    }
                };
                self.indexes.insert(index_key.clone(), built);
            }
            let index = Arc::clone(&self.indexes[&index_key]);
            let tkey = cache::tuned_key(
                cache::index_key(
                    cache::dataset_key(spec, K, TUNE_QUERIES),
                    family,
                    setup.seed,
                ),
                kind.name(),
                RECALL_TARGET,
            );
            let cached_tune = self
                .disk
                .as_mut()
                .and_then(|disk| disk.load("tuned", tkey))
                .and_then(|payload| decode_tuned(&payload).ok());
            let recall = match cached_tune {
                Some((knob, recall)) => {
                    setup.apply_knob(knob);
                    recall
                }
                None => {
                    let data = &self.datasets[&spec.name];
                    setup.tune(
                        index.as_ref(),
                        &data.tune_queries,
                        &data.tune_truth,
                        RECALL_TARGET,
                    )?;
                    let recall = setup.recall(index.as_ref(), &data.queries, &data.truth, K)?;
                    eprintln!(
                        "[prep] {} on {}: knob={} recall@10={:.3}",
                        kind.name(),
                        spec.name,
                        setup.knob(),
                        recall
                    );
                    if let Some(disk) = &mut self.disk {
                        disk.store("tuned", tkey, &encode_tuned(setup.knob(), recall));
                    }
                    recall
                }
            };
            self.setups.insert(
                key.clone(),
                PreparedSetup {
                    setup,
                    index,
                    recall,
                },
            );
        }
        Ok(&self.setups[&key])
    }

    /// Loads a prepared dataset from the disk cache, or `None` on a miss.
    fn load_dataset(&mut self, spec: &DatasetSpec) -> Option<PreparedDataset> {
        let disk = self.disk.as_mut()?;
        let payload = disk.load("dataset", cache::dataset_key(spec, K, TUNE_QUERIES))?;
        match decode_dataset(spec, &payload) {
            Ok(d) => Some(d),
            Err(err) => {
                eprintln!(
                    "[cache] ignoring stale dataset artifact for {}: {err}",
                    spec.name
                );
                None
            }
        }
    }

    /// Stores a prepared dataset in the disk cache (no-op when disabled).
    fn store_dataset(&mut self, d: &PreparedDataset) {
        if let Some(disk) = &mut self.disk {
            disk.store(
                "dataset",
                cache::dataset_key(&d.spec, K, TUNE_QUERIES),
                &encode_dataset(d),
            );
        }
    }

    /// Loads a built index from the disk cache, or `None` on a miss.
    fn load_index(
        &mut self,
        spec: &DatasetSpec,
        family: &str,
        build_seed: u64,
    ) -> Option<Arc<dyn VectorIndex>> {
        let key = cache::index_key(
            cache::dataset_key(spec, K, TUNE_QUERIES),
            family,
            build_seed,
        );
        let disk = self.disk.as_mut()?;
        let payload = disk.load("index", key)?;
        match sann_index::persist::decode(&payload) {
            Ok(index) => Some(Arc::from(index)),
            Err(err) => {
                eprintln!(
                    "[cache] ignoring stale {family} index artifact for {}: {err}",
                    spec.name
                );
                None
            }
        }
    }

    /// Returns the prepared dataset and setup together (both cached).
    ///
    /// # Errors
    ///
    /// Propagates build/tune errors.
    pub fn dataset_and_setup(
        &mut self,
        spec: &DatasetSpec,
        kind: SetupKind,
    ) -> Result<(&PreparedDataset, &PreparedSetup)> {
        self.setup(spec, kind)?;
        let data = &self.datasets[&spec.name];
        let prepared = &self.setups[&(spec.name.clone(), kind)];
        Ok((data, prepared))
    }

    /// The plan compiler for a setup on a dataset: delegates to
    /// [`sann_vdb::setup::calibrated_plan_builder`] with this context's
    /// scale.
    pub fn plan_builder_for(
        &self,
        spec: &DatasetSpec,
        kind: SetupKind,
    ) -> sann_engine::PlanBuilder {
        sann_vdb::setup::calibrated_plan_builder(kind, Setup::size_ratio(spec), self.scale)
    }

    /// Compiles (or returns cached) the plans of a prepared setup: traces at
    /// the setup's tuned parameters, compiled under the setup's DB profile.
    ///
    /// # Errors
    ///
    /// Propagates search errors.
    pub fn plans(&mut self, spec: &DatasetSpec, kind: SetupKind) -> Result<Arc<Vec<QueryPlan>>> {
        let key = (spec.name.clone(), kind);
        if !self.plans.contains_key(&key) {
            let builder = self.plan_builder_for(spec, kind);
            let (data, prepared) = self.dataset_and_setup(spec, kind)?;
            let traces = prepared
                .setup
                .traces(prepared.index.as_ref(), &data.queries, K)?;
            let plans = Arc::new(builder.build_all(&traces));
            self.plans.insert(key.clone(), plans);
        }
        Ok(Arc::clone(&self.plans[&key]))
    }

    /// Runs the setup's tuned plans at a concurrency level, cached across
    /// figures. Returns `None` when the profile does not support the
    /// concurrency (the paper's LanceDB-HNSW out-of-memory points).
    ///
    /// # Errors
    ///
    /// Propagates build/search errors.
    pub fn run_tuned(
        &mut self,
        spec: &DatasetSpec,
        kind: SetupKind,
        concurrency: usize,
    ) -> Result<Option<RunMetrics>> {
        if !kind.profile().supports_clients(concurrency) {
            return Ok(None);
        }
        let key = (spec.name.clone(), kind, concurrency);
        if !self.runs.contains_key(&key) {
            let plans = self.plans(spec, kind)?;
            let metrics = self
                .run(kind, &plans, concurrency)
                .expect("client support checked above");
            self.runs.insert(key.clone(), metrics);
        }
        Ok(Some(self.runs[&key].clone()))
    }

    /// Runs arbitrary plans at a concurrency level under the setup's profile
    /// (uncached — for parameter sweeps). Returns `None` when the profile
    /// does not support the concurrency.
    pub fn run(
        &self,
        kind: SetupKind,
        plans: &[QueryPlan],
        concurrency: usize,
    ) -> Option<RunMetrics> {
        let profile = kind.profile();
        if !profile.supports_clients(concurrency) {
            return None;
        }
        let config = RunConfig {
            cores: self.cores,
            concurrency,
            duration_us: self.duration_us,
            max_concurrent: profile.max_concurrent,
            cache_bytes: profile.cache_bytes,
            faults: profile.fault_config(self.fault_profile),
            ..RunConfig::default()
        };
        Some(Executor::new(config).run(plans))
    }

    /// Like [`BenchContext::run`] but keeps the full observability output:
    /// the span trace at `level` plus the counter/histogram registry.
    /// Returns `None` when the profile does not support the concurrency.
    pub fn run_traced(
        &self,
        kind: SetupKind,
        plans: &[QueryPlan],
        concurrency: usize,
        level: TraceLevel,
    ) -> Option<TracedRun> {
        let profile = kind.profile();
        if !profile.supports_clients(concurrency) {
            return None;
        }
        let config = RunConfig {
            cores: self.cores,
            concurrency,
            duration_us: self.duration_us,
            max_concurrent: profile.max_concurrent,
            cache_bytes: profile.cache_bytes,
            faults: profile.fault_config(self.fault_profile),
            ..RunConfig::default()
        };
        Some(Executor::new(config).run_traced(plans, level))
    }

    /// Writes a CSV file under the results directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, name: &str, content: &str) -> Result<()> {
        std::fs::create_dir_all(&self.results_dir)?;
        std::fs::write(self.results_dir.join(name), content)?;
        Ok(())
    }
}

/// The index-structure family a setup builds (setups in the same family
/// share one build).
fn index_family(kind: SetupKind) -> &'static str {
    match kind {
        SetupKind::MilvusIvf => "ivf",
        SetupKind::MilvusDiskann => "diskann",
        SetupKind::LancedbIvf => "ivf-pq",
        SetupKind::LancedbHnsw => "hnsw-sq",
        SetupKind::MilvusHnsw | SetupKind::QdrantHnsw | SetupKind::WeaviateHnsw => "hnsw",
    }
}

/// Generates a dataset bundle plus both ground truths. Pure function of the
/// spec, so prefetch workers can run it without touching the context.
fn generate_dataset(spec: &DatasetSpec) -> PreparedDataset {
    let bundle = spec.generate();
    let truth = GroundTruth::bruteforce(&bundle.base, &bundle.queries, spec.metric, K);
    let tune_queries = bundle.queries.truncated(TUNE_QUERIES);
    let tune_truth = GroundTruth::bruteforce(&bundle.base, &tune_queries, spec.metric, K);
    PreparedDataset {
        spec: spec.clone(),
        base: bundle.base,
        queries: bundle.queries,
        truth,
        tune_queries,
        tune_truth,
    }
}

/// Serializes a prepared dataset for the artifact cache. `tune_queries` is a
/// prefix of `queries`, so it is reconstructed on decode rather than stored.
fn encode_dataset(d: &PreparedDataset) -> Vec<u8> {
    let mut w = ByteWriter::new();
    d.base.encode_into(&mut w);
    d.queries.encode_into(&mut w);
    d.truth.encode_into(&mut w);
    d.tune_truth.encode_into(&mut w);
    w.into_bytes()
}

/// Inverse of [`encode_dataset`].
fn decode_dataset(spec: &DatasetSpec, payload: &[u8]) -> Result<PreparedDataset> {
    let mut r = ByteReader::new(payload, "dataset-artifact");
    let base = sann_core::Dataset::decode_from(&mut r)?;
    let queries = sann_core::Dataset::decode_from(&mut r)?;
    let truth = GroundTruth::decode_from(&mut r)?;
    let tune_truth = GroundTruth::decode_from(&mut r)?;
    if r.remaining() != 0 {
        return Err(Error::Corrupt("dataset-artifact: trailing bytes".into()));
    }
    let tune_queries = queries.truncated(TUNE_QUERIES);
    Ok(PreparedDataset {
        spec: spec.clone(),
        base,
        queries,
        truth,
        tune_queries,
        tune_truth,
    })
}

/// Serializes a tuned knob + measured recall for the artifact cache.
fn encode_tuned(knob: usize, recall: f64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64_le(knob as u64);
    w.put_f64_le(recall);
    w.into_bytes()
}

/// Inverse of [`encode_tuned`].
fn decode_tuned(payload: &[u8]) -> Result<(usize, f64)> {
    let mut r = ByteReader::new(payload, "tuned-artifact");
    let knob = r.get_u64_le()? as usize;
    let recall = r.get_f64_le()?;
    if r.remaining() != 0 {
        return Err(Error::Corrupt("tuned-artifact: trailing bytes".into()));
    }
    Ok((knob, recall))
}

/// Order-preserving parallel map: runs `f` over `items` on up to `threads`
/// scoped workers pulling from a shared queue. `threads <= 1` degenerates to
/// a serial map; outputs land at their input's position either way, so the
/// thread count never affects results, only wall clock.
fn parallel_map<T, R>(threads: usize, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("prep worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

fn parse_f64(name: &'static str, value: &str) -> Result<f64> {
    value
        .parse()
        .map_err(|_| sann_core::Error::invalid_parameter("args", format!("bad value for {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sann-ctx-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parses_flags_and_passes_rest() {
        let args: Vec<String> = [
            "--scale",
            "0.01",
            "--cores",
            "8",
            "fig2",
            "--dataset",
            "cohere-s",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (ctx, rest) = BenchContext::from_args(&args).unwrap();
        assert_eq!(ctx.scale, 0.01);
        assert_eq!(ctx.cores, 8);
        assert_eq!(ctx.only_dataset.as_deref(), Some("cohere-s"));
        assert_eq!(rest, vec!["fig2"]);
    }

    #[test]
    fn parses_cache_flags() {
        let (ctx, _) = BenchContext::from_args(&[]).unwrap();
        assert_eq!(
            ctx.disk.as_ref().map(|c| c.dir().to_path_buf()),
            Some(std::path::PathBuf::from(".sann-cache")),
            "cache defaults on for the CLI"
        );
        assert!(ctx.prep_threads >= 1);
        let args: Vec<String> = ["--cache-dir", "/tmp/alt", "--prep-threads", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (ctx, _) = BenchContext::from_args(&args).unwrap();
        assert_eq!(
            ctx.disk.as_ref().map(|c| c.dir().to_path_buf()),
            Some(std::path::PathBuf::from("/tmp/alt"))
        );
        assert_eq!(ctx.prep_threads, 3);
        let args: Vec<String> = vec!["--no-cache".into()];
        let (ctx, _) = BenchContext::from_args(&args).unwrap();
        assert!(ctx.disk.is_none());
        assert!(ctx.cache_stats().is_none());
    }

    #[test]
    fn parses_trace_flags() {
        let args: Vec<String> = ["--trace-out", "run.json", "--trace-level", "query"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (ctx, rest) = BenchContext::from_args(&args).unwrap();
        assert_eq!(
            ctx.trace_out.as_deref(),
            Some(std::path::Path::new("run.json"))
        );
        assert_eq!(ctx.trace_level, TraceLevel::Query);
        assert!(rest.is_empty());
        let bad: Vec<String> = ["--trace-level", "verbose"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(BenchContext::from_args(&bad).is_err());
    }

    #[test]
    fn parses_fault_profile_flag() {
        let args: Vec<String> = ["--fault-profile", "gc-heavy"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (ctx, rest) = BenchContext::from_args(&args).unwrap();
        assert_eq!(ctx.fault_profile, FaultProfile::gc_heavy());
        assert!(rest.is_empty());
        let bad: Vec<String> = ["--fault-profile", "catastrophic"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(BenchContext::from_args(&bad).is_err());
        let (ctx, _) = BenchContext::from_args(&[]).unwrap();
        assert_eq!(ctx.fault_profile, FaultProfile::none(), "defaults clean");
    }

    #[test]
    fn fault_profile_reaches_the_executor() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.2e6;
        ctx.fault_profile = FaultProfile::flaky();
        let spec = ctx.dataset_specs().remove(0);
        let m = ctx
            .run_tuned(&spec, SetupKind::MilvusDiskann, 4)
            .unwrap()
            .unwrap();
        let f = &m.fault;
        assert!(f.ios_planned > 0, "flaky run must account planned reads");
        assert_eq!(f.ios_planned, f.ios_completed + f.ios_abandoned);
        // Determinism: the same context settings replay byte-identically.
        let mut again = BenchContext::new(0.001);
        again.only_dataset = Some("cohere-s".into());
        again.duration_us = 0.2e6;
        again.fault_profile = FaultProfile::flaky();
        let n = again
            .run_tuned(&spec, SetupKind::MilvusDiskann, 4)
            .unwrap()
            .unwrap();
        assert_eq!(m.canonical_bytes(), n.canonical_bytes());
    }

    #[test]
    fn rejects_malformed_values() {
        let args: Vec<String> = ["--scale", "banana"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(BenchContext::from_args(&args).is_err());
        let args: Vec<String> = vec!["--scale".into()];
        assert!(BenchContext::from_args(&args).is_err());
    }

    #[test]
    fn dataset_filter_applies() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("openai-s".into());
        let specs = ctx.dataset_specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name, "openai-s");
        assert_eq!(specs[0].dim, 1536);
    }

    #[test]
    fn dataset_cache_returns_same_data() {
        let mut ctx = BenchContext::new(0.001);
        let spec = ctx.dataset_specs().remove(0);
        let a_len = ctx.dataset(&spec).base.len();
        let b_len = ctx.dataset(&spec).base.len();
        assert_eq!(a_len, b_len);
    }

    #[test]
    fn hnsw_setups_share_one_index_build() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        let spec = ctx.dataset_specs().remove(0);
        ctx.setup(&spec, SetupKind::MilvusHnsw).unwrap();
        ctx.setup(&spec, SetupKind::QdrantHnsw).unwrap();
        let a = Arc::as_ptr(&ctx.setups[&(spec.name.clone(), SetupKind::MilvusHnsw)].index);
        let b = Arc::as_ptr(&ctx.setups[&(spec.name.clone(), SetupKind::QdrantHnsw)].index);
        assert_eq!(a, b, "HNSW setups must share the same build");
    }

    #[test]
    fn run_cache_is_deterministic() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.2e6;
        let spec = ctx.dataset_specs().remove(0);
        let a = ctx
            .run_tuned(&spec, SetupKind::MilvusIvf, 4)
            .unwrap()
            .unwrap();
        let b = ctx
            .run_tuned(&spec, SetupKind::MilvusIvf, 4)
            .unwrap()
            .unwrap();
        assert_eq!(a.qps, b.qps);
    }

    #[test]
    fn warm_context_replays_cold_prep_byte_identically() {
        let dir = scratch("warm");
        let make = || {
            let mut ctx = BenchContext::new(0.001);
            ctx.only_dataset = Some("cohere-s".into());
            ctx.duration_us = 0.2e6;
            ctx.enable_cache(&dir);
            ctx
        };
        let mut cold = make();
        let spec = cold.dataset_specs().remove(0);
        let cold_run = cold
            .run_tuned(&spec, SetupKind::MilvusIvf, 4)
            .unwrap()
            .unwrap();
        let cold_recall = cold.setups[&(spec.name.clone(), SetupKind::MilvusIvf)].recall;
        let mut warm = make();
        let warm_run = warm
            .run_tuned(&spec, SetupKind::MilvusIvf, 4)
            .unwrap()
            .unwrap();
        assert_eq!(
            cold_run.canonical_bytes(),
            warm_run.canonical_bytes(),
            "warm run must replay the cold run exactly"
        );
        let warm_setup = &warm.setups[&(spec.name.clone(), SetupKind::MilvusIvf)];
        assert_eq!(warm_setup.recall, cold_recall);
        let stats = warm.cache_stats().unwrap();
        assert_eq!(
            stats.misses, 0,
            "warm run must hit every artifact: {stats:?}"
        );
        assert!(stats.hits >= 3, "dataset + index + tuned knob: {stats:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_cache_entry_is_detected_and_rebuilt() {
        let dir = scratch("trunc");
        let mut cold = BenchContext::new(0.001);
        cold.only_dataset = Some("cohere-s".into());
        cold.enable_cache(&dir);
        let spec = cold.dataset_specs().remove(0);
        let base_len = cold.dataset(&spec).base.len();
        // Truncate the stored artifact in place.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        }
        let mut warm = BenchContext::new(0.001);
        warm.only_dataset = Some("cohere-s".into());
        warm.enable_cache(&dir);
        assert_eq!(warm.dataset(&spec).base.len(), base_len, "rebuilt");
        let stats = warm.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.corrupt), (0, 1), "{stats:?}");
        // The rebuild re-stored a valid entry.
        let mut third = BenchContext::new(0.001);
        third.only_dataset = Some("cohere-s".into());
        third.enable_cache(&dir);
        third.dataset(&spec);
        assert_eq!(third.cache_stats().unwrap().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefetch_thread_count_does_not_change_artifacts() {
        let kinds = [SetupKind::MilvusIvf, SetupKind::MilvusHnsw];
        let mut dirs = Vec::new();
        for threads in [1usize, 4] {
            let dir = scratch(&format!("par{threads}"));
            let mut ctx = BenchContext::new(0.001);
            ctx.only_dataset = Some("cohere-s".into());
            ctx.prep_threads = threads;
            ctx.enable_cache(&dir);
            ctx.prefetch(&kinds).unwrap();
            dirs.push(dir);
        }
        let list = |dir: &std::path::Path| -> Vec<String> {
            let mut names: Vec<String> = std::fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .collect();
            names.sort();
            names
        };
        let (serial, parallel) = (&dirs[0], &dirs[1]);
        let names = list(serial);
        assert_eq!(names, list(parallel), "same artifact set");
        assert!(names.len() >= 3, "dataset + 2 index families: {names:?}");
        for name in &names {
            assert_eq!(
                std::fs::read(serial.join(name)).unwrap(),
                std::fs::read(parallel.join(name)).unwrap(),
                "{name} differs between prep_threads=1 and =4"
            );
        }
        for dir in &dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn prefetch_satisfies_setup_without_rebuilding() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.prep_threads = 2;
        let spec = ctx.dataset_specs().remove(0);
        ctx.prefetch(&[SetupKind::MilvusHnsw]).unwrap();
        ctx.setup(&spec, SetupKind::MilvusHnsw).unwrap();
        ctx.setup(&spec, SetupKind::QdrantHnsw).unwrap();
        let a = Arc::as_ptr(&ctx.setups[&(spec.name.clone(), SetupKind::MilvusHnsw)].index);
        let b = Arc::as_ptr(&ctx.setups[&(spec.name.clone(), SetupKind::QdrantHnsw)].index);
        assert_eq!(a, b, "setups reuse the prefetched build");
    }
}
