//! Shared experiment state: datasets, ground truth, and built/tuned indexes,
//! cached so `vdbbench all` builds everything exactly once.
//!
//! Three layers of caching keep the harness affordable:
//!
//! * **datasets** — generated + ground-truthed once per name;
//! * **indexes** — shared across setups that build the same structure
//!   (Milvus/Qdrant/Weaviate/LanceDB all search one HNSW build, exactly as
//!   the paper uses the same build-time parameters across databases);
//! * **runs** — each (setup × concurrency) simulation at tuned parameters is
//!   executed once and reused by Figs. 2, 3, 4, and 5.

use sann_core::{Metric, Result};
use sann_datagen::{catalog, DatasetSpec, GroundTruth};
use sann_engine::{Executor, QueryPlan, RunConfig, RunMetrics, TracedRun};
use sann_index::VectorIndex;
use sann_obs::TraceLevel;
use sann_vdb::{Setup, SetupKind};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Recall target the paper tunes every setup to (recall@10 ≥ 0.9).
pub const RECALL_TARGET: f64 = 0.9;

/// `k` for every search (the paper reports recall@10).
pub const K: usize = 10;

/// Queries used while tuning knobs (recall is re-measured on the full set
/// afterwards).
const TUNE_QUERIES: usize = 200;

/// A dataset with its ground truth, generated once.
pub struct PreparedDataset {
    /// The spec (already scaled).
    pub spec: DatasetSpec,
    /// Base vectors.
    pub base: sann_core::Dataset,
    /// Query vectors.
    pub queries: sann_core::Dataset,
    /// Exact top-K of each query.
    pub truth: GroundTruth,
    /// Prefix of `queries` used for knob tuning.
    pub tune_queries: sann_core::Dataset,
    /// Ground truth of the tuning prefix.
    pub tune_truth: GroundTruth,
}

/// A built index with its tuned setup and achieved recall.
pub struct PreparedSetup {
    /// Tuned setup (knob set by [`Setup::tune`]).
    pub setup: Setup,
    /// The built index (shared across setups with identical builds).
    pub index: Arc<dyn VectorIndex>,
    /// Recall@10 achieved at the tuned knob (on the full query set).
    pub recall: f64,
}

/// Harness configuration plus lazily-populated caches.
pub struct BenchContext {
    /// Dataset scale factor relative to the paper (default 0.002 — this
    /// harness targets a single-core CI box; raise it on real hardware).
    pub scale: f64,
    /// Simulated host cores (paper: 20).
    pub cores: usize,
    /// Simulated run duration per measurement, µs. The paper runs 30 s of
    /// wall-clock; the simulation is deterministic and reaches steady state
    /// immediately, so 5 s (the default) yields the same rates — pass
    /// `--duration-secs 30` for full fidelity.
    pub duration_us: f64,
    /// Restrict to one dataset by name (e.g. `cohere-s`), or run all four.
    pub only_dataset: Option<String>,
    /// Directory for CSV outputs.
    pub results_dir: std::path::PathBuf,
    /// Where to write exported traces (`--trace-out`); `None` disables
    /// export. The Chrome/Perfetto JSON goes to this path and the JSONL
    /// sibling next to it with a `.jsonl` extension.
    pub trace_out: Option<std::path::PathBuf>,
    /// Span-tracing verbosity (`--trace-level {off,run,query,io}`).
    pub trace_level: TraceLevel,
    datasets: BTreeMap<String, PreparedDataset>,
    indexes: BTreeMap<(String, &'static str), Arc<dyn VectorIndex>>,
    setups: BTreeMap<(String, SetupKind), PreparedSetup>,
    plans: BTreeMap<(String, SetupKind), Arc<Vec<QueryPlan>>>,
    runs: BTreeMap<(String, SetupKind, usize), RunMetrics>,
}

impl BenchContext {
    /// Creates a context with paper-default settings at the given scale.
    pub fn new(scale: f64) -> BenchContext {
        BenchContext {
            scale,
            cores: 20,
            duration_us: 5e6,
            only_dataset: None,
            results_dir: std::path::PathBuf::from("results"),
            trace_out: None,
            trace_level: TraceLevel::Off,
            datasets: BTreeMap::new(),
            indexes: BTreeMap::new(),
            setups: BTreeMap::new(),
            plans: BTreeMap::new(),
            runs: BTreeMap::new(),
        }
    }

    /// Parses harness flags (`--scale X`, `--cores N`, `--duration-secs S`,
    /// `--dataset NAME`, `--results DIR`, `--trace-out PATH`,
    /// `--trace-level {off,run,query,io}`). Unrecognized flags are returned
    /// for the caller (subcommand) to interpret.
    ///
    /// # Errors
    ///
    /// Returns [`sann_core::Error::InvalidParameter`] on malformed values.
    pub fn from_args(args: &[String]) -> Result<(BenchContext, Vec<String>)> {
        let mut ctx = BenchContext::new(0.002);
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut take = |name: &'static str| -> Result<String> {
                it.next().cloned().ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", format!("{name} needs a value"))
                })
            };
            match arg.as_str() {
                "--scale" => {
                    ctx.scale = parse_f64("--scale", &take("--scale")?)?;
                }
                "--cores" => {
                    ctx.cores = parse_f64("--cores", &take("--cores")?)? as usize;
                }
                "--duration-secs" => {
                    ctx.duration_us =
                        parse_f64("--duration-secs", &take("--duration-secs")?)? * 1e6;
                }
                "--dataset" => {
                    ctx.only_dataset = Some(take("--dataset")?);
                }
                "--results" => {
                    ctx.results_dir = std::path::PathBuf::from(take("--results")?);
                }
                "--trace-out" => {
                    ctx.trace_out = Some(std::path::PathBuf::from(take("--trace-out")?));
                }
                "--trace-level" => {
                    let value = take("--trace-level")?;
                    ctx.trace_level = TraceLevel::parse(&value).ok_or_else(|| {
                        sann_core::Error::invalid_parameter(
                            "args",
                            format!("bad value for --trace-level: `{value}` (off|run|query|io)"),
                        )
                    })?;
                }
                other => rest.push(other.to_owned()),
            }
        }
        Ok((ctx, rest))
    }

    /// The dataset specs this run covers (all four, or the `--dataset` one),
    /// scaled.
    pub fn dataset_specs(&self) -> Vec<DatasetSpec> {
        catalog::all()
            .into_iter()
            .filter(|s| {
                self.only_dataset
                    .as_deref()
                    .map(|o| o == s.name)
                    .unwrap_or(true)
            })
            .map(|s| s.scaled(self.scale))
            .collect()
    }

    /// Generates (or returns cached) base/queries/ground-truth for a spec.
    pub fn dataset(&mut self, spec: &DatasetSpec) -> &PreparedDataset {
        if !self.datasets.contains_key(&spec.name) {
            eprintln!(
                "[prep] generating {} ({} x {}-d) + ground truth",
                spec.name, spec.n_base, spec.dim
            );
            let bundle = spec.generate();
            let truth = GroundTruth::bruteforce(&bundle.base, &bundle.queries, spec.metric, K);
            let tune_queries = bundle.queries.truncated(TUNE_QUERIES);
            let tune_truth = GroundTruth::bruteforce(&bundle.base, &tune_queries, spec.metric, K);
            self.datasets.insert(
                spec.name.clone(),
                PreparedDataset {
                    spec: spec.clone(),
                    base: bundle.base,
                    queries: bundle.queries,
                    truth,
                    tune_queries,
                    tune_truth,
                },
            );
        }
        &self.datasets[&spec.name]
    }

    /// Builds and tunes (or returns cached) a setup on a dataset. Index
    /// structures are shared between setups whose build parameters coincide.
    ///
    /// # Errors
    ///
    /// Propagates build/tune errors.
    pub fn setup(&mut self, spec: &DatasetSpec, kind: SetupKind) -> Result<&PreparedSetup> {
        let key = (spec.name.clone(), kind);
        if !self.setups.contains_key(&key) {
            self.dataset(spec); // ensure dataset exists
            let mut setup = Setup::new(kind, self.datasets[&spec.name].base.len());
            let family = index_family(kind);
            let index_key = (spec.name.clone(), family);
            if !self.indexes.contains_key(&index_key) {
                eprintln!("[prep] building {} index on {}", family, spec.name);
                let data = &self.datasets[&spec.name];
                let built: Arc<dyn VectorIndex> =
                    Arc::from(setup.build_index(&data.base, Metric::L2)?);
                self.indexes.insert(index_key.clone(), built);
            }
            let index = Arc::clone(&self.indexes[&index_key]);
            let data = &self.datasets[&spec.name];
            setup.tune(
                index.as_ref(),
                &data.tune_queries,
                &data.tune_truth,
                RECALL_TARGET,
            )?;
            let recall = setup.recall(index.as_ref(), &data.queries, &data.truth, K)?;
            eprintln!(
                "[prep] {} on {}: knob={} recall@10={:.3}",
                kind.name(),
                spec.name,
                setup.knob(),
                recall
            );
            self.setups.insert(
                key.clone(),
                PreparedSetup {
                    setup,
                    index,
                    recall,
                },
            );
        }
        Ok(&self.setups[&key])
    }

    /// Returns the prepared dataset and setup together (both cached).
    ///
    /// # Errors
    ///
    /// Propagates build/tune errors.
    pub fn dataset_and_setup(
        &mut self,
        spec: &DatasetSpec,
        kind: SetupKind,
    ) -> Result<(&PreparedDataset, &PreparedSetup)> {
        self.setup(spec, kind)?;
        let data = &self.datasets[&spec.name];
        let prepared = &self.setups[&(spec.name.clone(), kind)];
        Ok((data, prepared))
    }

    /// The plan compiler for a setup on a dataset: delegates to
    /// [`sann_vdb::setup::calibrated_plan_builder`] with this context's
    /// scale.
    pub fn plan_builder_for(
        &self,
        spec: &DatasetSpec,
        kind: SetupKind,
    ) -> sann_engine::PlanBuilder {
        sann_vdb::setup::calibrated_plan_builder(kind, Setup::size_ratio(spec), self.scale)
    }

    /// Compiles (or returns cached) the plans of a prepared setup: traces at
    /// the setup's tuned parameters, compiled under the setup's DB profile.
    ///
    /// # Errors
    ///
    /// Propagates search errors.
    pub fn plans(&mut self, spec: &DatasetSpec, kind: SetupKind) -> Result<Arc<Vec<QueryPlan>>> {
        let key = (spec.name.clone(), kind);
        if !self.plans.contains_key(&key) {
            let builder = self.plan_builder_for(spec, kind);
            let (data, prepared) = self.dataset_and_setup(spec, kind)?;
            let traces = prepared
                .setup
                .traces(prepared.index.as_ref(), &data.queries, K)?;
            let plans = Arc::new(builder.build_all(&traces));
            self.plans.insert(key.clone(), plans);
        }
        Ok(Arc::clone(&self.plans[&key]))
    }

    /// Runs the setup's tuned plans at a concurrency level, cached across
    /// figures. Returns `None` when the profile does not support the
    /// concurrency (the paper's LanceDB-HNSW out-of-memory points).
    ///
    /// # Errors
    ///
    /// Propagates build/search errors.
    pub fn run_tuned(
        &mut self,
        spec: &DatasetSpec,
        kind: SetupKind,
        concurrency: usize,
    ) -> Result<Option<RunMetrics>> {
        if !kind.profile().supports_clients(concurrency) {
            return Ok(None);
        }
        let key = (spec.name.clone(), kind, concurrency);
        if !self.runs.contains_key(&key) {
            let plans = self.plans(spec, kind)?;
            let metrics = self
                .run(kind, &plans, concurrency)
                .expect("client support checked above");
            self.runs.insert(key.clone(), metrics);
        }
        Ok(Some(self.runs[&key].clone()))
    }

    /// Runs arbitrary plans at a concurrency level under the setup's profile
    /// (uncached — for parameter sweeps). Returns `None` when the profile
    /// does not support the concurrency.
    pub fn run(
        &self,
        kind: SetupKind,
        plans: &[QueryPlan],
        concurrency: usize,
    ) -> Option<RunMetrics> {
        let profile = kind.profile();
        if !profile.supports_clients(concurrency) {
            return None;
        }
        let config = RunConfig {
            cores: self.cores,
            concurrency,
            duration_us: self.duration_us,
            max_concurrent: profile.max_concurrent,
            cache_bytes: profile.cache_bytes,
            ..RunConfig::default()
        };
        Some(Executor::new(config).run(plans))
    }

    /// Like [`BenchContext::run`] but keeps the full observability output:
    /// the span trace at `level` plus the counter/histogram registry.
    /// Returns `None` when the profile does not support the concurrency.
    pub fn run_traced(
        &self,
        kind: SetupKind,
        plans: &[QueryPlan],
        concurrency: usize,
        level: TraceLevel,
    ) -> Option<TracedRun> {
        let profile = kind.profile();
        if !profile.supports_clients(concurrency) {
            return None;
        }
        let config = RunConfig {
            cores: self.cores,
            concurrency,
            duration_us: self.duration_us,
            max_concurrent: profile.max_concurrent,
            cache_bytes: profile.cache_bytes,
            ..RunConfig::default()
        };
        Some(Executor::new(config).run_traced(plans, level))
    }

    /// Writes a CSV file under the results directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, name: &str, content: &str) -> Result<()> {
        std::fs::create_dir_all(&self.results_dir)?;
        std::fs::write(self.results_dir.join(name), content)?;
        Ok(())
    }
}

/// The index-structure family a setup builds (setups in the same family
/// share one build).
fn index_family(kind: SetupKind) -> &'static str {
    match kind {
        SetupKind::MilvusIvf => "ivf",
        SetupKind::MilvusDiskann => "diskann",
        SetupKind::LancedbIvf => "ivf-pq",
        SetupKind::LancedbHnsw => "hnsw-sq",
        SetupKind::MilvusHnsw | SetupKind::QdrantHnsw | SetupKind::WeaviateHnsw => "hnsw",
    }
}

fn parse_f64(name: &'static str, value: &str) -> Result<f64> {
    value
        .parse()
        .map_err(|_| sann_core::Error::invalid_parameter("args", format!("bad value for {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_passes_rest() {
        let args: Vec<String> = [
            "--scale",
            "0.01",
            "--cores",
            "8",
            "fig2",
            "--dataset",
            "cohere-s",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (ctx, rest) = BenchContext::from_args(&args).unwrap();
        assert_eq!(ctx.scale, 0.01);
        assert_eq!(ctx.cores, 8);
        assert_eq!(ctx.only_dataset.as_deref(), Some("cohere-s"));
        assert_eq!(rest, vec!["fig2"]);
    }

    #[test]
    fn parses_trace_flags() {
        let args: Vec<String> = ["--trace-out", "run.json", "--trace-level", "query"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (ctx, rest) = BenchContext::from_args(&args).unwrap();
        assert_eq!(
            ctx.trace_out.as_deref(),
            Some(std::path::Path::new("run.json"))
        );
        assert_eq!(ctx.trace_level, TraceLevel::Query);
        assert!(rest.is_empty());
        let bad: Vec<String> = ["--trace-level", "verbose"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(BenchContext::from_args(&bad).is_err());
    }

    #[test]
    fn rejects_malformed_values() {
        let args: Vec<String> = ["--scale", "banana"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(BenchContext::from_args(&args).is_err());
        let args: Vec<String> = vec!["--scale".into()];
        assert!(BenchContext::from_args(&args).is_err());
    }

    #[test]
    fn dataset_filter_applies() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("openai-s".into());
        let specs = ctx.dataset_specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name, "openai-s");
        assert_eq!(specs[0].dim, 1536);
    }

    #[test]
    fn dataset_cache_returns_same_data() {
        let mut ctx = BenchContext::new(0.001);
        let spec = ctx.dataset_specs().remove(0);
        let a_len = ctx.dataset(&spec).base.len();
        let b_len = ctx.dataset(&spec).base.len();
        assert_eq!(a_len, b_len);
    }

    #[test]
    fn hnsw_setups_share_one_index_build() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        let spec = ctx.dataset_specs().remove(0);
        ctx.setup(&spec, SetupKind::MilvusHnsw).unwrap();
        ctx.setup(&spec, SetupKind::QdrantHnsw).unwrap();
        let a = Arc::as_ptr(&ctx.setups[&(spec.name.clone(), SetupKind::MilvusHnsw)].index);
        let b = Arc::as_ptr(&ctx.setups[&(spec.name.clone(), SetupKind::QdrantHnsw)].index);
        assert_eq!(a, b, "HNSW setups must share the same build");
    }

    #[test]
    fn run_cache_is_deterministic() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.2e6;
        let spec = ctx.dataset_specs().remove(0);
        let a = ctx
            .run_tuned(&spec, SetupKind::MilvusIvf, 4)
            .unwrap()
            .unwrap();
        let b = ctx
            .run_tuned(&spec, SetupKind::MilvusIvf, 4)
            .unwrap()
            .unwrap();
        assert_eq!(a.qps, b.qps);
    }
}
