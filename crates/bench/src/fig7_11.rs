//! Figures 7–11: the effect of DiskANN's `search_list` on throughput, P99
//! latency, recall, and I/O traffic (§VI-A).

use crate::context::{BenchContext, K};
use crate::report::{num, Table};
use sann_core::Result;
use sann_datagen::DatasetSpec;
use sann_engine::RunMetrics;
use sann_vdb::SetupKind;

/// The `search_list` ladder of the paper's Fig. 7–11 x-axis.
pub const SEARCH_LIST_LADDER: &[usize] = &[10, 20, 40, 60, 80, 100];

/// One measured point of the sweep.
pub struct SweepPoint {
    /// `search_list` at this point.
    pub search_list: usize,
    /// `beam_width` at this point.
    pub beam_width: usize,
    /// Recall@10 at this value.
    pub recall: f64,
    /// Metrics at concurrency 1.
    pub c1: RunMetrics,
    /// Metrics at concurrency 256.
    pub c256: RunMetrics,
}

/// Runs Milvus-DiskANN on `spec` for each `(search_list, beam_width)` in
/// `values`, at concurrency 1 and 256.
///
/// # Errors
///
/// Propagates build/search errors.
pub fn sweep_diskann(
    ctx: &mut BenchContext,
    spec: &DatasetSpec,
    values: &[(usize, usize)],
) -> Result<Vec<SweepPoint>> {
    let mut points = Vec::with_capacity(values.len());
    for &(search_list, beam_width) in values {
        let (recall, plans) = {
            let builder = ctx.plan_builder_for(spec, SetupKind::MilvusDiskann);
            let (data, prepared) = ctx.dataset_and_setup(spec, SetupKind::MilvusDiskann)?;
            // Override the knobs on a copy; reuse the cached index.
            let mut setup = prepared.setup;
            setup.params.search_list = search_list;
            setup.params.beam_width = beam_width;
            let index = prepared.index.as_ref();
            let recall = setup.recall(index, &data.queries, &data.truth, K)?;
            let traces = setup.traces(index, &data.queries, K)?;
            (recall, builder.build_all(&traces))
        };
        let c1 = ctx
            .run(SetupKind::MilvusDiskann, &plans, 1)
            .expect("no client cap");
        let c256 = ctx
            .run(SetupKind::MilvusDiskann, &plans, 256)
            .expect("no client cap");
        points.push(SweepPoint {
            search_list,
            beam_width,
            recall,
            c1,
            c256,
        });
    }
    Ok(points)
}

/// Renders Figs. 7–11 from one sweep over all datasets.
///
/// # Errors
///
/// Propagates build/search errors.
pub fn run(ctx: &mut BenchContext) -> Result<String> {
    let mut qps_t = Table::new(["dataset", "search_list", "qps_c1", "qps_c256"]);
    let mut lat_t = Table::new(["dataset", "search_list", "p99_us_c1"]);
    let mut rec_t = Table::new(["dataset", "search_list", "recall@10"]);
    let mut bw_t = Table::new(["dataset", "search_list", "MiB/s_c1", "MiB/s_c256"]);
    let mut pq_t = Table::new([
        "dataset",
        "search_list",
        "per_query_MiB/s_c1",
        "per_query_MiB/s_c256",
    ]);

    for spec in ctx.dataset_specs() {
        let values: Vec<(usize, usize)> = SEARCH_LIST_LADDER.iter().map(|&l| (l, 4)).collect();
        let points = sweep_diskann(ctx, &spec, &values)?;
        for p in &points {
            let l = p.search_list.to_string();
            qps_t.row([spec.name.clone(), l.clone(), num(p.c1.qps), num(p.c256.qps)]);
            lat_t.row([spec.name.clone(), l.clone(), num(p.c1.p99_latency_us)]);
            rec_t.row([spec.name.clone(), l.clone(), format!("{:.3}", p.recall)]);
            bw_t.row([
                spec.name.clone(),
                l.clone(),
                num(p.c1.mean_bandwidth_mib),
                num(p.c256.mean_bandwidth_mib),
            ]);
            pq_t.row([
                spec.name.clone(),
                l,
                format!("{:.3}", p.c1.per_query_bandwidth_mib()),
                format!("{:.3}", p.c256.per_query_bandwidth_mib()),
            ]);
        }
    }
    ctx.write_csv("fig7.csv", &qps_t.to_csv())?;
    ctx.write_csv("fig8.csv", &lat_t.to_csv())?;
    ctx.write_csv("fig9.csv", &rec_t.to_csv())?;
    ctx.write_csv("fig10.csv", &bw_t.to_csv())?;
    ctx.write_csv("fig11.csv", &pq_t.to_csv())?;

    let mut out = String::new();
    out.push_str("Figure 7: milvus-diskann throughput vs search_list\n");
    out.push_str(&qps_t.to_text());
    out.push_str("\nFigure 8: milvus-diskann P99 latency vs search_list (1 thread)\n");
    out.push_str(&lat_t.to_text());
    out.push_str("\nFigure 9: milvus-diskann recall@10 vs search_list\n");
    out.push_str(&rec_t.to_text());
    out.push_str("\nFigure 10: milvus-diskann total read bandwidth vs search_list\n");
    out.push_str(&bw_t.to_text());
    out.push_str("\nFigure 11: milvus-diskann per-query read bandwidth vs search_list\n");
    out.push_str(&pq_t.to_text());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_monotone_io_growth() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.5e6;
        ctx.results_dir = std::env::temp_dir().join("sann-fig7-test");
        let spec = ctx.dataset_specs().remove(0);
        let points = sweep_diskann(&mut ctx, &spec, &[(10, 4), (100, 4)]).unwrap();
        assert!(
            points[1].recall >= points[0].recall - 0.01,
            "recall must not drop"
        );
        assert!(
            points[1].c1.read_bytes_per_query > 1.5 * points[0].c1.read_bytes_per_query,
            "larger search_list must read much more"
        );
        assert!(points[1].c1.qps < points[0].c1.qps, "and cost throughput");
        std::fs::remove_dir_all(&ctx.results_dir).ok();
    }
}
