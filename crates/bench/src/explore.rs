//! `vdbbench explore` — the I/O design-space sweep (DESIGN.md §13).
//!
//! Runs one tuned setup's query set under every [`IoStrategy`] in
//! {naive, paged} × {no-prefetch, look-ahead} × {phased, pipelined} and
//! reports what each point of the design space buys: planned I/Os per
//! query, device reads per query, read amplification, recall@10, and
//! tail latency. The tuned search knobs are held fixed across the sweep
//! (every strategy returns identical top-k — the equivalence property
//! tests in `sann-index` enshrine this), so the deltas between rows are
//! purely the I/O policy. Everything derives from deterministic
//! simulation state, so the report — and the `explore_*.csv` files
//! written under `--results` — is byte-identical across identical
//! invocations.

use crate::context::{BenchContext, K};
use crate::report::{num, Table};
use sann_core::{cast, Result};
use sann_engine::{QueryPlan, RunMetrics};
use sann_index::{IoStrategy, TraceStep};
use sann_obs::Phase;
use sann_vdb::SetupKind;

/// Default setup to sweep: the storage-resident headline index (the only
/// setup whose search path consults the on-disk graph, hence the only one
/// the design space perturbs).
const DEFAULT_SETUP: SetupKind = SetupKind::MilvusDiskann;

/// Default closed-loop clients.
const DEFAULT_CLIENTS: usize = 8;

/// One point of the design space, fully measured.
pub struct SweepRow {
    /// The strategy this row measured.
    pub strat: IoStrategy,
    /// Recall@10 at the tuned knobs under this strategy.
    pub recall: f64,
    /// Mean trace-level read requests per query (before plan compilation).
    pub trace_ios: f64,
    /// Mean trace-level bytes read per query.
    pub trace_bytes: f64,
    /// Mean overlapped (in-flight-under-compute) steps per query.
    pub overlap_steps: f64,
    /// The engine run at the sweep's concurrency.
    pub metrics: RunMetrics,
}

impl SweepRow {
    /// Device reads per completed query (after the page cache).
    pub fn device_reads_per_query(&self) -> f64 {
        if self.metrics.completed == 0 {
            0.0
        } else {
            cast::f64_from_u64(self.metrics.io_stats.reads)
                / cast::f64_from_u64(self.metrics.completed)
        }
    }
}

/// Measures every strategy in [`IoStrategy::all`] on the first matching
/// dataset: traces and recall at the setup's tuned knobs, compiled and
/// executed under the setup's DB profile at `clients` closed-loop clients.
///
/// # Errors
///
/// Propagates build/tune/search errors, and rejects concurrencies the
/// setup's profile does not support.
pub fn sweep(ctx: &mut BenchContext, kind: SetupKind, clients: usize) -> Result<Vec<SweepRow>> {
    let spec = ctx
        .dataset_specs()
        .into_iter()
        .next()
        .ok_or_else(|| sann_core::Error::invalid_parameter("args", "no dataset matches"))?;
    let builder = ctx.plan_builder_for(&spec, kind);
    // Collect per-strategy traces/recall/plans under one borrow of the
    // prepared state, then run the (owned) plans afterwards.
    let mut staged: Vec<(IoStrategy, f64, f64, f64, f64, Vec<QueryPlan>)> = Vec::new();
    {
        let (data, prepared) = ctx.dataset_and_setup(&spec, kind)?;
        let n = data.queries.len().max(1) as f64;
        for strat in IoStrategy::all() {
            let params = prepared.setup.params.search_params().with_io(strat);
            let traces =
                prepared
                    .setup
                    .traces_with(prepared.index.as_ref(), &data.queries, K, &params)?;
            let recall = prepared.setup.recall_with(
                prepared.index.as_ref(),
                &data.queries,
                &data.truth,
                K,
                &params,
            )?;
            let ios = traces.iter().map(|t| t.io_count()).sum::<u64>();
            let bytes = traces.iter().map(|t| t.read_bytes()).sum::<u64>();
            let overlapped = traces
                .iter()
                .flat_map(|t| &t.steps)
                .filter(|s| matches!(s, TraceStep::Overlapped { .. }))
                .count();
            staged.push((
                strat,
                recall,
                cast::f64_from_u64(ios) / n,
                cast::f64_from_u64(bytes) / n,
                overlapped as f64 / n,
                builder.build_all(&traces),
            ));
        }
    }
    let mut rows = Vec::with_capacity(staged.len());
    for (strat, recall, trace_ios, trace_bytes, overlap_steps, plans) in staged {
        let metrics = ctx.run(kind, &plans, clients).ok_or_else(|| {
            sann_core::Error::invalid_parameter(
                "args",
                format!("{} does not support {clients} clients", kind.name()),
            )
        })?;
        rows.push(SweepRow {
            strat,
            recall,
            trace_ios,
            trace_bytes,
            overlap_steps,
            metrics,
        });
    }
    Ok(rows)
}

/// Runs the subcommand. `rest` holds flags `from_args` did not consume:
/// `--setup NAME` and `--clients N`.
///
/// # Errors
///
/// Returns [`sann_core::Error::InvalidParameter`] on malformed flags and
/// propagates build/search/filesystem errors.
pub fn run(ctx: &mut BenchContext, rest: &[String]) -> Result<String> {
    let (kind, clients) = parse_flags(rest)?;
    let spec_name = ctx
        .dataset_specs()
        .into_iter()
        .next()
        .map(|s| s.name)
        .unwrap_or_default();
    let rows = sweep(ctx, kind, clients)?;

    let mut table = Table::new([
        "strategy",
        "trace_ios_q",
        "overlap_steps_q",
        "recall",
        "ios_q",
        "device_reads_q",
        "read_amp",
        "qps",
        "mean_us",
        "p99_us",
    ]);
    for r in &rows {
        let m = &r.metrics;
        table.row([
            r.strat.label(),
            format!("{:.2}", r.trace_ios),
            format!("{:.2}", r.overlap_steps),
            format!("{:.4}", r.recall),
            format!("{:.2}", m.ios_per_query),
            format!("{:.2}", r.device_reads_per_query()),
            format!("{:.4}", m.read_amplification()),
            num(m.qps),
            num(m.mean_latency_us),
            num(m.p99_latency_us),
        ]);
    }

    // Where each strategy's time goes: the pipelined rows shift flash
    // service into compute (I/O hidden under distance evaluation) — the
    // attribution the executor asserts sums to latency exactly.
    let mut phases = Table::new([
        "strategy",
        "queue_wait_us",
        "compute_us",
        "beam_issue_us",
        "flash_service_us",
        "cache_hit_us",
        "rerank_us",
        "delay_us",
    ]);
    for r in &rows {
        let b = &r.metrics.phase_breakdown;
        let mut cells = vec![r.strat.label()];
        cells.extend(Phase::ALL.iter().map(|p| format!("{:.2}", b.mean_us(*p))));
        phases.row(cells);
    }

    ctx.write_csv("explore_sweep.csv", &table.to_csv())?;
    ctx.write_csv("explore_phases.csv", &phases.to_csv())?;

    let mut out = format!(
        "I/O design-space sweep: {} on {spec_name} at {clients} clients\n\
         (layout x prefetch x pipelining; tuned knobs held fixed)\n\n",
        kind.name(),
    );
    out.push_str(&table.to_text());
    out.push_str("\nPer-query phase attribution (mean µs):\n");
    out.push_str(&phases.to_text());
    Ok(out)
}

fn parse_flags(rest: &[String]) -> Result<(SetupKind, usize)> {
    let mut kind = DEFAULT_SETUP;
    let mut clients = DEFAULT_CLIENTS;
    let mut it = rest.iter().skip_while(|a| a.as_str() != "explore").skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--setup" => {
                let name = it.next().ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", "--setup needs a value")
                })?;
                kind = SetupKind::parse(name).ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", format!("unknown setup `{name}`"))
                })?;
            }
            "--clients" => {
                let value = it.next().ok_or_else(|| {
                    sann_core::Error::invalid_parameter("args", "--clients needs a value")
                })?;
                clients = value.parse().map_err(|_| {
                    sann_core::Error::invalid_parameter(
                        "args",
                        format!("bad value for --clients: `{value}`"),
                    )
                })?;
            }
            other => {
                return Err(sann_core::Error::invalid_parameter(
                    "args",
                    format!("unknown explore flag `{other}`"),
                ));
            }
        }
    }
    Ok((kind, clients))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_index::LayoutKind;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn test_ctx() -> BenchContext {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.2e6;
        ctx
    }

    #[test]
    fn flags_parse_with_defaults() {
        let (kind, clients) = parse_flags(&strings(&["explore"])).unwrap();
        assert_eq!(kind, DEFAULT_SETUP);
        assert_eq!(clients, DEFAULT_CLIENTS);
        let (kind, clients) = parse_flags(&strings(&[
            "explore",
            "--setup",
            "milvus-ivf",
            "--clients",
            "4",
        ]))
        .unwrap();
        assert_eq!(kind, SetupKind::MilvusIvf);
        assert_eq!(clients, 4);
        assert!(parse_flags(&strings(&["explore", "--bogus"])).is_err());
        assert!(parse_flags(&strings(&["explore", "--clients", "many"])).is_err());
    }

    #[test]
    fn sweep_covers_all_strategies_and_holds_recall() {
        let mut ctx = test_ctx();
        let rows = sweep(&mut ctx, DEFAULT_SETUP, 4).unwrap();
        assert_eq!(rows.len(), 8, "the full 2x2x2 design space");
        let baseline = &rows[0];
        assert_eq!(baseline.strat, IoStrategy::default(), "baseline first");
        for r in &rows {
            // Identical top-k => identical recall, bit for bit.
            assert_eq!(
                r.recall,
                baseline.recall,
                "{} changed what the search answers",
                r.strat.label()
            );
            assert!(r.metrics.completed > 0, "{} ran", r.strat.label());
        }
    }

    #[test]
    fn full_stack_beats_baseline_on_device_reads() {
        // The acceptance criterion: paged + look-ahead + pipelined reaches
        // baseline recall with measurably fewer device reads per query.
        let mut ctx = test_ctx();
        let rows = sweep(&mut ctx, DEFAULT_SETUP, 4).unwrap();
        let baseline = rows
            .iter()
            .find(|r| r.strat == IoStrategy::default())
            .unwrap();
        let full = rows
            .iter()
            .find(|r| {
                r.strat.layout == LayoutKind::Paged && r.strat.look_ahead && r.strat.pipelined
            })
            .unwrap();
        assert!(full.recall >= baseline.recall);
        assert!(
            full.device_reads_per_query() < baseline.device_reads_per_query(),
            "paged+la+pipe must read less: {} vs naive {}",
            full.device_reads_per_query(),
            baseline.device_reads_per_query()
        );
        assert!(
            full.trace_ios < baseline.trace_ios,
            "co-location must shrink the planned request stream"
        );
    }

    #[test]
    fn report_is_byte_stable_and_exports_csvs() {
        let mut ctx = test_ctx();
        let dir = std::env::temp_dir().join(format!("sann-explore-{}", std::process::id()));
        ctx.results_dir = dir.clone();
        let text = run(&mut ctx, &strings(&["explore", "--clients", "4"])).unwrap();
        for label in ["naive", "paged+la+pipe", "flash_service_us"] {
            assert!(text.contains(label), "report must mention {label}");
        }
        for csv in ["explore_sweep.csv", "explore_phases.csv"] {
            let body = std::fs::read_to_string(dir.join(csv)).unwrap();
            assert_eq!(body.lines().count(), 9, "{csv}: 8 strategies + header");
        }
        let mut again = test_ctx();
        again.results_dir = dir.clone();
        let text2 = run(&mut again, &strings(&["explore", "--clients", "4"])).unwrap();
        assert_eq!(text, text2, "explore must be byte-identical across runs");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipelined_rows_shift_time_from_flash_service_to_overlap() {
        let mut ctx = test_ctx();
        let rows = sweep(&mut ctx, DEFAULT_SETUP, 4).unwrap();
        let phased = rows
            .iter()
            .find(|r| r.strat == IoStrategy::default())
            .unwrap();
        let piped = rows
            .iter()
            .find(|r| {
                r.strat.layout == LayoutKind::Naive && !r.strat.look_ahead && r.strat.pipelined
            })
            .unwrap();
        assert!(piped.overlap_steps > 0.0, "pipelined traces must overlap");
        assert_eq!(phased.overlap_steps, 0.0, "phased traces never overlap");
        let fs = |r: &SweepRow| r.metrics.phase_breakdown.mean_us(Phase::FlashService);
        assert!(
            fs(piped) < fs(phased),
            "pipelining must hide flash time under compute: {} vs {}",
            fs(piped),
            fs(phased)
        );
    }
}
