//! Extension experiment (paper §VIII, future work): hybrid read-write
//! workloads.
//!
//! The paper characterizes pure vector-search traffic and explicitly leaves
//! "performance and I/O characteristics under such hybrid read-write
//! workloads" to future work, noting that NAND read-write interference
//! should degrade search. This experiment runs Milvus-DiskANN search clients
//! alongside insert clients whose work comes from **real FreshDiskANN-style
//! streaming inserts** ([`sann_index::FreshDiskAnnIndex`]): each insert's
//! placement-search reads and dirtied-node-record writes are replayed
//! against the shared device.

use crate::context::BenchContext;
use crate::report::{num, Table};
use sann_core::{Metric, Result};
use sann_engine::{QueryPlan, Segment};
use sann_index::{FreshConfig, FreshDiskAnnIndex, VamanaConfig};
use sann_vdb::SetupKind;

/// Number of search clients held constant while writers are added.
const SEARCH_CLIENTS: usize = 64;

/// Writer-client counts swept on the x-axis.
const WRITER_LADDER: &[usize] = &[0, 8, 32, 128];

/// Real insert operations replayed per dataset.
const INSERT_PLANS: usize = 100;

/// Collects real insert plans: build a mutable index on the base set, insert
/// a fresh stream, and compile each insert's reads + writes under the Milvus
/// profile.
fn insert_plans(ctx: &BenchContext, spec: &sann_datagen::DatasetSpec) -> Result<Vec<QueryPlan>> {
    let bundle = spec.generate();
    let mut index = FreshDiskAnnIndex::build(
        &bundle.base,
        Metric::L2,
        FreshConfig {
            graph: VamanaConfig {
                r: 32,
                l_build: 50,
                ..Default::default()
            },
            l_insert: 50,
            pq_m: 0,
            pq_ksub: 128,
        },
    )?;
    let stream = spec.model().generate_stream(INSERT_PLANS, 42);
    let builder = ctx.plan_builder_for(spec, SetupKind::MilvusDiskann);
    let mut plans = Vec::with_capacity(INSERT_PLANS);
    for row in stream.iter() {
        let (_, trace) = index.insert(row)?;
        let writes = index.take_insert_writes();
        let mut segments = builder.build(&trace).segments().to_vec();
        segments.push(Segment::write(writes));
        plans.push(QueryPlan::new(segments));
    }
    Ok(plans)
}

/// Runs the hybrid read-write sweep.
///
/// # Errors
///
/// Propagates build/search errors.
pub fn run(ctx: &mut BenchContext) -> Result<String> {
    let mut table = Table::new([
        "dataset",
        "writers",
        "ops_per_s",
        "p99_us",
        "read_MiB/s",
        "write_MiB/s",
    ]);
    // The small datasets suffice to show the interference effect.
    for spec in ctx
        .dataset_specs()
        .into_iter()
        .filter(|s| s.name.ends_with("-s"))
    {
        let search_plans = ctx.plans(&spec, SetupKind::MilvusDiskann)?;
        eprintln!("[prep] collecting real insert traces on {}", spec.name);
        let inserts = insert_plans(ctx, &spec)?;
        for &writers in WRITER_LADDER {
            // Interleave insert plans so `writers : SEARCH_CLIENTS` of the
            // closed-loop client mix inserts at any time.
            let mut plans: Vec<QueryPlan> = Vec::new();
            let stride = if writers == 0 {
                usize::MAX
            } else {
                (search_plans.len() * SEARCH_CLIENTS / (writers * search_plans.len().max(1))).max(1)
            };
            let mut wi = 0usize;
            for (i, p) in search_plans.iter().enumerate() {
                plans.push(p.clone());
                if stride != usize::MAX && i % stride == 0 {
                    plans.push(inserts[wi % inserts.len()].clone());
                    wi += 1;
                }
            }
            let m = ctx
                .run(SetupKind::MilvusDiskann, &plans, SEARCH_CLIENTS + writers)
                .expect("no client cap");
            table.row([
                spec.name.clone(),
                writers.to_string(),
                num(m.qps),
                num(m.p99_latency_us),
                num(m.mean_bandwidth_mib),
                num(m.io_stats.write_bytes as f64 / (1 << 20) as f64 / (ctx.duration_us / 1e6)),
            ]);
        }
    }
    ctx.write_csv("ext_rw.csv", &table.to_csv())?;
    let mut out = String::from(
        "Extension: hybrid read-write workload (paper SVIII future work)\n\
         (64 closed-loop search clients on milvus-diskann + N insert clients \
         replaying real FreshDiskANN insert traces on the shared SSD)\n",
    );
    out.push_str(&table.to_text());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_plans_mix_reads_and_writes() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.3e6;
        ctx.results_dir = std::env::temp_dir().join("sann-extrw-test");
        let spec = ctx.dataset_specs().remove(0);
        let inserts = insert_plans(&ctx, &spec).unwrap();
        assert_eq!(inserts.len(), INSERT_PLANS);
        let sample = &inserts[0];
        assert!(sample.io_count() > 0, "placement search reads");
        let has_write = sample
            .segments()
            .iter()
            .any(|s| matches!(s, Segment::Write { reqs } if !reqs.is_empty()));
        assert!(has_write, "insert must write node records");

        // Search-only vs mixed: writes appear and tails inflate.
        let search_plans = ctx.plans(&spec, SetupKind::MilvusDiskann).unwrap();
        let base = ctx
            .run(SetupKind::MilvusDiskann, &search_plans, SEARCH_CLIENTS)
            .unwrap();
        let mut mixed: Vec<QueryPlan> = search_plans.to_vec();
        mixed.extend(inserts.iter().cloned());
        let m = ctx
            .run(SetupKind::MilvusDiskann, &mixed, SEARCH_CLIENTS + 64)
            .unwrap();
        assert!(m.io_stats.write_bytes > 0);
        assert_eq!(base.io_stats.write_bytes, 0);
        std::fs::remove_dir_all(&ctx.results_dir).ok();
    }
}
