//! Figures 12–15: the effect of DiskANN's `beam_width` on throughput, P99
//! latency, and I/O traffic (§VI-B).
//!
//! Following the paper's methodology, `search_list` is pinned to 100 so the
//! candidate list never starves the beam, and `beam_width` sweeps the
//! x-axis. The paper observes *fluctuation without a clear trend* (O-22) on
//! Milvus because its BeamWidthRatio couples the knob to core count; our
//! simulation exposes the underlying trade cleanly (fewer, wider beams →
//! fewer round trips), so expect a mild monotone trend here instead — noted
//! in EXPERIMENTS.md.

use crate::context::BenchContext;
use crate::fig7_11::sweep_diskann;
use crate::report::{num, Table};
use sann_core::Result;

/// The `beam_width` ladder of the paper's Fig. 12–15 x-axis.
pub const BEAM_WIDTH_LADDER: &[usize] = &[1, 2, 4, 8, 16];

/// `search_list` used throughout the beam-width sweep (paper: 100).
pub const SEARCH_LIST: usize = 100;

/// Renders Figs. 12–15 from one sweep over all datasets.
///
/// # Errors
///
/// Propagates build/search errors.
pub fn run(ctx: &mut BenchContext) -> Result<String> {
    let mut qps_t = Table::new(["dataset", "beam_width", "qps_c1", "qps_c256"]);
    let mut lat_t = Table::new(["dataset", "beam_width", "p99_us_c1"]);
    let mut bw_t = Table::new(["dataset", "beam_width", "MiB/s_c1", "MiB/s_c256"]);
    let mut pq_t = Table::new([
        "dataset",
        "beam_width",
        "per_query_MiB/s_c1",
        "per_query_MiB/s_c256",
    ]);

    for spec in ctx.dataset_specs() {
        let values: Vec<(usize, usize)> = BEAM_WIDTH_LADDER
            .iter()
            .map(|&w| (SEARCH_LIST, w))
            .collect();
        let points = sweep_diskann(ctx, &spec, &values)?;
        for p in &points {
            let w = p.beam_width.to_string();
            qps_t.row([spec.name.clone(), w.clone(), num(p.c1.qps), num(p.c256.qps)]);
            lat_t.row([spec.name.clone(), w.clone(), num(p.c1.p99_latency_us)]);
            bw_t.row([
                spec.name.clone(),
                w.clone(),
                num(p.c1.mean_bandwidth_mib),
                num(p.c256.mean_bandwidth_mib),
            ]);
            pq_t.row([
                spec.name.clone(),
                w,
                format!("{:.3}", p.c1.per_query_bandwidth_mib()),
                format!("{:.3}", p.c256.per_query_bandwidth_mib()),
            ]);
        }
    }
    ctx.write_csv("fig12.csv", &qps_t.to_csv())?;
    ctx.write_csv("fig13.csv", &lat_t.to_csv())?;
    ctx.write_csv("fig14.csv", &bw_t.to_csv())?;
    ctx.write_csv("fig15.csv", &pq_t.to_csv())?;

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 12: milvus-diskann throughput vs beam_width (search_list={SEARCH_LIST})\n"
    ));
    out.push_str(&qps_t.to_text());
    out.push_str("\nFigure 13: milvus-diskann P99 latency vs beam_width (1 thread)\n");
    out.push_str(&lat_t.to_text());
    out.push_str("\nFigure 14: milvus-diskann total read bandwidth vs beam_width\n");
    out.push_str(&bw_t.to_text());
    out.push_str("\nFigure 15: milvus-diskann per-query read bandwidth vs beam_width\n");
    out.push_str(&pq_t.to_text());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_beams_cut_single_thread_latency() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.5e6;
        ctx.results_dir = std::env::temp_dir().join("sann-fig12-test");
        let spec = ctx.dataset_specs().remove(0);
        let points = sweep_diskann(&mut ctx, &spec, &[(SEARCH_LIST, 1), (SEARCH_LIST, 8)]).unwrap();
        assert!(
            points[1].c1.p99_latency_us < points[0].c1.p99_latency_us,
            "W=8 {} should beat W=1 {}",
            points[1].c1.p99_latency_us,
            points[0].c1.p99_latency_us
        );
        std::fs::remove_dir_all(&ctx.results_dir).ok();
    }
}
