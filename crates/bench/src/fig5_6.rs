//! Figures 5 and 6: block-level I/O characterization of Milvus-DiskANN
//! during search (§V) — bandwidth timelines, per-query bandwidth, and the
//! request-size distribution (O-15).

use crate::context::BenchContext;
use crate::report::{num, Table};
use sann_core::Result;
use sann_datagen::workload::CONCURRENCY_LADDER;
use sann_vdb::SetupKind;

/// The concurrency at which throughput stops improving materially (the
/// paper's "throughput plateaus" level): the smallest ladder point within
/// 10% of the ladder maximum.
pub fn plateau_concurrency(
    ctx: &mut BenchContext,
    spec: &sann_datagen::DatasetSpec,
) -> Result<usize> {
    let mut qps = Vec::with_capacity(CONCURRENCY_LADDER.len());
    for &c in CONCURRENCY_LADDER {
        qps.push(
            ctx.run_tuned(spec, SetupKind::MilvusDiskann, c)?
                .map(|m| m.qps)
                .unwrap_or(0.0),
        );
    }
    let max = qps.iter().cloned().fold(0.0, f64::max);
    for (i, &q) in qps.iter().enumerate() {
        if q >= 0.9 * max {
            return Ok(CONCURRENCY_LADDER[i]);
        }
    }
    Ok(*CONCURRENCY_LADDER.last().expect("ladder non-empty"))
}

/// Fig. 5: read-bandwidth timeline of Milvus-DiskANN at concurrency 1, the
/// plateau level, and 256.
///
/// # Errors
///
/// Propagates build/search errors.
pub fn run_fig5(ctx: &mut BenchContext) -> Result<String> {
    let mut out =
        String::from("Figure 5: read bandwidth (MiB/s) of milvus-diskann during search\n");
    let mut csv = Table::new(["dataset", "concurrency", "second", "mib_per_s"]);
    let mut summary = Table::new(["dataset", "concurrency", "mean", "min", "max"]);
    let mut faults = Table::new([
        "dataset", "conc", "errors", "retries", "hedges", "skips", "served",
    ]);
    for spec in ctx.dataset_specs() {
        let plateau = plateau_concurrency(ctx, &spec)?;
        for (label, concurrency) in [("1", 1usize), ("plateau", plateau), ("256", 256usize)] {
            let m = ctx
                .run_tuned(&spec, SetupKind::MilvusDiskann, concurrency)?
                .expect("milvus has no client limit");
            if ctx.fault_profile.active() {
                let f = &m.fault;
                faults.row([
                    spec.name.clone(),
                    concurrency.to_string(),
                    f.injected_errors.to_string(),
                    f.retries.to_string(),
                    f.hedges_issued.to_string(),
                    f.deadline_skips.to_string(),
                    format!("{:.4}", f.served_fraction()),
                ]);
            }
            let series = &m.bandwidth_timeline_mib;
            for (sec, &bw) in series.iter().enumerate() {
                csv.row([
                    spec.name.clone(),
                    concurrency.to_string(),
                    sec.to_string(),
                    format!("{bw:.3}"),
                ]);
            }
            // Steady region: skip the first second of ramp-up.
            let steady = if series.len() > 1 {
                &series[1..]
            } else {
                &series[..]
            };
            let mean = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
            let min = steady.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = steady.iter().cloned().fold(0.0, f64::max);
            summary.row([
                spec.name.clone(),
                format!("{concurrency} ({label})"),
                num(mean),
                num(if min.is_finite() { min } else { 0.0 }),
                num(max),
            ]);
        }
    }
    ctx.write_csv("fig5.csv", &csv.to_csv())?;
    out.push_str("(steady-state over the run; full per-second series in results/fig5.csv)\n");
    out.push_str(&summary.to_text());
    if ctx.fault_profile.active() {
        ctx.write_csv("fig5_faults.csv", &faults.to_csv())?;
        out.push_str(&format!(
            "Fault ledger under profile `{}` (injected errors, host reactions, served I/O fraction):\n",
            ctx.fault_profile.name
        ));
        out.push_str(&faults.to_text());
    }
    Ok(out)
}

/// Fig. 6: per-query average read bandwidth at concurrency 1 and 256, plus
/// the O-15 request-size check.
///
/// # Errors
///
/// Propagates build/search errors.
pub fn run_fig6(ctx: &mut BenchContext) -> Result<String> {
    let mut table = Table::new([
        "dataset",
        "conc",
        "per_query_MiB/s",
        "bytes/query",
        "ios/query",
        "4KiB_fraction",
        "max_req_B",
    ]);
    for spec in ctx.dataset_specs() {
        for concurrency in [1usize, 256] {
            let m = ctx
                .run_tuned(&spec, SetupKind::MilvusDiskann, concurrency)?
                .expect("milvus has no client limit");
            // Request sizes through the log-bucketed histogram shared with
            // sann-obs (same bucket boundaries as every other size metric).
            let sizes = m.io_stats.size_log_histogram();
            table.row([
                spec.name.clone(),
                concurrency.to_string(),
                format!("{:.3}", m.per_query_bandwidth_mib()),
                num(m.read_bytes_per_query),
                num(m.ios_per_query),
                format!("{:.5}", m.io_stats.size_fraction(4096)),
                sizes.max().to_string(),
            ]);
        }
    }
    ctx.write_csv("fig6.csv", &table.to_csv())?;
    let mut out = String::from(
        "Figure 6: per-query average read bandwidth of milvus-diskann\n(O-15: the 4KiB fraction of block requests should exceed 0.9999)\n",
    );
    out.push_str(&table.to_text());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_fault_ledger_appears_only_under_a_profile() {
        let mut clean = BenchContext::new(0.001);
        clean.only_dataset = Some("cohere-s".into());
        clean.duration_us = 0.2e6;
        clean.results_dir = std::env::temp_dir().join("sann-fig5-clean-test");
        let text = run_fig5(&mut clean).unwrap();
        assert!(!text.contains("Fault ledger"), "none profile stays silent");
        std::fs::remove_dir_all(&clean.results_dir).ok();

        let mut faulty = BenchContext::new(0.001);
        faulty.only_dataset = Some("cohere-s".into());
        faulty.duration_us = 0.2e6;
        faulty.fault_profile = sann_engine::FaultProfile::gc_heavy();
        faulty.results_dir = std::env::temp_dir().join("sann-fig5-fault-test");
        let text = run_fig5(&mut faulty).unwrap();
        assert!(text.contains("Fault ledger under profile `gc-heavy`"));
        assert!(faulty.results_dir.join("fig5_faults.csv").exists());
        std::fs::remove_dir_all(&faulty.results_dir).ok();
    }

    #[test]
    fn fig6_reports_4k_dominance() {
        let mut ctx = BenchContext::new(0.001);
        ctx.only_dataset = Some("cohere-s".into());
        ctx.duration_us = 0.5e6;
        ctx.results_dir = std::env::temp_dir().join("sann-fig6-test");
        let text = run_fig6(&mut ctx).unwrap();
        assert!(
            text.contains("1.00000"),
            "all requests must be 4 KiB:\n{text}"
        );
        assert!(
            text.contains("4096"),
            "log-histogram max must report the 4 KiB page size:\n{text}"
        );
        std::fs::remove_dir_all(&ctx.results_dir).ok();
    }
}
