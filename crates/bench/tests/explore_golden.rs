//! Golden-file test for the `vdbbench explore` report.
//!
//! The full I/O design-space sweep — eight {layout × prefetch ×
//! pipelining} strategies measured at fixed tuned knobs, plus the
//! per-strategy phase attribution — is compared byte-for-byte against a
//! committed golden file. The entire pipeline behind it (dataset
//! generation, index + paged-layout build, tuning, per-strategy trace
//! collection, plan compilation, eight simulations, table formatting) is
//! deterministic, so any drift is a real behaviour change. Regenerate
//! after an intentional one with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sann-bench --test explore_golden
//! ```

use sann_bench::{explore, BenchContext};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name} drifted from its golden file; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn explore_report_matches_golden_byte_for_byte() {
    let mut ctx = BenchContext::new(0.001);
    ctx.only_dataset = Some("cohere-s".into());
    ctx.duration_us = 0.2e6;
    let dir = std::env::temp_dir().join(format!("sann-explore-golden-{}", std::process::id()));
    ctx.results_dir = dir.clone();
    let args: Vec<String> = ["explore", "--clients", "4"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let text = explore::run(&mut ctx, &args).unwrap();
    check_golden("explore.txt", &text);
    for csv in ["explore_sweep.csv", "explore_phases.csv"] {
        let body = std::fs::read_to_string(dir.join(csv)).unwrap();
        check_golden(csv, &body);
    }
    std::fs::remove_dir_all(&dir).ok();
}
