//! Golden-file test for the `vdbbench iostat` report.
//!
//! The full report text — provenance breakdown, characterization summary,
//! cost ledger, and telemetry timeline for the healthy and aging device
//! profiles — is compared byte-for-byte against a committed golden file.
//! The entire pipeline behind it (dataset generation, index build, tuning,
//! plan compilation, both simulations, dollar pricing, table formatting)
//! is deterministic, so any drift is a real behaviour change. Regenerate
//! after an intentional one with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sann-bench --test iostat_golden
//! ```

use sann_bench::{iostat, BenchContext};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name} drifted from its golden file; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn iostat_report_matches_golden_byte_for_byte() {
    let mut ctx = BenchContext::new(0.001);
    ctx.only_dataset = Some("cohere-s".into());
    ctx.duration_us = 0.2e6;
    let dir = std::env::temp_dir().join(format!("sann-iostat-golden-{}", std::process::id()));
    ctx.results_dir = dir.clone();
    let args: Vec<String> = ["iostat", "--clients", "4"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let text = iostat::run(&mut ctx, &args).unwrap();
    check_golden("iostat.txt", &text);
    for csv in ["iostat_provenance.csv", "iostat_cost.csv"] {
        let body = std::fs::read_to_string(dir.join(csv)).unwrap();
        check_golden(csv, &body);
    }
    std::fs::remove_dir_all(&dir).ok();
}
