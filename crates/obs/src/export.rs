//! Deterministic trace exporters.
//!
//! Two formats, both produced with integer-only timestamp formatting so
//! identical-seed runs export byte-identical files (the
//! `sann-xtask lint --determinism` audit diffs them byte for byte):
//!
//! * [`chrome_trace`] — the Chrome Trace Event JSON array format, loadable
//!   in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`. Query
//!   spans become `B`/`E` duration events on one track (`tid`) per query;
//!   device requests become zero-or-more `X` complete events nested under
//!   their owning span.
//! * [`jsonl`] — one JSON object per line (a `meta` line, then every span
//!   in id order, then every I/O span in record order), for `grep`/`jq`
//!   style post-processing without a trace viewer.
//!
//! Events are emitted in depth-first span order, so within a track the
//! file order is exactly the begin/end stack order — a property the
//! golden-file schema test checks line by line.

use crate::span::{IoSpan, Span, SpanId, Trace};

/// Formats simulated nanoseconds as the microsecond value Chrome's `ts`
/// field expects, with exactly three decimals — pure integer math, so the
/// output is bit-stable across platforms.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_span_event(out: &mut String, s: &Span, ph: char) {
    let cat = match s.name {
        crate::span::SpanName::Query { .. } => "query",
        crate::span::SpanName::Phase(_) => "phase",
    };
    let ts = fmt_us(if ph == 'B' { s.start_ns } else { s.end_ns });
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
        s.name.label(),
        cat,
        ph,
        ts,
        s.query
    ));
}

/// Renders the provenance attribute of an I/O span as an extra JSON field
/// (leading comma included), or `""` for the default tag — so untagged
/// exports stay byte-identical to pre-provenance builds.
fn prov_args(io: &IoSpan) -> String {
    if io.provenance == crate::IoProvenance::default() {
        return String::new();
    }
    format!(",\"prov\":\"{}\"", io.provenance.name())
}

/// Renders the fault attributes of an I/O span as extra JSON fields
/// (leading comma included), or `""` when every attribute has its
/// fault-free default — so fault-free exports stay byte-identical to
/// pre-fault builds.
fn fault_args(io: &IoSpan) -> String {
    if !io.fault_tagged() {
        return String::new();
    }
    let mut extra = String::new();
    if io.attempt != 0 {
        extra.push_str(&format!(",\"attempt\":{}", io.attempt));
    }
    if io.hedged {
        extra.push_str(",\"hedged\":true");
    }
    if io.outcome != crate::span::IoOutcome::Ok {
        extra.push_str(&format!(",\"outcome\":\"{}\"", io.outcome.name()));
    }
    extra
}

fn push_io_event(out: &mut String, io: &IoSpan) {
    let op = if io.write { "write" } else { "read" };
    out.push_str(&format!(
        "{{\"name\":\"{} {}B\",\"cat\":\"io\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
         \"args\":{{\"offset\":{},\"len\":{}{}{}}}}}",
        op,
        io.len,
        fmt_us(io.start_ns),
        fmt_us(io.end_ns - io.start_ns),
        io.query,
        io.offset,
        io.len,
        prov_args(io),
        fault_args(io)
    ));
}

/// Exports a trace in the Chrome Trace Event JSON array format
/// (Perfetto-loadable), one event per line.
///
/// Layout: a `process_name` metadata event, a `thread_name` metadata
/// event per query track, then for each root span (by start time) a
/// depth-first walk emitting `B`, nested `X` I/O events, children, `E`.
pub fn chrome_trace(trace: &Trace) -> String {
    // Children and per-span I/O, index-keyed off the span table.
    let n = trace.spans.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in trace.spans.iter().enumerate() {
        match s.parent.index() {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    let by_start = |spans: &[Span], idxs: &mut Vec<usize>| {
        idxs.sort_by_key(|&i| (spans[i].start_ns, i));
    };
    by_start(&trace.spans, &mut roots);
    for c in &mut children {
        by_start(&trace.spans, c);
    }
    let mut io_by_owner: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, io) in trace.io.iter().enumerate() {
        if let Some(owner) = io.owner.index() {
            io_by_owner[owner].push(i);
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"sann-sim\"}}",
    );
    // One named track per query, in first-appearance (root) order.
    let mut seen_queries: Vec<u64> = Vec::new();
    for &r in &roots {
        let q = trace.spans[r].query;
        if !seen_queries.contains(&q) {
            seen_queries.push(q);
            out.push_str(&format!(
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{q},\
                 \"args\":{{\"name\":\"query {q}\"}}}}"
            ));
        }
    }

    // Depth-first emit: B, owned I/O, children, E.
    let mut stack: Vec<(usize, bool)> = roots.iter().rev().map(|&r| (r, false)).collect();
    while let Some((idx, closing)) = stack.pop() {
        let s = &trace.spans[idx];
        out.push_str(",\n");
        if closing {
            push_span_event(&mut out, s, 'E');
            continue;
        }
        push_span_event(&mut out, s, 'B');
        for &io_idx in &io_by_owner[idx] {
            out.push_str(",\n");
            push_io_event(&mut out, &trace.io[io_idx]);
        }
        stack.push((idx, true));
        for &c in children[idx].iter().rev() {
            stack.push((c, false));
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Exports a trace as line-oriented JSON: a `meta` line, then one `span`
/// line per span in id order, then one `io` line per device request in
/// record order.
pub fn jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"level\":\"{}\",\"end_ns\":{},\"spans\":{},\"io\":{}}}\n",
        trace.level.name(),
        trace.end_ns,
        trace.spans.len(),
        trace.io.len()
    ));
    for s in &trace.spans {
        let parent = match s.parent.index() {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"query\":{},\"name\":\"{}\",\
             \"start_ns\":{},\"end_ns\":{}}}\n",
            s.id.0,
            parent,
            s.query,
            s.name.label(),
            s.start_ns,
            s.end_ns
        ));
    }
    for io in &trace.io {
        out.push_str(&format!(
            "{{\"type\":\"io\",\"owner\":{},\"query\":{},\"op\":\"{}\",\"offset\":{},\
             \"len\":{},\"start_ns\":{},\"end_ns\":{}{}{}}}\n",
            io.owner.0,
            io.query,
            if io.write { "write" } else { "read" },
            io.offset,
            io.len,
            io.start_ns,
            io.end_ns,
            prov_args(io),
            fault_args(io)
        ));
    }
    out
}

/// True if `id` is a real span (helper for exporters and tests).
pub fn has_owner(id: SpanId) -> bool {
    id.is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, SpanName, TraceLevel, TraceSink, Tracer};

    fn sample_trace() -> Trace {
        let mut t = Tracer::new(TraceLevel::Io);
        let q0 = t.begin_span(SpanId::NONE, 0, SpanName::Query { plan: 0 }, 0);
        let c0 = t.begin_span(q0, 0, SpanName::Phase(Phase::Compute), 0);
        t.end_span(c0, 2_500);
        let f0 = t.begin_span(q0, 0, SpanName::Phase(Phase::FlashService), 2_500);
        t.io_span(IoSpan {
            owner: f0,
            query: 0,
            start_ns: 2_500,
            end_ns: 90_000,
            offset: 4096,
            len: 4096,
            write: false,
            provenance: Default::default(),
            attempt: 0,
            hedged: false,
            outcome: crate::span::IoOutcome::Ok,
        });
        t.end_span(f0, 90_000);
        t.end_span(q0, 90_000);
        let q1 = t.begin_span(SpanId::NONE, 1, SpanName::Query { plan: 1 }, 1_000);
        // Zero-duration cache-hit phase: B and E share a timestamp.
        let h1 = t.begin_span(q1, 1, SpanName::Phase(Phase::CacheHit), 1_000);
        t.end_span(h1, 1_000);
        t.end_span(q1, 5_000);
        let trace = t.finish(100_000);
        trace.validate().unwrap();
        trace
    }

    #[test]
    fn fmt_us_is_integer_only() {
        assert_eq!(fmt_us(0), "0.000");
        assert_eq!(fmt_us(999), "0.999");
        assert_eq!(fmt_us(1_000), "1.000");
        assert_eq!(fmt_us(2_500), "2.500");
        assert_eq!(fmt_us(1_234_567), "1234.567");
    }

    #[test]
    fn chrome_trace_pairs_and_nests() {
        let trace = sample_trace();
        let out = chrome_trace(&trace);
        // One B and one E per span, one X per io, stack-ordered per tid.
        let b = out.matches("\"ph\":\"B\"").count();
        let e = out.matches("\"ph\":\"E\"").count();
        let x = out.matches("\"ph\":\"X\"").count();
        assert_eq!(b, trace.spans.len());
        assert_eq!(e, trace.spans.len());
        assert_eq!(x, trace.io.len());
        // File order is DFS: parent B before child B, child E before
        // parent E.
        let qb = out
            .find("\"name\":\"query/plan0\",\"cat\":\"query\",\"ph\":\"B\"")
            .unwrap();
        let cb = out.find("\"name\":\"compute\"").unwrap();
        assert!(qb < cb);
        // Valid JSON shape: one trailing newline, balanced brackets.
        assert!(out.starts_with("{\"traceEvents\":[\n"));
        assert!(out.ends_with("\n]}\n"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
    }

    #[test]
    fn chrome_trace_zero_duration_span_keeps_stack_order() {
        let trace = sample_trace();
        let out = chrome_trace(&trace);
        // The cache-hit span's B line appears before its E line even
        // though both carry the same timestamp.
        let lines: Vec<&str> = out.lines().collect();
        let b = lines
            .iter()
            .position(|l| l.contains("cache_hit") && l.contains("\"ph\":\"B\""))
            .unwrap();
        let e = lines
            .iter()
            .position(|l| l.contains("cache_hit") && l.contains("\"ph\":\"E\""))
            .unwrap();
        assert!(b < e);
    }

    #[test]
    fn jsonl_lists_everything_once() {
        let trace = sample_trace();
        let out = jsonl(&trace);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1 + trace.spans.len() + trace.io.len());
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[0].contains("\"level\":\"io\""));
        assert!(lines[1].contains("\"parent\":null"));
        assert!(lines.last().unwrap().contains("\"type\":\"io\""));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_trace();
        let b = sample_trace();
        assert_eq!(chrome_trace(&a), chrome_trace(&b));
        assert_eq!(jsonl(&a), jsonl(&b));
    }

    #[test]
    fn fault_attributes_appear_only_when_tagged() {
        use crate::span::IoOutcome;
        // A fault-free trace exports no fault fields at all.
        let clean = jsonl(&sample_trace());
        assert!(!clean.contains("attempt"));
        assert!(!clean.contains("hedged"));
        assert!(!clean.contains("outcome"));
        // A tagged attempt renders every non-default attribute.
        let mut t = Tracer::new(TraceLevel::Io);
        let q = t.begin_span(SpanId::NONE, 0, SpanName::Query { plan: 0 }, 0);
        t.io_span(IoSpan {
            owner: q,
            query: 0,
            start_ns: 0,
            end_ns: 10,
            offset: 0,
            len: 4096,
            write: false,
            provenance: Default::default(),
            attempt: 2,
            hedged: true,
            outcome: IoOutcome::Error,
        });
        t.end_span(q, 10);
        let trace = t.finish(10);
        let out = jsonl(&trace);
        assert!(out.contains("\"attempt\":2,\"hedged\":true,\"outcome\":\"error\""));
        let chrome = chrome_trace(&trace);
        assert!(chrome.contains(",\"attempt\":2,\"hedged\":true,\"outcome\":\"error\"}"));
    }

    #[test]
    fn provenance_attribute_appears_only_when_tagged() {
        use crate::IoProvenance;
        // Default-tagged (metadata) traces export no provenance field.
        let clean = jsonl(&sample_trace());
        assert!(!clean.contains("prov"));
        assert!(!chrome_trace(&sample_trace()).contains("prov"));
        // A tagged read renders the attribute in both exporters.
        let mut t = Tracer::new(TraceLevel::Io);
        let q = t.begin_span(SpanId::NONE, 0, SpanName::Query { plan: 0 }, 0);
        t.io_span(IoSpan {
            owner: q,
            query: 0,
            start_ns: 0,
            end_ns: 10,
            offset: 0,
            len: 4096,
            write: false,
            provenance: IoProvenance::GraphAdjacency,
            attempt: 0,
            hedged: false,
            outcome: crate::span::IoOutcome::Ok,
        });
        t.end_span(q, 10);
        let trace = t.finish(10);
        assert!(jsonl(&trace).contains(",\"prov\":\"graph-adjacency\"}"));
        assert!(chrome_trace(&trace).contains(",\"prov\":\"graph-adjacency\"}"));
    }
}
