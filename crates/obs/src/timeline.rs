//! Fixed-width windowed aggregation over simulated time.
//!
//! Device telemetry (queue depth, utilization, bandwidth) is sampled at
//! DES event granularity — one sample per scheduled request — and then
//! folded into fixed windows for reporting. This module owns that fold,
//! including the one subtle piece every timeline needs: the **trailing
//! partial bucket**. A 2.5 s run at 1 s windows has buckets of width
//! 1 s, 1 s, 0.5 s; rates computed against a full-width final bucket
//! would silently understate the tail. `ssdsim`'s Fig. 5 bandwidth
//! series and the iostat queue-depth/utilization timelines all divide by
//! [`Timeline::bucket_width_us`] so the logic can never drift apart.
//!
//! All arithmetic is plain `f64` over simulated microseconds, recorded in
//! DES event order, so every derived series is bit-reproducible.

/// An accumulator folding `(time, value)` samples into fixed windows.
#[derive(Debug, Clone)]
pub struct Timeline {
    duration_us: f64,
    bucket_us: f64,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl Timeline {
    /// Creates a timeline covering `[0, duration_us)` in `bucket_us`-wide
    /// windows (the final window may be partial). Returns `None` when
    /// either span is non-positive — the degenerate cases a zero-duration
    /// run produces.
    pub fn new(duration_us: f64, bucket_us: f64) -> Option<Timeline> {
        if duration_us <= 0.0 || bucket_us <= 0.0 {
            return None;
        }
        // sann-lint: allow(cast-truncation) -- positive finite ratio, far below usize::MAX for any simulated run
        let n = (duration_us / bucket_us).ceil() as usize;
        let n = n.max(1);
        Some(Timeline {
            duration_us,
            bucket_us,
            sums: vec![0.0; n],
            counts: vec![0; n],
        })
    }

    /// Number of windows (≥ 1).
    pub fn n_buckets(&self) -> usize {
        self.sums.len()
    }

    /// Width of window `i` in microseconds: `bucket_us` for all but the
    /// last, which covers only the remainder of the run.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_width_us(&self, i: usize) -> f64 {
        assert!(i < self.n_buckets(), "bucket index out of range");
        if i + 1 == self.n_buckets() {
            self.duration_us - sann_core::cast::f64_from_usize(i) * self.bucket_us
        } else {
            self.bucket_us
        }
    }

    /// Folds one sample in. Samples at or beyond `duration_us` land in the
    /// final window (a request scheduled exactly at the horizon still
    /// belongs to the run).
    pub fn record(&mut self, t_us: f64, value: f64) {
        debug_assert!(t_us >= 0.0, "negative sample time");
        let i = if t_us >= 0.0 && self.bucket_us > 0.0 {
            // sann-lint: allow(cast-truncation) -- non-negative, and the min() clamp bounds the index
            ((t_us / self.bucket_us) as usize).min(self.n_buckets() - 1)
        } else {
            0
        };
        // sann-lint: allow(panic-path) -- i is clamped to n_buckets()-1 above
        self.sums[i] += value;
        // sann-lint: allow(panic-path) -- i is clamped to n_buckets()-1 above
        self.counts[i] += 1;
    }

    /// Per-window sums, in window order.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Per-window sample counts, in window order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-window rates: sum divided by the window width in seconds
    /// (partial-width-aware, so the tail window is not understated).
    pub fn rates_per_s(&self) -> Vec<f64> {
        self.sums
            .iter()
            .enumerate()
            .map(|(i, s)| s / (self.bucket_width_us(i) / 1e6))
            .collect()
    }

    /// Per-window means: sum divided by sample count (0 for empty windows).
    pub fn means(&self) -> Vec<f64> {
        self.sums
            .iter()
            .zip(&self.counts)
            .map(|(s, &c)| {
                if c == 0 {
                    0.0
                } else {
                    s / sann_core::cast::f64_from_u64(c)
                }
            })
            .collect()
    }

    /// Per-window fractions of the window itself: sum (in µs) divided by
    /// the window width (in µs) — the shape device-utilization series use.
    pub fn fractions_of_window(&self) -> Vec<f64> {
        self.sums
            .iter()
            .enumerate()
            .map(|(i, s)| s / self.bucket_width_us(i))
            .collect()
    }

    /// Mean over every sample in the run (0 with no samples).
    pub fn mean(&self) -> f64 {
        let n: u64 = self.counts.iter().sum();
        if n == 0 {
            0.0
        } else {
            self.sums.iter().sum::<f64>() / sann_core::cast::f64_from_u64(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_spans_yield_no_timeline() {
        assert!(Timeline::new(0.0, 1e6).is_none());
        assert!(Timeline::new(-1.0, 1e6).is_none());
        assert!(Timeline::new(1e6, 0.0).is_none());
    }

    #[test]
    fn trailing_partial_bucket_width() {
        let tl = Timeline::new(2.5e6, 1e6).unwrap();
        assert_eq!(tl.n_buckets(), 3);
        assert_eq!(tl.bucket_width_us(0), 1e6);
        assert_eq!(tl.bucket_width_us(1), 1e6);
        assert!((tl.bucket_width_us(2) - 0.5e6).abs() < 1e-9);
    }

    #[test]
    fn exact_multiple_has_no_partial_bucket() {
        let tl = Timeline::new(3e6, 1e6).unwrap();
        assert_eq!(tl.n_buckets(), 3);
        assert_eq!(tl.bucket_width_us(2), 1e6);
    }

    #[test]
    fn rates_divide_by_partial_width() {
        let mut tl = Timeline::new(1.5e6, 1e6).unwrap();
        tl.record(0.2e6, 10.0);
        tl.record(1.2e6, 10.0);
        let rates = tl.rates_per_s();
        assert!((rates[0] - 10.0).abs() < 1e-9);
        // Same sum over half the window: double the rate.
        assert!((rates[1] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn means_and_empty_windows() {
        let mut tl = Timeline::new(2e6, 1e6).unwrap();
        tl.record(0.1e6, 4.0);
        tl.record(0.9e6, 8.0);
        let means = tl.means();
        assert!((means[0] - 6.0).abs() < 1e-9);
        assert_eq!(means[1], 0.0, "empty window means 0, not NaN");
        assert!((tl.mean() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_samples_land_in_final_window() {
        let mut tl = Timeline::new(2e6, 1e6).unwrap();
        tl.record(2e6, 1.0);
        tl.record(5e6, 1.0); // stragglers clamp rather than panic
        assert_eq!(tl.counts()[1], 2);
    }

    #[test]
    fn fractions_of_window() {
        let mut tl = Timeline::new(1.5e6, 1e6).unwrap();
        tl.record(0.0, 0.25e6);
        tl.record(1.0e6, 0.25e6);
        let f = tl.fractions_of_window();
        assert!((f[0] - 0.25).abs() < 1e-9);
        assert!((f[1] - 0.5).abs() < 1e-9, "partial window: 0.25s of 0.5s");
    }

    #[test]
    fn mean_of_empty_timeline_is_zero() {
        let tl = Timeline::new(1e6, 1e6).unwrap();
        assert_eq!(tl.mean(), 0.0);
    }
}
