//! Log₂-bucketed histograms with an exact canonical byte encoding.
//!
//! One bucketing scheme serves every consumer — per-phase latencies, I/O
//! request sizes, per-query byte counts — so figures derived from
//! `IoStats` (Fig. 6's request-size distribution) and exported traces
//! bucket identically by construction: both go through [`bucket_index`] /
//! [`bucket_floor`].

use sann_core::buf::ByteWriter;

/// Number of buckets: bucket 0 holds the value `0`, bucket `i ≥ 1` holds
/// values `v` with `2^(i-1) <= v < 2^i` (i.e. `i` significant bits).
pub const BUCKETS: usize = 65;

/// The bucket a value falls into (shared by Fig. 6's request-size
/// histogram and every exported trace histogram).
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive lower bound of a bucket: `0` for bucket 0, `2^(i-1)` for
/// bucket `i ≥ 1`.
pub fn bucket_floor(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// A log₂-bucketed histogram over `u64` samples.
///
/// Mergeable across worker shards ([`LogHistogram::merge`] is exact: the
/// merged histogram equals the histogram of the concatenated samples) and
/// encodable to a canonical little-endian byte string for the determinism
/// audit.
///
/// # Examples
///
/// ```
/// use sann_obs::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [1, 5, 5, 4096] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.sum(), 4107);
/// assert_eq!(h.percentile_floor(50.0), 4); // bucket [4, 8)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of the same value (used when folding an exact
    /// size→count map into buckets).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v * n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (exact, not bucketed).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample; `0` when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample; `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The floor of the bucket containing the `p`-th percentile sample
    /// (nearest-rank over buckets); `0` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile_floor(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Folds another histogram into this one (exact shard merge).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket_floor, count)` pairs in ascending
    /// order — the shape exporters serialize.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_floor(i), c))
            .collect()
    }

    /// Canonical little-endian encoding: count, sum, min, max, then a
    /// length-prefixed list of `(bucket_index, count)` pairs for non-empty
    /// buckets. Two histograms are bit-identical iff their encodings are.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut buf = ByteWriter::new();
        self.encode(&mut buf);
        buf.into_bytes()
    }

    /// Appends the canonical encoding to an existing writer.
    pub fn encode(&self, buf: &mut ByteWriter) {
        buf.put_u64_le(self.count);
        buf.put_u64_le(self.sum);
        buf.put_u64_le(self.min());
        buf.put_u64_le(self.max);
        let nonzero: Vec<(usize, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        buf.put_u32_le(nonzero.len() as u32);
        for (i, c) in nonzero {
            buf.put_u32_le(i as u32);
            buf.put_u64_le(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(4095), 12);
        assert_eq!(bucket_index(4096), 13);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(13), 4096);
        // Every value lands in the bucket whose floor is <= it.
        for v in [0u64, 1, 7, 4096, u64::MAX] {
            assert!(bucket_floor(bucket_index(v)) <= v.max(1));
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.percentile_floor(50.0), 0);
        h.record(100);
        h.record(200);
        h.record_n(4096, 2);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 100 + 200 + 8192);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 4096);
        assert!((h.mean() - 2123.0).abs() < 1e-9);
        assert_eq!(h.percentile_floor(99.0), 4096);
        assert_eq!(h.nonzero_buckets(), vec![(64, 1), (128, 1), (4096, 2)]);
    }

    #[test]
    fn merge_equals_concatenation() {
        let samples_a = [1u64, 5, 4096, 4096];
        let samples_b = [0u64, 3, 100_000];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for &v in &samples_a {
            a.record(v);
            both.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.canonical_bytes(), both.canonical_bytes());
    }

    #[test]
    fn canonical_bytes_distinguish() {
        let mut a = LogHistogram::new();
        a.record(7);
        let mut b = LogHistogram::new();
        b.record(8);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        let mut c = LogHistogram::new();
        c.record(7);
        assert_eq!(a.canonical_bytes(), c.canonical_bytes());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LogHistogram::new();
        a.record(42);
        let before = a.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a, before);
        let mut empty = LogHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
