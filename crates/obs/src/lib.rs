//! Simulation-time observability for the whole query path.
//!
//! The paper's contribution is *characterization*: Figs. 5–6 and
//! O-10..O-16 exist because the authors could see inside the query path
//! with bpftrace and per-stage timers. This crate is the simulator-side
//! equivalent — a span tracer, a latency-breakdown profiler, and trace
//! exporters — built entirely on the discrete-event simulation's virtual
//! clock so every trace is bit-reproducible:
//!
//! * [`span`] — [`Span`]s with [`SpanId`]s collected through the
//!   [`TraceSink`] trait; the execution engine opens one span per query and
//!   one child span per [`Phase`] (queue wait, distance compute, beam
//!   issue, flash service, page-cache hit, rerank, delay), plus nested I/O
//!   spans for individual device requests at [`TraceLevel::Io`].
//! * [`hist`] — log₂-bucketed [`LogHistogram`]s with an exact
//!   little-endian [`LogHistogram::canonical_bytes`] encoding, mergeable
//!   across worker shards. The request-size bucketing used by Fig. 6 and
//!   by exported traces is defined once here ([`hist::bucket_index`] /
//!   [`hist::bucket_floor`]) so they can never drift apart.
//! * [`registry`] — a named counter/histogram [`Registry`] and the
//!   per-phase [`PhaseBreakdown`] that the engine folds into `RunMetrics`;
//!   every nanosecond of a query's reported latency is attributed to
//!   exactly one in-latency phase (the engine asserts the sum).
//! * [`export`] — two deterministic exporters: Chrome/Perfetto
//!   `trace.json` ([`export::chrome_trace`]) and line-oriented JSONL
//!   ([`export::jsonl`]). Byte-identical across identical-seed runs; the
//!   `sann-xtask lint --determinism` audit diffs them byte for byte.
//! * [`provenance`] — the [`IoProvenance`] tag every index-layer read
//!   request carries (graph adjacency, vector block, posting list, PQ
//!   codes, metadata), threaded through the engine and device model so
//!   I/Os-per-query can be broken down by *what the read fetched*.
//! * [`timeline`] — fixed-window aggregation ([`Timeline`]) over the
//!   simulated clock, with the trailing-partial-bucket width defined
//!   once for every rate/mean/utilization series (Fig. 5 bandwidth,
//!   iostat queue depth and device utilization).
//!
//! All timestamps are `u64` nanoseconds of *simulated* time — this crate
//! never reads the wall clock, uses no randomness, and iterates only
//! ordered containers, so it passes `sann-xtask lint` with zero
//! allow-markers.
//!
//! # Examples
//!
//! ```
//! use sann_obs::{Phase, SpanId, SpanName, TraceLevel, TraceSink, Tracer};
//!
//! let mut tracer = Tracer::new(TraceLevel::Query);
//! let q = tracer.begin_span(SpanId::NONE, 0, SpanName::Query { plan: 3 }, 100);
//! let c = tracer.begin_span(q, 0, SpanName::Phase(Phase::Compute), 100);
//! tracer.end_span(c, 250);
//! tracer.end_span(q, 250);
//! let trace = tracer.finish(1_000);
//! assert_eq!(trace.spans.len(), 2);
//! trace.validate().unwrap();
//! ```

pub mod export;
pub mod hist;
pub mod provenance;
pub mod registry;
pub mod span;
pub mod timeline;

pub use hist::LogHistogram;
pub use provenance::IoProvenance;
pub use registry::{PhaseBreakdown, Registry};
pub use span::{
    IoOutcome, IoSpan, Phase, Span, SpanId, SpanName, Trace, TraceLevel, TraceSink, Tracer,
};
pub use timeline::Timeline;
