//! Spans over the simulated clock.
//!
//! A [`Span`] is a `[start_ns, end_ns]` interval of *virtual* time owned
//! by one query. The execution engine opens one root span per query and
//! one child span per [`Phase`]; at [`TraceLevel::Io`] it additionally
//! records an [`IoSpan`] per device request, tagged with the owning
//! span so block I/O nests under its query in the exported timeline.
//!
//! Spans are collected through the [`TraceSink`] trait so instrumented
//! code does not care whether it is talking to a live [`Tracer`] or a
//! disabled one: below [`TraceLevel::Query`] every call is a no-op and
//! [`SpanId::NONE`] is handed back.

use std::fmt;

/// How much the tracer records. Levels are ordered: each level includes
/// everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing; every sink call is a no-op.
    Off,
    /// Run-level aggregates only (phase breakdown, counters); no spans.
    Run,
    /// Per-query spans with per-phase children.
    Query,
    /// Everything above plus one [`IoSpan`] per device request.
    Io,
}

impl TraceLevel {
    /// All levels in ascending order (the `--trace-level` ladder).
    pub const ALL: [TraceLevel; 4] = [
        TraceLevel::Off,
        TraceLevel::Run,
        TraceLevel::Query,
        TraceLevel::Io,
    ];

    /// Parses the CLI spelling (`off`, `run`, `query`, `io`).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "run" => Some(TraceLevel::Run),
            "query" => Some(TraceLevel::Query),
            "io" => Some(TraceLevel::Io),
            _ => None,
        }
    }

    /// The CLI spelling of this level.
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Run => "run",
            TraceLevel::Query => "query",
            TraceLevel::Io => "io",
        }
    }

    /// Whether per-query spans are recorded at this level.
    pub fn spans(self) -> bool {
        self >= TraceLevel::Query
    }

    /// Whether per-request I/O spans are recorded at this level.
    pub fn io(self) -> bool {
        self >= TraceLevel::Io
    }
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Index of a [`Span`] inside its [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The absent span: parent of root spans, and the id handed back when
    /// tracing is disabled.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// Whether this id refers to a real span.
    pub fn is_some(self) -> bool {
        self != SpanId::NONE
    }

    /// The span's index in [`Trace::spans`], or `None` for [`SpanId::NONE`].
    pub fn index(self) -> Option<usize> {
        if self.is_some() {
            Some(self.0 as usize)
        } else {
            None
        }
    }
}

/// The phase taxonomy: every nanosecond between a query's activation and
/// its completion is attributed to exactly one of the in-latency phases
/// (the engine audits the sum per query). [`Phase::QueueWait`] is the
/// admission wait *before* activation, which the latency metric excludes
/// by construction, so it is reported separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Waiting in the admission queue for a free core (pre-activation;
    /// not part of the reported per-query latency).
    QueueWait,
    /// On-core distance computation / graph traversal.
    Compute,
    /// CPU work issuing a beam of page reads to the device.
    BeamIssue,
    /// Waiting for the flash device to service outstanding reads.
    FlashService,
    /// A beam fully absorbed by the page cache (zero device time).
    CacheHit,
    /// Trailing on-core work after the last I/O: full-precision rerank.
    Rerank,
    /// Explicit think-time / pacing delay inside the plan.
    Delay,
}

impl Phase {
    /// All phases, in canonical (encoding and reporting) order.
    pub const ALL: [Phase; 7] = [
        Phase::QueueWait,
        Phase::Compute,
        Phase::BeamIssue,
        Phase::FlashService,
        Phase::CacheHit,
        Phase::Rerank,
        Phase::Delay,
    ];

    /// Number of phases.
    pub const COUNT: usize = Phase::ALL.len();

    /// Position in [`Phase::ALL`]; stable across the canonical encoding.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short stable name used by exporters and report tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueueWait => "queue_wait",
            Phase::Compute => "compute",
            Phase::BeamIssue => "beam_issue",
            Phase::FlashService => "flash_service",
            Phase::CacheHit => "cache_hit",
            Phase::Rerank => "rerank",
            Phase::Delay => "delay",
        }
    }

    /// Whether this phase is part of the reported per-query latency.
    /// In-latency phases partition `[activation, completion]`, so their
    /// per-query sum must equal the reported latency exactly.
    pub fn in_latency(self) -> bool {
        self != Phase::QueueWait
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanName {
    /// The root span of one query, from activation to completion.
    /// `plan` is the index of the query's plan in the submitted batch.
    Query {
        /// Index of the plan this query executed.
        plan: usize,
    },
    /// A child span covering one contiguous phase interval.
    Phase(Phase),
}

impl SpanName {
    /// Stable label used by both exporters.
    pub fn label(&self) -> String {
        match self {
            SpanName::Query { plan } => format!("query/plan{plan}"),
            SpanName::Phase(p) => p.name().to_string(),
        }
    }
}

/// One closed interval of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// This span's id (its index in [`Trace::spans`]).
    pub id: SpanId,
    /// Enclosing span, or [`SpanId::NONE`] for a root span.
    pub parent: SpanId,
    /// The query this span belongs to.
    pub query: u64,
    /// What the span covers.
    pub name: SpanName,
    /// Start, in simulated nanoseconds.
    pub start_ns: u64,
    /// End, in simulated nanoseconds (`>= start_ns` once closed).
    pub end_ns: u64,
}

impl Span {
    /// Span duration in simulated nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// How a traced I/O attempt ended. Anything but [`IoOutcome::Ok`] only
/// occurs under an active fault profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoOutcome {
    /// The attempt returned data.
    #[default]
    Ok,
    /// The attempt failed with an injected transient read error.
    Error,
    /// A hedged duplicate abandoned when its sibling resolved first.
    Cancelled,
}

impl IoOutcome {
    /// Stable label used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            IoOutcome::Ok => "ok",
            IoOutcome::Error => "error",
            IoOutcome::Cancelled => "cancelled",
        }
    }
}

/// One device request, tagged with the span (and therefore query) that
/// issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSpan {
    /// The span whose interval contains this request.
    pub owner: SpanId,
    /// The query that issued the request.
    pub query: u64,
    /// Submission time, simulated nanoseconds.
    pub start_ns: u64,
    /// Completion time, simulated nanoseconds.
    pub end_ns: u64,
    /// Byte offset on the device.
    pub offset: u64,
    /// Request length in bytes.
    pub len: u32,
    /// `true` for writes, `false` for reads.
    pub write: bool,
    /// What the bytes are (graph adjacency, posting list, ...). Exporters
    /// append the attribute only for non-default tags, keeping untagged
    /// exports byte-identical to pre-provenance builds.
    pub provenance: crate::IoProvenance,
    /// Retry ordinal of this attempt (0 = first try; fault runs only).
    pub attempt: u8,
    /// Whether this attempt is a hedged duplicate (fault runs only).
    pub hedged: bool,
    /// How the attempt ended (always [`IoOutcome::Ok`] on fault-free runs).
    pub outcome: IoOutcome,
}

impl IoSpan {
    /// Whether any fault attribute deviates from the fault-free defaults
    /// (exporters append the extra fields only in that case, keeping
    /// fault-free exports byte-identical to pre-fault builds).
    pub fn fault_tagged(&self) -> bool {
        self.attempt != 0 || self.hedged || self.outcome != IoOutcome::Ok
    }
}

/// Destination for spans produced by instrumented code.
///
/// Implementors must hand back [`SpanId::NONE`] (and ignore all other
/// calls) when their [`TraceLevel`] does not record the event, so call
/// sites never branch on the level themselves.
pub trait TraceSink {
    /// The sink's recording level.
    fn level(&self) -> TraceLevel;

    /// Opens a span at `now_ns`; returns [`SpanId::NONE`] when spans are
    /// not recorded at this sink's level.
    fn begin_span(&mut self, parent: SpanId, query: u64, name: SpanName, now_ns: u64) -> SpanId;

    /// Closes a span at `now_ns`. No-op for [`SpanId::NONE`].
    fn end_span(&mut self, id: SpanId, now_ns: u64);

    /// Records one device request. No-op below [`TraceLevel::Io`].
    fn io_span(&mut self, io: IoSpan);
}

/// `end_ns` sentinel marking a span that has not been closed yet.
const OPEN: u64 = u64::MAX;

/// The standard in-memory [`TraceSink`]: appends spans to a vector and
/// yields a [`Trace`] when the run finishes.
#[derive(Debug)]
pub struct Tracer {
    level: TraceLevel,
    spans: Vec<Span>,
    io: Vec<IoSpan>,
    open: usize,
}

impl Tracer {
    /// Creates a tracer recording at `level`.
    pub fn new(level: TraceLevel) -> Tracer {
        Tracer {
            level,
            spans: Vec::new(),
            io: Vec::new(),
            open: 0,
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Consumes the tracer, closing any still-open span at `end_ns`, and
    /// returns the finished [`Trace`].
    pub fn finish(mut self, end_ns: u64) -> Trace {
        if self.open > 0 {
            for s in &mut self.spans {
                if s.end_ns == OPEN {
                    s.end_ns = end_ns;
                }
            }
        }
        Trace {
            level: self.level,
            end_ns,
            spans: self.spans,
            io: self.io,
        }
    }
}

impl TraceSink for Tracer {
    fn level(&self) -> TraceLevel {
        self.level
    }

    fn begin_span(&mut self, parent: SpanId, query: u64, name: SpanName, now_ns: u64) -> SpanId {
        if !self.level.spans() {
            return SpanId::NONE;
        }
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(Span {
            id,
            parent,
            query,
            name,
            start_ns: now_ns,
            end_ns: OPEN,
        });
        self.open += 1;
        id
    }

    fn end_span(&mut self, id: SpanId, now_ns: u64) {
        let Some(idx) = id.index() else { return };
        let s = &mut self.spans[idx];
        debug_assert!(s.end_ns == OPEN, "span closed twice");
        s.end_ns = now_ns;
        self.open -= 1;
    }

    fn io_span(&mut self, io: IoSpan) {
        if self.level.io() {
            self.io.push(io);
        }
    }
}

/// A finished trace: every recorded span plus the run horizon.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Level the trace was recorded at.
    pub level: TraceLevel,
    /// Simulated time at which the run finished.
    pub end_ns: u64,
    /// All spans, in open order. A child's id is always greater than its
    /// parent's.
    pub spans: Vec<Span>,
    /// Per-request I/O spans (empty below [`TraceLevel::Io`]).
    pub io: Vec<IoSpan>,
}

impl Trace {
    /// Structural invariants every trace must satisfy:
    ///
    /// 1. every span is closed with `end_ns >= start_ns`, within the run
    ///    horizon;
    /// 2. every child nests inside its parent's interval and belongs to
    ///    the same query;
    /// 3. every I/O span falls inside its owning span's interval.
    pub fn validate(&self) -> Result<(), String> {
        for s in &self.spans {
            if s.end_ns < s.start_ns {
                return Err(format!("span {:?} not closed", s.id));
            }
            if s.end_ns > self.end_ns {
                return Err(format!("span {:?} ends after the run horizon", s.id));
            }
            if let Some(pidx) = s.parent.index() {
                let p = self
                    .spans
                    .get(pidx)
                    .ok_or_else(|| format!("span {:?} has unknown parent {:?}", s.id, s.parent))?;
                if s.start_ns < p.start_ns || s.end_ns > p.end_ns {
                    return Err(format!(
                        "span {:?} [{}, {}] escapes parent {:?} [{}, {}]",
                        s.id, s.start_ns, s.end_ns, p.id, p.start_ns, p.end_ns
                    ));
                }
                if s.query != p.query {
                    return Err(format!(
                        "span {:?} query {} != parent query {}",
                        s.id, s.query, p.query
                    ));
                }
            }
        }
        for io in &self.io {
            if io.end_ns < io.start_ns {
                return Err(format!("io span at offset {} runs backwards", io.offset));
            }
            let Some(idx) = io.owner.index() else {
                return Err(format!("io span at offset {} has no owner", io.offset));
            };
            let owner = self
                .spans
                .get(idx)
                .ok_or_else(|| format!("io span owner {:?} unknown", io.owner))?;
            if io.start_ns < owner.start_ns || io.end_ns > owner.end_ns {
                return Err(format!(
                    "io span [{}, {}] escapes owner {:?} [{}, {}]",
                    io.start_ns, io.end_ns, owner.id, owner.start_ns, owner.end_ns
                ));
            }
        }
        Ok(())
    }

    /// Spans belonging to `query`, in open order.
    pub fn query_spans(&self, query: u64) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.query == query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ladder() {
        assert!(TraceLevel::Off < TraceLevel::Run);
        assert!(TraceLevel::Run < TraceLevel::Query);
        assert!(TraceLevel::Query < TraceLevel::Io);
        assert!(!TraceLevel::Run.spans());
        assert!(TraceLevel::Query.spans());
        assert!(!TraceLevel::Query.io());
        assert!(TraceLevel::Io.io());
        for lvl in TraceLevel::ALL {
            assert_eq!(TraceLevel::parse(lvl.name()), Some(lvl));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
    }

    #[test]
    fn phase_taxonomy() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert!(!Phase::QueueWait.in_latency());
        assert!(Phase::ALL.iter().filter(|p| p.in_latency()).count() == Phase::COUNT - 1);
    }

    #[test]
    fn records_nested_spans() {
        let mut t = Tracer::new(TraceLevel::Io);
        let q = t.begin_span(SpanId::NONE, 7, SpanName::Query { plan: 0 }, 100);
        let c = t.begin_span(q, 7, SpanName::Phase(Phase::FlashService), 150);
        t.io_span(IoSpan {
            owner: c,
            query: 7,
            start_ns: 150,
            end_ns: 300,
            offset: 4096,
            len: 4096,
            write: false,
            provenance: Default::default(),
            attempt: 0,
            hedged: false,
            outcome: IoOutcome::Ok,
        });
        t.end_span(c, 300);
        t.end_span(q, 400);
        let trace = t.finish(1_000);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.io.len(), 1);
        trace.validate().unwrap();
        assert_eq!(trace.query_spans(7).count(), 2);
        assert_eq!(trace.spans[0].duration_ns(), 300);
    }

    #[test]
    fn disabled_levels_record_nothing() {
        for lvl in [TraceLevel::Off, TraceLevel::Run] {
            let mut t = Tracer::new(lvl);
            let q = t.begin_span(SpanId::NONE, 0, SpanName::Query { plan: 0 }, 0);
            assert_eq!(q, SpanId::NONE);
            t.end_span(q, 10);
            let trace = t.finish(10);
            assert!(trace.spans.is_empty());
            trace.validate().unwrap();
        }
        // Query level records spans but drops io.
        let mut t = Tracer::new(TraceLevel::Query);
        let q = t.begin_span(SpanId::NONE, 0, SpanName::Query { plan: 0 }, 0);
        t.io_span(IoSpan {
            owner: q,
            query: 0,
            start_ns: 0,
            end_ns: 5,
            offset: 0,
            len: 512,
            write: false,
            provenance: Default::default(),
            attempt: 0,
            hedged: false,
            outcome: IoOutcome::Ok,
        });
        t.end_span(q, 10);
        assert!(t.finish(10).io.is_empty());
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut t = Tracer::new(TraceLevel::Query);
        let q = t.begin_span(SpanId::NONE, 0, SpanName::Query { plan: 0 }, 40);
        let _ = q;
        let trace = t.finish(90);
        assert_eq!(trace.spans[0].end_ns, 90);
        trace.validate().unwrap();
    }

    #[test]
    fn validate_rejects_escaping_child() {
        let trace = Trace {
            level: TraceLevel::Query,
            end_ns: 100,
            spans: vec![
                Span {
                    id: SpanId(0),
                    parent: SpanId::NONE,
                    query: 0,
                    name: SpanName::Query { plan: 0 },
                    start_ns: 10,
                    end_ns: 50,
                },
                Span {
                    id: SpanId(1),
                    parent: SpanId(0),
                    query: 0,
                    name: SpanName::Phase(Phase::Compute),
                    start_ns: 40,
                    end_ns: 60,
                },
            ],
            io: Vec::new(),
        };
        assert!(trace.validate().is_err());
    }

    #[test]
    fn span_labels_are_stable() {
        assert_eq!(SpanName::Query { plan: 3 }.label(), "query/plan3");
        assert_eq!(SpanName::Phase(Phase::BeamIssue).label(), "beam_issue");
    }
}
