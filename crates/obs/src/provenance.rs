//! Provenance tags: *what* a device read fetched.
//!
//! The paper's I/O characterization (and the design-space-exploration work
//! it cites) hinges on breaking I/Os-per-query down by the data structure
//! the read served — graph adjacency fetches behave nothing like posting
//! list scans, even at identical request sizes. Every [`IoReq`] the index
//! layer emits carries exactly one [`IoProvenance`] tag; the engine threads
//! it through the device model so per-tag byte totals can be audited
//! against the raw I/O totals (they must sum exactly — see the engine's
//! provenance-conservation tests).
//!
//! The tag says what the bytes *are*; whether a read was absorbed by the
//! page cache or reached the device is orthogonal and tracked by the
//! engine's per-provenance cache-hit counters.
//!
//! [`IoReq`]: https://docs.rs/sann-index (the index crate's request type)

use std::fmt;

/// What a block read (or write) fetched, in the paper's taxonomy.
///
/// [`IoProvenance::Metadata`] doubles as the default for requests built
/// without an explicit tag (bootstrap reads, synthetic benchmark plans), so
/// untagged workloads stay representable without an "unknown" hole in the
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum IoProvenance {
    /// Graph node records: adjacency lists plus the co-located
    /// full-precision vector (DiskANN node reads, FreshDiskANN
    /// node reads and writes).
    GraphAdjacency,
    /// Packed full-precision vector blocks with no graph payload
    /// (mmap-HNSW vector-file page faults, rerank fetches).
    VectorBlock,
    /// IVF/SPANN posting lists: (id + full vector) entries scanned
    /// sequentially after centroid routing.
    IvfPostingList,
    /// Product-quantization code blocks (IVF-PQ posting lists of
    /// (id + code) entries).
    PqCodes,
    /// Everything else: index headers, centroid tables, untagged or
    /// synthetic requests.
    #[default]
    Metadata,
}

impl IoProvenance {
    /// All tags, in canonical (encoding and reporting) order.
    pub const ALL: [IoProvenance; 5] = [
        IoProvenance::GraphAdjacency,
        IoProvenance::VectorBlock,
        IoProvenance::IvfPostingList,
        IoProvenance::PqCodes,
        IoProvenance::Metadata,
    ];

    /// Number of tags.
    pub const COUNT: usize = IoProvenance::ALL.len();

    /// Position in [`IoProvenance::ALL`]; stable across the canonical
    /// encoding.
    pub fn index(self) -> usize {
        // sann-lint: allow(cast-truncation) -- fieldless discriminant in 0..COUNT
        self as usize
    }

    /// Short stable name used by exporters and report tables.
    pub fn name(self) -> &'static str {
        match self {
            IoProvenance::GraphAdjacency => "graph-adjacency",
            IoProvenance::VectorBlock => "vector-block",
            IoProvenance::IvfPostingList => "ivf-posting-list",
            IoProvenance::PqCodes => "pq-codes",
            IoProvenance::Metadata => "metadata",
        }
    }

    /// Parses the stable name back into a tag.
    pub fn parse(s: &str) -> Option<IoProvenance> {
        IoProvenance::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl fmt::Display for IoProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_and_indices() {
        for (i, p) in IoProvenance::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(IoProvenance::COUNT, 5);
    }

    #[test]
    fn default_is_metadata() {
        assert_eq!(IoProvenance::default(), IoProvenance::Metadata);
    }

    #[test]
    fn names_round_trip() {
        for p in IoProvenance::ALL {
            assert_eq!(IoProvenance::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(IoProvenance::parse("mystery"), None);
    }
}
