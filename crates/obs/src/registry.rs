//! Named counters/histograms and the per-phase latency breakdown.
//!
//! The [`Registry`] replaces ad-hoc `Vec<f64>` plumbing: the engine
//! records exact per-query latencies (nanoseconds, as `u64`) plus named
//! counters and log-bucketed histograms here, and folds the per-query
//! phase attribution into a [`PhaseBreakdown`]. Both are mergeable across
//! worker shards and carry exact canonical byte encodings for the
//! determinism audit.

use std::collections::BTreeMap;

use sann_core::buf::ByteWriter;

use crate::hist::LogHistogram;
use crate::span::Phase;

/// Per-phase attribution of simulated time across a whole run.
///
/// For each query the engine accumulates one `[u64; Phase::COUNT]` of
/// nanoseconds and adds it here. In-latency phases partition the query's
/// `[activation, completion]` interval, so per query
/// `sum(in-latency phases) == reported latency` holds *exactly* — the
/// engine asserts it (the ISSUE's 1 µs budget is met with 0 ns error).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Number of queries folded in.
    pub queries: u64,
    /// Total nanoseconds attributed to each phase, indexed by
    /// [`Phase::index`].
    pub ns: [u64; Phase::COUNT],
}

impl PhaseBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> PhaseBreakdown {
        PhaseBreakdown::default()
    }

    /// Folds one query's per-phase nanoseconds in.
    pub fn add_query(&mut self, phase_ns: &[u64; Phase::COUNT]) {
        self.queries += 1;
        for (total, ns) in self.ns.iter_mut().zip(phase_ns) {
            *total += ns;
        }
    }

    /// Total nanoseconds attributed to `phase` across the run.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.ns[phase.index()]
    }

    /// Total in-latency nanoseconds — equals the sum of all reported
    /// per-query latencies.
    pub fn latency_ns(&self) -> u64 {
        Phase::ALL
            .iter()
            .filter(|p| p.in_latency())
            .map(|p| self.phase_ns(*p))
            .sum()
    }

    /// Mean microseconds per query spent in `phase`; `0.0` when empty.
    pub fn mean_us(&self, phase: Phase) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.phase_ns(phase) as f64 / self.queries as f64 / 1_000.0
        }
    }

    /// Fraction of total in-latency time spent in `phase`; `0.0` when the
    /// run recorded no latency (queue wait reports its share of the same
    /// denominator, so fractions of in-latency phases sum to 1).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.latency_ns();
        if total == 0 {
            0.0
        } else {
            self.phase_ns(phase) as f64 / total as f64
        }
    }

    /// Folds another shard's breakdown in (exact).
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        self.queries += other.queries;
        for (a, b) in self.ns.iter_mut().zip(&other.ns) {
            *a += b;
        }
    }

    /// Appends the canonical little-endian encoding.
    pub fn encode(&self, buf: &mut ByteWriter) {
        buf.put_u64_le(self.queries);
        for ns in &self.ns {
            buf.put_u64_le(*ns);
        }
    }

    /// Canonical little-endian encoding (queries, then per-phase totals
    /// in [`Phase::ALL`] order).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut buf = ByteWriter::new();
        self.encode(&mut buf);
        buf.into_bytes()
    }
}

/// A run-scoped registry of named counters and histograms, plus the exact
/// per-query latency samples the metric layer consumes.
///
/// Names are `&'static str` and stored in `BTreeMap`s so iteration order
/// — and therefore every export — is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, LogHistogram>,
    latencies_ns: Vec<u64>,
    breakdown: PhaseBreakdown,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `v` to the counter `name`, creating it at zero.
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records `v` into the histogram `name`, creating it empty.
    pub fn hist_record(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    /// The histogram `name`, if any value was ever recorded.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// Folds a pre-aggregated histogram into the named slot (one map
    /// touch for a whole run's worth of samples).
    pub fn hist_merge(&mut self, name: &'static str, h: &LogHistogram) {
        self.hists.entry(name).or_default().merge(h);
    }

    /// Records one completed query: its exact latency and its per-phase
    /// attribution (which must sum to `latency_ns` over in-latency
    /// phases; the engine asserts this before calling).
    pub fn record_query(&mut self, latency_ns: u64, phase_ns: &[u64; Phase::COUNT]) {
        self.latencies_ns.push(latency_ns);
        self.breakdown.add_query(phase_ns);
    }

    /// Exact per-query latencies in completion order, nanoseconds.
    pub fn latencies_ns(&self) -> &[u64] {
        &self.latencies_ns
    }

    /// Exact per-query latencies in completion order, microseconds —
    /// the shape `RunMetrics` historically consumed. The conversion is
    /// the same `ns as f64 / 1000.0` arithmetic the executor used, so
    /// metric values are bit-identical to the pre-registry plumbing.
    pub fn latencies_us(&self) -> Vec<f64> {
        self.latencies_ns
            .iter()
            .map(|&ns| ns as f64 / 1_000.0)
            .collect()
    }

    /// The run's per-phase breakdown.
    pub fn breakdown(&self) -> &PhaseBreakdown {
        &self.breakdown
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.hists.iter().map(|(k, v)| (*k, v))
    }

    /// Folds another shard's registry in. Counters and histograms merge
    /// by name; the other shard's latency samples are appended in order.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in &other.hists {
            self.hists.entry(name).or_default().merge(h);
        }
        self.latencies_ns.extend_from_slice(&other.latencies_ns);
        self.breakdown.merge(&other.breakdown);
    }

    /// Canonical little-endian encoding of everything in the registry:
    /// counters (name-ordered), histograms (name-ordered), exact latency
    /// samples, and the phase breakdown.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut buf = ByteWriter::new();
        buf.put_u32_le(self.counters.len() as u32);
        for (name, v) in &self.counters {
            buf.put_str(name);
            buf.put_u64_le(*v);
        }
        buf.put_u32_le(self.hists.len() as u32);
        for (name, h) in &self.hists {
            buf.put_str(name);
            h.encode(&mut buf);
        }
        buf.put_u32_le(self.latencies_ns.len() as u32);
        for ns in &self.latencies_ns {
            buf.put_u64_le(*ns);
        }
        self.breakdown.encode(&mut buf);
        buf.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase_vec(pairs: &[(Phase, u64)]) -> [u64; Phase::COUNT] {
        let mut v = [0u64; Phase::COUNT];
        for (p, ns) in pairs {
            v[p.index()] = *ns;
        }
        v
    }

    #[test]
    fn breakdown_attributes_and_sums() {
        let mut b = PhaseBreakdown::new();
        b.add_query(&phase_vec(&[
            (Phase::QueueWait, 500),
            (Phase::Compute, 1_000),
            (Phase::FlashService, 3_000),
        ]));
        b.add_query(&phase_vec(&[(Phase::Compute, 2_000), (Phase::Rerank, 500)]));
        assert_eq!(b.queries, 2);
        assert_eq!(b.phase_ns(Phase::Compute), 3_000);
        // Queue wait is excluded from latency.
        assert_eq!(b.latency_ns(), 1_000 + 3_000 + 2_000 + 500);
        assert!((b.mean_us(Phase::Compute) - 1.5).abs() < 1e-12);
        let in_latency_total: f64 = Phase::ALL
            .iter()
            .filter(|p| p.in_latency())
            .map(|p| b.fraction(*p))
            .sum();
        assert!((in_latency_total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_merge_is_exact() {
        let mut a = PhaseBreakdown::new();
        a.add_query(&phase_vec(&[(Phase::Compute, 10)]));
        let mut b = PhaseBreakdown::new();
        b.add_query(&phase_vec(&[(Phase::Delay, 20)]));
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = PhaseBreakdown::new();
        direct.add_query(&phase_vec(&[(Phase::Compute, 10)]));
        direct.add_query(&phase_vec(&[(Phase::Delay, 20)]));
        assert_eq!(merged, direct);
        assert_eq!(merged.canonical_bytes(), direct.canonical_bytes());
    }

    #[test]
    fn registry_counters_hists_latencies() {
        let mut r = Registry::new();
        r.counter_add("cache.hits", 3);
        r.counter_add("cache.hits", 2);
        r.hist_record("io.read_bytes", 4096);
        r.record_query(1_500, &phase_vec(&[(Phase::Compute, 1_500)]));
        assert_eq!(r.counter("cache.hits"), 5);
        assert_eq!(r.counter("never"), 0);
        assert_eq!(r.hist("io.read_bytes").unwrap().count(), 1);
        assert!(r.hist("never").is_none());
        assert_eq!(r.latencies_ns(), &[1_500]);
        assert_eq!(r.latencies_us(), vec![1.5]);
        assert_eq!(r.breakdown().queries, 1);
    }

    #[test]
    fn registry_merge_matches_single_shard() {
        let mut a = Registry::new();
        a.counter_add("x", 1);
        a.hist_record("h", 10);
        a.record_query(100, &phase_vec(&[(Phase::Compute, 100)]));
        let mut b = Registry::new();
        b.counter_add("x", 2);
        b.counter_add("y", 7);
        b.hist_record("h", 20);
        b.record_query(200, &phase_vec(&[(Phase::Rerank, 200)]));
        let mut merged = a.clone();
        merged.merge(&b);

        let mut direct = Registry::new();
        direct.counter_add("x", 3);
        direct.counter_add("y", 7);
        direct.hist_record("h", 10);
        direct.hist_record("h", 20);
        direct.record_query(100, &phase_vec(&[(Phase::Compute, 100)]));
        direct.record_query(200, &phase_vec(&[(Phase::Rerank, 200)]));
        assert_eq!(merged.canonical_bytes(), direct.canonical_bytes());
    }
}
