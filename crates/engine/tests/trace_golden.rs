//! Golden-file and schema tests for the trace exporters.
//!
//! A tiny, fully deterministic run is exported with both exporters and
//! compared byte-for-byte against files committed under
//! `tests/golden/`. Regenerate after an intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sann-engine --test trace_golden
//! ```

use sann_engine::{Executor, QueryPlan, RunConfig, Segment, TracedRun};
use sann_index::IoReq;
use sann_obs::export::{chrome_trace, jsonl};
use sann_obs::TraceLevel;
use std::path::PathBuf;

/// The pinned scenario: two plans (one storage query with a rerank pass,
/// one cache-friendly read), four closed-loop clients over a 2-core host
/// with an admission cap so every phase — queue wait included — appears.
fn golden_run(level: TraceLevel) -> TracedRun {
    let storage = QueryPlan::new(vec![
        Segment::cpu(20.0),
        Segment::io(vec![IoReq::new(0, 4096), IoReq::new(8192, 4096)]),
        Segment::cpu(10.0),
    ]);
    let cached = QueryPlan::new(vec![
        Segment::cpu(5.0),
        Segment::io(vec![IoReq::new(4096, 4096)]),
    ]);
    let config = RunConfig {
        cores: 2,
        concurrency: 4,
        duration_us: 2_000.0,
        max_concurrent: 2,
        cache_bytes: 1 << 20,
        ..RunConfig::default()
    };
    Executor::new(config).run_traced(&[storage, cached], level)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name} drifted from its golden file; if the format change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn trace_json_matches_golden_byte_for_byte() {
    let run = golden_run(TraceLevel::Io);
    run.trace.validate().unwrap();
    check_golden("trace.json", &chrome_trace(&run.trace));
}

#[test]
fn trace_jsonl_matches_golden_byte_for_byte() {
    let run = golden_run(TraceLevel::Io);
    check_golden("trace.jsonl", &jsonl(&run.trace));
}

#[test]
fn identical_runs_export_identical_bytes() {
    let a = golden_run(TraceLevel::Io);
    let b = golden_run(TraceLevel::Io);
    assert_eq!(chrome_trace(&a.trace), chrome_trace(&b.trace));
    assert_eq!(jsonl(&a.trace), jsonl(&b.trace));
    assert_eq!(a.metrics.canonical_bytes(), b.metrics.canonical_bytes());
    assert_eq!(a.registry.canonical_bytes(), b.registry.canonical_bytes());
}

/// Chrome-format schema check, line by line: every `B` event has a
/// matching `E` on the same track in stack order, and every event is
/// well-formed enough for Perfetto's JSON importer (one event per line,
/// ph/ts/pid/tid fields present).
#[test]
fn chrome_events_pair_and_nest_in_stack_order() {
    let run = golden_run(TraceLevel::Io);
    let out = chrome_trace(&run.trace);

    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\":");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find(['"', ',', '}']).unwrap_or(rest.len());
        Some(&rest[..end])
    }

    let mut stacks: std::collections::BTreeMap<String, Vec<String>> = Default::default();
    let mut b_events = 0usize;
    let mut e_events = 0usize;
    for line in out.lines() {
        let line = line.trim_end_matches(',');
        let Some(ph) = field(line, "ph") else {
            continue;
        };
        if ph == "M" {
            continue;
        }
        let tid = field(line, "tid").expect("event without tid").to_string();
        let name = field(line, "name").expect("event without name").to_string();
        assert!(field(line, "ts").is_some(), "event without ts: {line}");
        match ph {
            "B" => {
                b_events += 1;
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                e_events += 1;
                let top = stacks
                    .get_mut(&tid)
                    .and_then(|s| s.pop())
                    .unwrap_or_else(|| panic!("E without open B on tid {tid}: {line}"));
                assert_eq!(top, name, "E must close the innermost open span");
            }
            "X" => {
                // Complete events must appear while their query span is
                // open on the same track.
                let open = stacks.get(&tid).map_or(0, Vec::len);
                assert!(open > 0, "X event outside any open span: {line}");
            }
            other => panic!("unexpected event type {other}: {line}"),
        }
    }
    assert!(b_events > 0);
    assert_eq!(b_events, e_events, "every B must have a matching E");
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
}

/// Structural schema check on the trace itself: children nest within
/// parents and I/O events fall inside their owning span's interval
/// (`Trace::validate`), and every in-latency phase child partitions its
/// root span exactly.
#[test]
fn spans_partition_each_query_latency() {
    let run = golden_run(TraceLevel::Io);
    run.trace.validate().unwrap();
    let mut roots = 0;
    for root in run
        .trace
        .spans
        .iter()
        .filter(|s| matches!(s.name, sann_obs::SpanName::Query { .. }))
    {
        roots += 1;
        let child_ns: u64 = run
            .trace
            .query_spans(root.query)
            .filter(|s| matches!(s.name, sann_obs::SpanName::Phase(_)))
            .map(|s| s.duration_ns())
            .sum();
        assert_eq!(
            child_ns,
            root.duration_ns(),
            "phase children of query {} must cover its span exactly",
            root.query
        );
    }
    assert!(roots >= 4, "scenario must complete several queries");
    // The scenario exercises the full phase taxonomy except Delay.
    for phase in [
        sann_obs::Phase::QueueWait,
        sann_obs::Phase::Compute,
        sann_obs::Phase::BeamIssue,
        sann_obs::Phase::FlashService,
        sann_obs::Phase::CacheHit,
        sann_obs::Phase::Rerank,
    ] {
        assert!(
            run.trace
                .spans
                .iter()
                .any(|s| s.name == sann_obs::SpanName::Phase(phase)),
            "scenario must exercise phase {phase}"
        );
    }
}
