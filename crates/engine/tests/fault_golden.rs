//! Golden-file test for the fig. 5/6 block-size histogram under fault
//! injection: the `none` profile must keep the exact fault-free shape,
//! and the pinned `gc-heavy` run must reproduce byte-for-byte so any
//! accidental change to fault scheduling or retry accounting shows up
//! as a golden diff. Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sann-engine --test fault_golden
//! ```

use sann_engine::{
    Executor, FaultConfig, FaultProfile, QueryPlan, RetryPolicy, RunConfig, RunMetrics, Segment,
};
use sann_index::IoReq;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The pinned scenario: the trace_golden workload (a storage query with a
/// rerank pass plus a cache-friendly read) with mixed request sizes so the
/// histogram has more than one bucket, run long enough for GC windows and
/// retries to fire.
fn golden_run(faults: FaultConfig) -> RunMetrics {
    let storage = QueryPlan::new(vec![
        Segment::cpu(20.0),
        Segment::io(vec![IoReq::new(0, 4096), IoReq::new(8192, 4096)]),
        Segment::cpu(5.0),
        Segment::io(vec![IoReq::new(1 << 20, 128 * 1024)]),
        Segment::cpu(10.0),
    ]);
    let cached = QueryPlan::new(vec![
        Segment::cpu(5.0),
        Segment::io(vec![IoReq::new(4096, 4096)]),
    ]);
    let config = RunConfig {
        cores: 2,
        concurrency: 4,
        duration_us: 50_000.0,
        // No page cache: every planned read reaches the device, so the
        // histogram and the fault ledger reflect real device traffic.
        cache_bytes: 0,
        faults,
        ..RunConfig::default()
    };
    Executor::new(config).run(&[storage, cached])
}

/// Renders the fig. 5/6-style block-size view plus the fault ledger as a
/// stable text report.
fn render(profile_name: &str, m: &RunMetrics) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "profile: {profile_name}");
    let _ = writeln!(out, "completed: {}", m.completed);
    let _ = writeln!(out, "block-size histogram (size bytes -> requests):");
    for (&size, &count) in &m.io_stats.size_histogram {
        let _ = writeln!(out, "  {size} {count}");
    }
    let _ = writeln!(out, "log2 buckets (floor -> requests):");
    for (floor, count) in m.io_stats.size_log_histogram().nonzero_buckets() {
        let _ = writeln!(out, "  {floor} {count}");
    }
    let _ = writeln!(out, "4KiB fraction: {:.5}", m.io_stats.size_fraction(4096));
    let f = &m.fault;
    let _ = writeln!(
        out,
        "faults: errors={} spikes={} gc_stall_ns={} retries={} exhausted={}",
        f.injected_errors, f.latency_spikes, f.gc_stall_ns, f.retries, f.retry_exhausted
    );
    let _ = writeln!(
        out,
        "ios: planned={} completed={} abandoned={} served={:.5}",
        f.ios_planned,
        f.ios_completed,
        f.ios_abandoned,
        f.served_fraction()
    );
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name} drifted from its golden file; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1.\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn none_profile_histogram_matches_golden() {
    let m = golden_run(FaultConfig::default());
    assert!(m.fault.is_clean(), "none profile must leave no fault trace");
    check_golden("fault_hist_none.txt", &render("none", &m));
}

#[test]
fn gc_heavy_histogram_matches_golden() {
    let faults = FaultConfig {
        profile: FaultProfile::gc_heavy(),
        retry: RetryPolicy::default(),
        hedge_after_us: 400.0,
        ..FaultConfig::default()
    };
    let m = golden_run(faults);
    assert!(m.fault.gc_stall_ns > 0, "gc-heavy must stall some reads");
    check_golden("fault_hist_gc_heavy.txt", &render("gc-heavy", &m));
}

#[test]
fn fault_profiles_preserve_the_request_size_mix() {
    // Faults perturb *when* requests complete, never *what* is requested:
    // the exact block-size histogram is invariant across profiles.
    let clean = golden_run(FaultConfig::default());
    for profile in [FaultProfile::aging(), FaultProfile::gc_heavy()] {
        let faulted = golden_run(FaultConfig {
            profile,
            ..FaultConfig::default()
        });
        let sizes: Vec<u32> = faulted.io_stats.size_histogram.keys().copied().collect();
        let clean_sizes: Vec<u32> = clean.io_stats.size_histogram.keys().copied().collect();
        assert_eq!(
            sizes, clean_sizes,
            "profile {} changed the set of request sizes",
            profile.name
        );
    }
}
