//! Property tests for provenance conservation: every planned read lands in
//! exactly one (tag, cache-hit-or-device) cell, and the per-tag totals sum
//! back to the untyped totals — on clean and on faulty devices alike.

use sann_engine::{Executor, FaultConfig, FaultProfile, QueryPlan, RunConfig, Segment};
use sann_index::IoReq;
use sann_obs::IoProvenance;

/// A plan mixing every non-default tag plus an untagged (metadata) read,
/// with offsets spread so the small test cache keeps a working set.
fn tagged_plan(salt: u64) -> QueryPlan {
    let tag = |i: u64, p| IoReq::tagged((salt * 97 + i) % 32 * 4096, 4096, 3332, p);
    QueryPlan::new(vec![
        Segment::cpu(10.0),
        Segment::io(vec![
            tag(0, IoProvenance::GraphAdjacency),
            tag(1, IoProvenance::GraphAdjacency),
            tag(2, IoProvenance::VectorBlock),
        ]),
        Segment::cpu(5.0),
        Segment::io(vec![
            tag(3, IoProvenance::IvfPostingList),
            tag(4, IoProvenance::PqCodes),
            IoReq::new((salt * 31) % 16 * 4096 + (1 << 24), 4096),
        ]),
        Segment::cpu(5.0),
    ])
}

/// Like [`tagged_plan`] but with the second beam issued as a pipelined
/// [`Segment::Overlapped`]: reads in flight under CPU work, the shape the
/// I/O design-space explorer's `+pipe` strategies compile to.
fn overlapped_plan(salt: u64) -> QueryPlan {
    let tag = |i: u64, p| IoReq::tagged((salt * 89 + i) % 32 * 4096, 4096, 3332, p);
    QueryPlan::new(vec![
        Segment::cpu(10.0),
        Segment::io(vec![
            tag(0, IoProvenance::GraphAdjacency),
            tag(1, IoProvenance::VectorBlock),
        ]),
        Segment::overlapped(
            8.0,
            2,
            vec![
                tag(2, IoProvenance::IvfPostingList),
                tag(3, IoProvenance::PqCodes),
                IoReq::new((salt * 37) % 16 * 4096 + (1 << 24), 4096),
            ],
        ),
        Segment::cpu(5.0),
    ])
}

fn config(cache_bytes: u64, profile: FaultProfile) -> RunConfig {
    RunConfig {
        cores: 4,
        concurrency: 8,
        duration_us: 0.2e6,
        cache_bytes,
        faults: FaultConfig {
            profile,
            ..FaultConfig::default()
        },
        ..RunConfig::default()
    }
}

fn check_conservation(cache_bytes: u64, profile: FaultProfile) {
    check_conservation_of(cache_bytes, profile, tagged_plan);
}

fn check_conservation_of(cache_bytes: u64, profile: FaultProfile, plan: fn(u64) -> QueryPlan) {
    let plans: Vec<QueryPlan> = (0..4).map(plan).collect();
    let run =
        Executor::new(config(cache_bytes, profile)).run_traced(&plans, sann_obs::TraceLevel::Off);
    let m = &run.metrics;
    let s = &m.io_stats;
    assert!(s.reads > 0, "runs must actually read");

    // Every device read carries exactly one tag: the per-tag partitions
    // sum back to the untyped totals with no remainder.
    assert_eq!(s.prov_reads.iter().sum::<u64>(), s.reads);
    assert_eq!(s.prov_read_bytes.iter().sum::<u64>(), s.read_bytes);
    assert!(s.needed_read_bytes <= s.read_bytes);

    // Cache hits partition the same way, and hits + device reads account
    // for every logical read the plans issued (device reads can exceed
    // that under faults — retries and hedges re-read — never undershoot).
    let hits: u64 = m.prov_cache_hits.iter().sum();
    assert_eq!(hits, run.registry.counter("engine.reads_cache_hit"));
    let logical =
        (m.ios_per_query * run.registry.counter("engine.queries_issued") as f64).round() as u64;
    assert!(
        s.reads + hits >= logical,
        "reads {} + hits {hits} must cover {logical} planned",
        s.reads
    );
    if !profile.active() {
        assert_eq!(
            s.reads + hits,
            logical,
            "clean runs read each plan entry once"
        );
    }

    // The tags the plans used (and only those) show up in the breakdown.
    for p in [
        IoProvenance::GraphAdjacency,
        IoProvenance::VectorBlock,
        IoProvenance::IvfPostingList,
        IoProvenance::PqCodes,
        IoProvenance::Metadata,
    ] {
        let touched = s.prov_reads[p.index()] + m.prov_cache_hits[p.index()];
        assert!(touched > 0, "tag {p} must appear in every plan's beam");
    }
    // Needed bytes reflect the tagged payloads: 3332 of every tagged 4096.
    assert!(m.read_amplification() >= 1.0);
}

#[test]
fn conservation_direct_io_clean() {
    check_conservation(0, FaultProfile::none());
}

#[test]
fn conservation_with_page_cache() {
    check_conservation(1 << 20, FaultProfile::none());
}

#[test]
fn conservation_under_aging_faults() {
    check_conservation(0, FaultProfile::parse("aging").unwrap());
}

#[test]
fn conservation_under_flaky_faults_with_cache() {
    check_conservation(1 << 20, FaultProfile::parse("flaky").unwrap());
}

#[test]
fn conservation_overlapped_clean() {
    check_conservation_of(0, FaultProfile::none(), overlapped_plan);
}

#[test]
fn conservation_overlapped_with_page_cache() {
    check_conservation_of(1 << 20, FaultProfile::none(), overlapped_plan);
}

#[test]
fn conservation_overlapped_under_flaky_faults() {
    check_conservation_of(0, FaultProfile::parse("flaky").unwrap(), overlapped_plan);
}

#[test]
fn amplification_reflects_sector_padding() {
    // 3332 needed of every 4096-byte sector: amplification = 4096/3332.
    let plans: Vec<QueryPlan> = (0..4).map(tagged_plan).collect();
    let m = Executor::new(config(0, FaultProfile::none())).run(&plans);
    let expect = 4096.0 / 3332.0;
    // One untagged (needed == len) read per 6 tagged ones pulls the mean
    // below the pure-padding ratio but above 1.
    assert!(m.read_amplification() > 1.05 && m.read_amplification() < expect + 1e-9);
    assert!(m.hot_page_skew > 0.0, "a finite working set has hot pages");
}
