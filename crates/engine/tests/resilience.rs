//! Engine resilience under injected SSD faults: retry exhaustion,
//! hedged-read accounting, deadline behavior, degraded-result honesty,
//! and byte-level determinism of faulted runs.

use sann_engine::{
    Executor, FaultConfig, FaultProfile, QueryPlan, RetryPolicy, RunConfig, Segment,
};
use sann_index::IoReq;

fn storage_plan() -> QueryPlan {
    QueryPlan::new(vec![
        Segment::cpu(20.0),
        Segment::io(vec![IoReq::new(0, 4096), IoReq::new(8192, 4096)]),
        Segment::cpu(5.0),
        Segment::io(vec![IoReq::new(1 << 20, 4096)]),
        Segment::cpu(10.0),
    ])
}

fn base_config(faults: FaultConfig) -> RunConfig {
    RunConfig {
        cores: 4,
        concurrency: 8,
        duration_us: 0.2e6,
        faults,
        ..RunConfig::default()
    }
}

/// A profile where every read attempt fails: retry exhaustion on every
/// planned read, yet the run completes and degrades honestly.
fn always_failing() -> FaultProfile {
    FaultProfile {
        read_error_prob: 1.0,
        ..FaultProfile::flaky()
    }
}

#[test]
fn retry_exhaustion_yields_partial_results_not_panics() {
    let faults = FaultConfig {
        profile: always_failing(),
        retry: RetryPolicy {
            max_retries: 2,
            backoff_us: 20.0,
            backoff_mult: 2.0,
        },
        ..FaultConfig::default()
    };
    let m = Executor::new(base_config(faults)).run(&[storage_plan()]);
    let f = &m.fault;
    assert!(m.completed > 0, "queries must still complete");
    assert!(f.injected_errors > 0);
    assert!(f.retry_exhausted > 0, "every read exhausts its retries");
    assert_eq!(
        f.ios_completed, 0,
        "no read can succeed at error probability 1"
    );
    assert_eq!(f.ios_planned, f.ios_abandoned);
    // Every query that finished is degraded; `degraded_queries` also
    // counts queries draining after the measurement window closed.
    assert!(
        f.degraded_queries >= m.completed,
        "every completed query is degraded: {} < {}",
        f.degraded_queries,
        m.completed
    );
    assert_eq!(f.served_fraction(), 0.0);
    assert_eq!(f.degraded_recall(1.0), 0.0);
    // Each abandoned read burned 1 primary + max_retries attempts.
    assert_eq!(f.retries, f.ios_abandoned * 2);
}

#[test]
fn hedged_read_cancels_the_loser_exactly_once() {
    // No errors: every hedge produces a two-way race whose loser must be
    // cancelled exactly once — so cancellations equal hedges issued.
    let profile = FaultProfile {
        read_error_prob: 0.0,
        spike_prob: 0.5,
        spike_min_us: 500.0,
        spike_max_us: 3_000.0,
        ..FaultProfile::none()
    };
    let faults = FaultConfig {
        profile,
        hedge_after_us: 100.0,
        ..FaultConfig::default()
    };
    let m = Executor::new(base_config(faults)).run(&[storage_plan()]);
    let f = &m.fault;
    assert!(f.hedges_issued > 0, "spiky profile must trigger hedging");
    assert_eq!(
        f.hedges_cancelled, f.hedges_issued,
        "exactly one loser per hedge race"
    );
    assert_eq!(f.ios_planned, f.ios_completed, "error-free run serves all");
    assert_eq!(f.degraded_queries, 0);
    assert_eq!(f.served_fraction(), 1.0);
}

#[test]
fn deadline_monotonicity_under_flaky() {
    // A longer per-query IO deadline can only allow more reads to be
    // served: served_fraction is non-decreasing along the ladder, and the
    // unlimited run serves everything the retry budget allows.
    let ladder = [200.0, 1_000.0, 5_000.0, 0.0];
    let mut last_served = -1.0f64;
    for &deadline_us in &ladder {
        let faults = FaultConfig {
            profile: FaultProfile::flaky(),
            io_deadline_us: deadline_us,
            ..FaultConfig::default()
        };
        let m = Executor::new(base_config(faults)).run(&[storage_plan()]);
        let f = &m.fault;
        assert_eq!(f.ios_planned, f.ios_completed + f.ios_abandoned);
        let served = f.served_fraction();
        assert!(
            served >= last_served - 0.02,
            "served fraction regressed: {served} after {last_served} at deadline {deadline_us}"
        );
        last_served = served;
        if deadline_us == 0.0 {
            assert_eq!(f.deadline_skips, 0, "no deadline, no deadline skips");
        }
    }
    assert!(
        last_served > 0.9,
        "flaky without deadline serves most reads"
    );
}

#[test]
fn fault_conservation_holds_across_profiles() {
    for profile in [
        FaultProfile::aging(),
        FaultProfile::gc_heavy(),
        FaultProfile::flaky(),
    ] {
        let faults = FaultConfig {
            profile,
            hedge_after_us: 300.0,
            io_deadline_us: 3_000.0,
            ..FaultConfig::default()
        };
        let m = Executor::new(base_config(faults)).run(&[storage_plan()]);
        let f = &m.fault;
        assert_eq!(
            f.ios_planned,
            f.ios_completed + f.ios_abandoned,
            "profile {} leaked reads",
            profile.name
        );
        assert!(f.ios_planned > 0);
    }
}

/// A pipelined variant of [`storage_plan`]: the second beam flies under
/// overlapped CPU work, as `+pipe` strategies compile.
fn pipelined_plan() -> QueryPlan {
    QueryPlan::new(vec![
        Segment::cpu(20.0),
        Segment::io(vec![IoReq::new(0, 4096), IoReq::new(8192, 4096)]),
        Segment::overlapped(15.0, 2, vec![IoReq::new(1 << 20, 4096)]),
        Segment::cpu(10.0),
    ])
}

#[test]
fn overlapped_fault_conservation_holds_across_profiles() {
    for profile in [
        FaultProfile::aging(),
        FaultProfile::gc_heavy(),
        FaultProfile::flaky(),
    ] {
        let faults = FaultConfig {
            profile,
            hedge_after_us: 300.0,
            io_deadline_us: 3_000.0,
            ..FaultConfig::default()
        };
        let m = Executor::new(base_config(faults)).run(&[pipelined_plan()]);
        let f = &m.fault;
        assert_eq!(
            f.ios_planned,
            f.ios_completed + f.ios_abandoned,
            "profile {} leaked overlapped reads",
            profile.name
        );
        assert!(f.ios_planned > 0);
    }
}

#[test]
fn overlapped_deadline_skips_reads_but_queries_complete() {
    // A deadline shorter than any device access: the overlapped segment's
    // reads are abandoned, its CPU still runs, queries still finish, and
    // the read accounting stays conservative.
    let faults = FaultConfig {
        profile: FaultProfile::flaky(),
        io_deadline_us: 1.0,
        ..FaultConfig::default()
    };
    let m = Executor::new(base_config(faults)).run(&[pipelined_plan()]);
    let f = &m.fault;
    assert!(m.completed > 0);
    assert!(f.deadline_skips > 0, "a 1 µs deadline must skip reads");
    assert_eq!(f.ios_planned, f.ios_completed + f.ios_abandoned);
    assert!(f.degraded_queries > 0);
}

#[test]
fn overlapped_faulted_runs_are_byte_deterministic() {
    let faults = FaultConfig {
        profile: FaultProfile::flaky(),
        hedge_after_us: 200.0,
        io_deadline_us: 2_000.0,
        ..FaultConfig::default()
    };
    let config = base_config(faults);
    let a = Executor::new(config).run(&[pipelined_plan()]);
    let b = Executor::new(config).run(&[pipelined_plan()]);
    assert_eq!(a.canonical_bytes(), b.canonical_bytes());
}

#[test]
fn faulted_runs_are_byte_deterministic() {
    let faults = FaultConfig {
        profile: FaultProfile::flaky(),
        hedge_after_us: 200.0,
        io_deadline_us: 2_000.0,
        ..FaultConfig::default()
    };
    let config = base_config(faults);
    let a = Executor::new(config).run(&[storage_plan()]);
    let b = Executor::new(config).run(&[storage_plan()]);
    assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    // A different fault seed gives a different (but still valid) run.
    let reseeded = RunConfig {
        faults: FaultConfig { seed: 1, ..faults },
        ..config
    };
    let c = Executor::new(reseeded).run(&[storage_plan()]);
    assert_ne!(a.canonical_bytes(), c.canonical_bytes());
}

#[test]
fn none_profile_is_byte_identical_regardless_of_policy() {
    // Aggressive retry/hedge/deadline settings are inert without an
    // active profile: the executor keeps its fault-free fast path.
    let config = base_config(FaultConfig::default());
    let aggressive = RunConfig {
        faults: FaultConfig {
            profile: FaultProfile::none(),
            seed: 99,
            retry: RetryPolicy {
                max_retries: 10,
                backoff_us: 1.0,
                backoff_mult: 1.0,
            },
            io_deadline_us: 100.0,
            hedge_after_us: 10.0,
        },
        ..config
    };
    let plain = Executor::new(config).run(&[storage_plan()]);
    let inert = Executor::new(aggressive).run(&[storage_plan()]);
    assert_eq!(plain.canonical_bytes(), inert.canonical_bytes());
    assert!(plain.fault.is_clean());
}

#[test]
fn faulted_trace_validates_and_tags_attempts() {
    use sann_obs::{IoOutcome, TraceLevel};
    let faults = FaultConfig {
        profile: always_failing(),
        retry: RetryPolicy {
            max_retries: 1,
            backoff_us: 20.0,
            backoff_mult: 2.0,
        },
        hedge_after_us: 100.0,
        ..FaultConfig::default()
    };
    let run = Executor::new(base_config(faults)).run_traced(&[storage_plan()], TraceLevel::Io);
    run.trace.validate().expect("faulted trace must still nest");
    assert!(
        run.trace.io.iter().any(|io| io.outcome == IoOutcome::Error),
        "error attempts must be tagged in the trace"
    );
    assert!(
        run.trace.io.iter().any(|io| io.attempt > 0),
        "retry attempts must carry their ordinal"
    );
    assert_eq!(
        run.registry.counter("engine.retry_exhausted"),
        run.metrics.fault.retry_exhausted,
        "registry counters mirror FaultStats"
    );
}

#[test]
fn gc_heavy_inflates_tail_latency() {
    let clean = base_config(FaultConfig::default());
    let gc = base_config(FaultConfig {
        profile: FaultProfile::gc_heavy(),
        ..FaultConfig::default()
    });
    let m_clean = Executor::new(clean).run(&[storage_plan()]);
    let m_gc = Executor::new(gc).run(&[storage_plan()]);
    assert!(
        m_gc.p99_latency_us > m_clean.p99_latency_us,
        "GC pauses must show up in the tail: {} vs {}",
        m_gc.p99_latency_us,
        m_clean.p99_latency_us
    );
    assert!(m_gc.fault.gc_stall_ns > 0);
    assert!(m_gc.qps < m_clean.qps);
}

#[test]
fn deadline_zero_budget_degrades_but_completes() {
    // A deadline shorter than any device access: every read beam either
    // resolves before the deadline passes or is skipped outright; queries
    // still finish and the accounting stays conservative.
    let faults = FaultConfig {
        profile: FaultProfile::flaky(),
        io_deadline_us: 1.0,
        ..FaultConfig::default()
    };
    let m = Executor::new(base_config(faults)).run(&[storage_plan()]);
    let f = &m.fault;
    assert!(m.completed > 0);
    assert!(f.deadline_skips > 0, "a 1 µs deadline must skip reads");
    assert_eq!(f.ios_planned, f.ios_completed + f.ios_abandoned);
    assert!(f.served_fraction() < 0.5);
    assert!(f.degraded_queries > 0);
}
