//! The discrete-event executor.

use crate::metrics::RunMetrics;
use crate::plan::{QueryPlan, Segment};
use sann_ssdsim::{DeviceSim, IoTracer, PageCache, SsdModel};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const NS_PER_US: f64 = 1_000.0;

/// Configuration of one simulated measurement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// CPU cores of the simulated host (paper testbed: 20).
    pub cores: usize,
    /// Closed-loop client threads, each with one in-flight query.
    pub concurrency: usize,
    /// Simulated run duration, µs (paper: 30 s).
    pub duration_us: f64,
    /// Database-internal admission cap on concurrently executing queries
    /// (0 = unlimited). Models scheduler limits such as Milvus'
    /// `maxReadConcurrentRatio`.
    pub max_concurrent: usize,
    /// The SSD model backing storage-based plans.
    pub ssd: SsdModel,
    /// OS page-cache capacity in bytes (0 = direct I/O, the DiskANN mode).
    pub cache_bytes: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cores: 20,
            concurrency: 1,
            duration_us: 30e6,
            max_concurrent: 0,
            ssd: SsdModel::samsung_990_pro(),
            cache_bytes: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A CPU subtask of the query finished (frees its core).
    Subtask { query: usize },
    /// One request of the query's current beam completed.
    Io { query: usize },
    /// A core-free delay elapsed.
    Delay { query: usize },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Running CPU subtasks of the current segment.
    Cpu,
    /// Running the submission subtask of an I/O segment.
    IoSubmit,
    /// Blocked waiting for the current beam.
    IoWait,
}

#[derive(Debug)]
struct ActiveQuery {
    plan: usize,
    seg: usize,
    phase: Phase,
    started_ns: u64,
    remaining_subtasks: usize,
    pending_ios: usize,
    client: usize,
    live: bool,
}

/// Runs query plans to produce [`RunMetrics`].
///
/// The executor is deterministic: identical inputs produce identical
/// metrics. See the crate docs for the execution semantics.
#[derive(Debug)]
pub struct Executor {
    config: RunConfig,
}

impl Executor {
    /// Creates an executor.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `concurrency` is zero, or `duration_us` is not
    /// positive.
    pub fn new(config: RunConfig) -> Executor {
        assert!(config.cores > 0, "cores must be positive");
        assert!(config.concurrency > 0, "concurrency must be positive");
        assert!(config.duration_us > 0.0, "duration must be positive");
        Executor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Replays `plans` under closed-loop load. Client `i`'s `j`-th query
    /// uses plan `(i + j * concurrency) % plans.len()`, so all plans are
    /// exercised round-robin as in VectorDBBench's repeating query stream.
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty.
    pub fn run(&self, plans: &[QueryPlan]) -> RunMetrics {
        assert!(!plans.is_empty(), "plans must be non-empty");
        Simulation::new(&self.config, plans).run()
    }
}

struct Simulation<'a> {
    config: &'a RunConfig,
    plans: &'a [QueryPlan],
    duration_ns: u64,
    events: BinaryHeap<Reverse<(u64, u64, usize)>>,
    event_payload: Vec<EventKind>,
    seq: u64,
    free_cores: usize,
    ready: VecDeque<(usize, u64)>,
    queries: Vec<ActiveQuery>,
    free_slots: Vec<usize>,
    active_count: usize,
    admission: VecDeque<usize>,
    issued_per_client: Vec<u64>,
    issue_counter: u64,
    device: DeviceSim,
    cache: PageCache,
    tracer: IoTracer,
    busy_ns: u64,
    latencies_us: Vec<f64>,
    completed_in_window: u64,
    query_read_bytes: u64,
    query_io_count: u64,
    clock_ns: u64,
}

impl<'a> Simulation<'a> {
    fn new(config: &'a RunConfig, plans: &'a [QueryPlan]) -> Simulation<'a> {
        Simulation {
            config,
            plans,
            duration_ns: (config.duration_us * NS_PER_US) as u64,
            events: BinaryHeap::new(),
            event_payload: Vec::new(),
            seq: 0,
            free_cores: config.cores,
            ready: VecDeque::new(),
            queries: Vec::new(),
            free_slots: Vec::new(),
            active_count: 0,
            admission: VecDeque::new(),
            issued_per_client: vec![0; config.concurrency],
            issue_counter: 0,
            device: DeviceSim::new(config.ssd),
            cache: PageCache::new(config.cache_bytes),
            tracer: IoTracer::new(),
            busy_ns: 0,
            latencies_us: Vec::new(),
            completed_in_window: 0,
            query_read_bytes: 0,
            query_io_count: 0,
            clock_ns: 0,
        }
    }

    fn push_event(&mut self, at_ns: u64, kind: EventKind) {
        let idx = self.event_payload.len();
        self.event_payload.push(kind);
        self.events.push(Reverse((at_ns, self.seq, idx)));
        self.seq += 1;
    }

    fn run(mut self) -> RunMetrics {
        for client in 0..self.config.concurrency {
            self.issue_query(client, 0);
        }
        self.dispatch(0);

        while let Some(Reverse((t, _, idx))) = self.events.pop() {
            assert!(
                t >= self.clock_ns,
                "event queue regressed: popped t={t} ns behind clock {} ns",
                self.clock_ns
            );
            self.clock_ns = t;
            match self.event_payload[idx] {
                EventKind::Subtask { query } => {
                    self.free_cores += 1;
                    self.on_subtask_done(query, t);
                }
                EventKind::Io { query } => {
                    self.on_io_done(query, t);
                }
                EventKind::Delay { query } => {
                    self.queries[query].seg += 1;
                    self.advance(query, t);
                }
            }
            self.dispatch(t);
        }

        // Conservation audit: every byte the block-layer tracer logged must
        // have been scheduled on the device exactly once, and vice versa —
        // cache hits bypass both, misses go through both. A mismatch means
        // a code path recorded traffic without simulating it (or simulated
        // it untraced), which would corrupt every bandwidth figure.
        let stats = self.tracer.stats();
        assert_eq!(
            stats.read_bytes + stats.write_bytes,
            self.device.bytes(),
            "I/O conservation violated: tracer saw {} read + {} written bytes \
             but the device transferred {}",
            stats.read_bytes,
            stats.write_bytes,
            self.device.bytes()
        );
        assert_eq!(
            stats.reads + stats.writes,
            self.device.completed(),
            "I/O conservation violated: tracer saw {} requests but the device \
             completed {}",
            stats.reads + stats.writes,
            self.device.completed()
        );

        let duration_s = self.config.duration_us / 1e6;
        RunMetrics::assemble(
            self.completed_in_window as f64 / duration_s,
            self.latencies_us,
            self.busy_ns as f64 / (self.duration_ns as f64 * self.config.cores as f64),
            self.tracer,
            self.config.duration_us,
            self.completed_in_window,
            self.query_read_bytes,
            self.query_io_count,
        )
    }

    /// A closed-loop client issues its next query at time `t` (no new issues
    /// after the measurement window closes).
    fn issue_query(&mut self, client: usize, t: u64) {
        if t >= self.duration_ns {
            return;
        }
        self.issued_per_client[client] += 1;
        if self.config.max_concurrent > 0 && self.active_count >= self.config.max_concurrent {
            self.admission.push_back(client);
            return;
        }
        self.activate(client, t);
    }

    fn activate(&mut self, client: usize, t: u64) {
        let plan = (self.issue_counter as usize) % self.plans.len();
        self.issue_counter += 1;
        let q = ActiveQuery {
            plan,
            seg: 0,
            phase: Phase::Cpu,
            started_ns: t,
            remaining_subtasks: 0,
            pending_ios: 0,
            client,
            live: true,
        };
        let slot = if let Some(slot) = self.free_slots.pop() {
            self.queries[slot] = q;
            slot
        } else {
            self.queries.push(q);
            self.queries.len() - 1
        };
        self.active_count += 1;
        self.advance(slot, t);
    }

    /// Moves the query to its next segment (current one already complete).
    fn advance(&mut self, query: usize, t: u64) {
        loop {
            let (plan_idx, seg_idx) = {
                let q = &self.queries[query];
                (q.plan, q.seg)
            };
            match self.plans[plan_idx].segments().get(seg_idx) {
                None => {
                    self.complete(query, t);
                    return;
                }
                Some(Segment::Cpu { total_us, fanout }) => {
                    if *total_us <= 0.0 {
                        self.queries[query].seg += 1;
                        continue;
                    }
                    let fanout = (*fanout).max(1);
                    let sub_ns = ((total_us / fanout as f64) * NS_PER_US).ceil() as u64;
                    {
                        let q = &mut self.queries[query];
                        q.phase = Phase::Cpu;
                        q.remaining_subtasks = fanout;
                    }
                    for _ in 0..fanout {
                        self.ready.push_back((query, sub_ns));
                    }
                    return;
                }
                Some(Segment::Delay { us }) => {
                    if *us <= 0.0 {
                        self.queries[query].seg += 1;
                        continue;
                    }
                    let at = t + (us * NS_PER_US) as u64;
                    self.push_event(at, EventKind::Delay { query });
                    return;
                }
                Some(Segment::Io { reqs }) | Some(Segment::Write { reqs }) => {
                    if reqs.is_empty() {
                        self.queries[query].seg += 1;
                        continue;
                    }
                    // Submission runs on a core first; the requests are
                    // issued when it completes.
                    let submit_ns =
                        (reqs.len() as f64 * self.config.ssd.submit_cpu_us * NS_PER_US) as u64;
                    {
                        let q = &mut self.queries[query];
                        q.phase = Phase::IoSubmit;
                        q.remaining_subtasks = 1;
                    }
                    self.ready.push_back((query, submit_ns.max(1)));
                    return;
                }
            }
        }
    }

    fn on_subtask_done(&mut self, query: usize, t: u64) {
        let phase = self.queries[query].phase;
        match phase {
            Phase::Cpu => {
                let q = &mut self.queries[query];
                q.remaining_subtasks -= 1;
                if q.remaining_subtasks == 0 {
                    q.seg += 1;
                    self.advance(query, t);
                }
            }
            Phase::IoSubmit => {
                // Issue the beam now.
                let (plan_idx, seg_idx) = {
                    let q = &self.queries[query];
                    (q.plan, q.seg)
                };
                let (reqs, is_write) = match &self.plans[plan_idx].segments()[seg_idx] {
                    Segment::Io { reqs } => (reqs.clone(), false),
                    Segment::Write { reqs } => (reqs.clone(), true),
                    _ => unreachable!("IoSubmit phase on non-io segment"),
                };
                let mut pending = 0usize;
                for r in &reqs {
                    let t_us = t as f64 / NS_PER_US;
                    if is_write {
                        // Writes bypass the page cache (write-through /
                        // direct I/O semantics).
                        self.tracer.record_write(t_us, r.offset, r.len);
                        let done_us = self.device.schedule_write(t_us, r.len);
                        self.push_event((done_us * NS_PER_US) as u64, EventKind::Io { query });
                        pending += 1;
                        continue;
                    }
                    self.query_io_count += 1;
                    self.query_read_bytes += r.len as u64;
                    let missed = self.cache.access(r.offset, r.len);
                    if missed == 0 {
                        continue; // page-cache hit: no device traffic
                    }
                    self.tracer.record_read(t_us, r.offset, r.len);
                    let done_us = self.device.schedule(t_us, r.len);
                    self.push_event((done_us * NS_PER_US) as u64, EventKind::Io { query });
                    pending += 1;
                }
                let q = &mut self.queries[query];
                q.phase = Phase::IoWait;
                q.pending_ios = pending;
                if pending == 0 {
                    q.seg += 1;
                    self.advance(query, t);
                }
            }
            Phase::IoWait => unreachable!("subtask completion while waiting on io"),
        }
    }

    fn on_io_done(&mut self, query: usize, t: u64) {
        let q = &mut self.queries[query];
        debug_assert!(q.live && q.phase == Phase::IoWait);
        q.pending_ios -= 1;
        if q.pending_ios == 0 {
            q.seg += 1;
            self.advance(query, t);
        }
    }

    fn complete(&mut self, query: usize, t: u64) {
        let (client, started) = {
            let q = &mut self.queries[query];
            q.live = false;
            (q.client, q.started_ns)
        };
        self.free_slots.push(query);
        self.active_count -= 1;
        self.latencies_us.push((t - started) as f64 / NS_PER_US);
        if t <= self.duration_ns {
            self.completed_in_window += 1;
        }
        // Admit a waiting query before the client re-issues (FIFO fairness).
        if let Some(waiting) = self.admission.pop_front() {
            self.activate(waiting, t);
        }
        self.issue_query(client, t);
    }

    fn dispatch(&mut self, t: u64) {
        while self.free_cores > 0 {
            let Some((query, dur_ns)) = self.ready.pop_front() else {
                return;
            };
            self.free_cores -= 1;
            self.busy_ns += dur_ns;
            self.push_event(t + dur_ns, EventKind::Subtask { query });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_index::IoReq;

    fn cpu_plan(us: f64) -> QueryPlan {
        QueryPlan::new(vec![Segment::cpu(us)])
    }

    #[test]
    fn single_client_cpu_bound_qps() {
        let config = RunConfig {
            cores: 4,
            concurrency: 1,
            duration_us: 1e6,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[cpu_plan(100.0)]);
        assert!((m.qps - 10_000.0).abs() < 200.0, "qps {}", m.qps);
        assert!((m.p99_latency_us - 100.0).abs() < 2.0);
        // One core busy out of four.
        assert!(
            (m.cpu_utilization - 0.25).abs() < 0.02,
            "cpu {}",
            m.cpu_utilization
        );
    }

    #[test]
    fn throughput_scales_until_cores_saturate() {
        let mut last_qps = 0.0;
        for conc in [1usize, 2, 4, 8] {
            let config = RunConfig {
                cores: 4,
                concurrency: conc,
                duration_us: 1e6,
                ..RunConfig::default()
            };
            let m = Executor::new(config).run(&[cpu_plan(100.0)]);
            if conc <= 4 {
                assert!(
                    (m.qps - conc as f64 * 10_000.0).abs() < 500.0,
                    "conc {conc} qps {}",
                    m.qps
                );
            } else {
                // Saturated at 4 cores.
                assert!(
                    (m.qps - 40_000.0).abs() < 1000.0,
                    "conc {conc} qps {}",
                    m.qps
                );
                assert!(m.p99_latency_us > 150.0, "queueing must inflate latency");
            }
            assert!(m.qps >= last_qps - 500.0);
            last_qps = m.qps;
        }
    }

    #[test]
    fn io_plan_latency_includes_device_time() {
        let ssd = SsdModel::samsung_990_pro();
        let plan = QueryPlan::new(vec![
            Segment::cpu(10.0),
            Segment::io(vec![IoReq::new(0, 4096)]),
            Segment::cpu(10.0),
        ]);
        let config = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 1e6,
            ssd,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[plan]);
        let expect = 10.0 + ssd.submit_cpu_us + ssd.idle_latency_us(4096) + 10.0;
        assert!(
            (m.mean_latency_us - expect).abs() < 2.0,
            "latency {} vs {}",
            m.mean_latency_us,
            expect
        );
        assert!(m.read_bytes_per_query > 4000.0);
    }

    #[test]
    fn beam_reads_overlap_on_device() {
        let ssd = SsdModel::samsung_990_pro();
        let beam: Vec<IoReq> = (0..8).map(|i| IoReq::new(i * 4096, 4096)).collect();
        let plan = QueryPlan::new(vec![Segment::io(beam)]);
        let config = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 1e6,
            ssd,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[plan]);
        // 8 parallel reads should take ~1 media latency, not 8.
        assert!(
            m.mean_latency_us < 2.5 * ssd.base_latency_us,
            "beam latency {}",
            m.mean_latency_us
        );
    }

    #[test]
    fn admission_cap_limits_throughput() {
        let uncapped = RunConfig {
            cores: 8,
            concurrency: 8,
            duration_us: 1e6,
            ..RunConfig::default()
        };
        let capped = RunConfig {
            max_concurrent: 2,
            ..uncapped
        };
        let plan = cpu_plan(100.0);
        let m_un = Executor::new(uncapped).run(std::slice::from_ref(&plan));
        let m_cap = Executor::new(capped).run(&[plan]);
        assert!(
            m_cap.qps < m_un.qps / 3.0,
            "cap 2 of 8: {} vs {}",
            m_cap.qps,
            m_un.qps
        );
    }

    #[test]
    fn intra_query_parallelism_cuts_latency() {
        let serial = QueryPlan::new(vec![Segment::cpu(800.0)]);
        let fanned = QueryPlan::new(vec![Segment::cpu_parallel(800.0, 8)]);
        let config = RunConfig {
            cores: 8,
            concurrency: 1,
            duration_us: 1e6,
            ..RunConfig::default()
        };
        let m_serial = Executor::new(config).run(&[serial]);
        let m_fan = Executor::new(config).run(&[fanned]);
        assert!((m_serial.mean_latency_us - 800.0).abs() < 5.0);
        assert!((m_fan.mean_latency_us - 100.0).abs() < 5.0);
        assert!(m_fan.qps > 6.0 * m_serial.qps);
    }

    #[test]
    fn page_cache_absorbs_repeated_reads() {
        let plan = QueryPlan::new(vec![Segment::io(vec![IoReq::new(0, 4096)])]);
        let cold = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 0.2e6,
            cache_bytes: 0,
            ..RunConfig::default()
        };
        let warm = RunConfig {
            cache_bytes: 1 << 20,
            ..cold
        };
        let m_cold = Executor::new(cold).run(std::slice::from_ref(&plan));
        let m_warm = Executor::new(warm).run(&[plan]);
        assert!(
            m_warm.qps > 3.0 * m_cold.qps,
            "{} vs {}",
            m_warm.qps,
            m_cold.qps
        );
        // The warm run hits cache after the first read: almost no device traffic.
        assert!(m_warm.device_read_bytes < m_cold.device_read_bytes / 10);
    }

    #[test]
    fn delay_adds_latency_not_cpu() {
        let plan = QueryPlan::new(vec![Segment::delay(500.0), Segment::cpu(10.0)]);
        let config = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 1e6,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[plan]);
        assert!(
            (m.mean_latency_us - 510.0).abs() < 2.0,
            "latency {}",
            m.mean_latency_us
        );
        assert!(
            m.cpu_utilization < 0.02,
            "delays must not burn CPU: {}",
            m.cpu_utilization
        );
    }

    #[test]
    fn concurrent_writes_inflate_read_latency() {
        let ssd = SsdModel::samsung_990_pro();
        let read_plan = QueryPlan::new(vec![Segment::io(vec![IoReq::new(0, 4096)])]);
        let write_plan = QueryPlan::new(vec![Segment::write(
            (0..16)
                .map(|i| IoReq::new((1 << 30) + i * 4096, 4096))
                .collect(),
        )]);
        let alone = RunConfig {
            cores: 4,
            concurrency: 8,
            duration_us: 0.5e6,
            ssd,
            ..RunConfig::default()
        };
        let m_alone = Executor::new(alone).run(std::slice::from_ref(&read_plan));
        // Same read clients, plus heavy writers sharing the device.
        let mixed = RunConfig {
            concurrency: 72,
            ..alone
        };
        let m_mixed = Executor::new(mixed).run(&[&[read_plan], &vec![write_plan; 8][..]].concat());
        assert!(m_mixed.io_stats.write_bytes > 0, "writers must write");
        assert!(
            m_mixed.p99_latency_us > m_alone.p99_latency_us,
            "read-write interference must inflate tail latency: {} vs {}",
            m_mixed.p99_latency_us,
            m_alone.p99_latency_us
        );
    }

    #[test]
    fn deterministic_runs() {
        let plan = QueryPlan::new(vec![
            Segment::cpu(30.0),
            Segment::io(vec![IoReq::new(0, 4096), IoReq::new(8192, 4096)]),
            Segment::cpu(10.0),
        ]);
        let config = RunConfig {
            cores: 4,
            concurrency: 16,
            duration_us: 0.5e6,
            ..RunConfig::default()
        };
        let a = Executor::new(config).run(std::slice::from_ref(&plan));
        let b = Executor::new(config).run(&[plan]);
        assert_eq!(a.qps, b.qps);
        assert_eq!(a.p99_latency_us, b.p99_latency_us);
        assert_eq!(a.device_read_bytes, b.device_read_bytes);
    }

    #[test]
    fn round_robin_covers_all_plans() {
        let fast = cpu_plan(10.0);
        let slow = cpu_plan(1000.0);
        let config = RunConfig {
            cores: 1,
            concurrency: 1,
            duration_us: 1e6,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[fast, slow]);
        // Mean of alternating 10/1000 µs queries ≈ 505 µs.
        assert!(
            (m.mean_latency_us - 505.0).abs() < 20.0,
            "mean {}",
            m.mean_latency_us
        );
    }

    #[test]
    #[should_panic(expected = "plans must be non-empty")]
    fn empty_plans_panic() {
        let config = RunConfig::default();
        Executor::new(config).run(&[]);
    }
}
