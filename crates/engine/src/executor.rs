//! The discrete-event executor.

use crate::metrics::{FaultStats, RunMetrics};
use crate::plan::{QueryPlan, Segment};
use sann_core::cast;
use sann_index::IoReq;
use sann_obs::{
    IoOutcome, IoProvenance, IoSpan, LogHistogram, Phase as ObsPhase, Registry, SpanId, SpanName,
    Trace, TraceLevel, TraceSink, Tracer,
};
use sann_ssdsim::{
    DeviceSim, FaultInjector, FaultProfile, IoTracer, PageCache, SsdModel, HEDGE_TAG, NO_OWNER,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const NS_PER_US: f64 = 1_000.0;

/// Window width of the queue-depth / utilization timelines, µs (1 s — the
/// same granularity as the Fig. 5 bandwidth timeline).
const TELEMETRY_BUCKET_US: f64 = 1e6;

/// Converts simulated microseconds to integer nanoseconds.
///
/// An `as u64` cast saturates on overflow but silently maps NaN to 0 and
/// truncates negatives, which would corrupt the event clock far from the bug
/// that produced the value — so debug builds assert the input is a finite,
/// non-negative duration. The arithmetic is exactly `(us * NS_PER_US) as
/// u64`, keeping golden traces bit-identical to the open-coded casts this
/// replaces.
pub(crate) fn us_to_ns(us: f64) -> u64 {
    debug_assert!(
        us.is_finite() && us >= 0.0,
        "duration must be a finite non-negative µs value, got {us}"
    );
    (us * NS_PER_US) as u64
}

/// Like [`us_to_ns`] but rounding up — used for per-subtask CPU slices so
/// fanout never rounds a positive amount of work down to zero.
pub(crate) fn us_to_ns_ceil(us: f64) -> u64 {
    debug_assert!(
        us.is_finite() && us >= 0.0,
        "duration must be a finite non-negative µs value, got {us}"
    );
    (us * NS_PER_US).ceil() as u64
}

/// Converts the integer event clock back to simulated microseconds.
///
/// Exactly `t as f64 / NS_PER_US`, named so sim-time conversions are
/// greppable; debug builds assert the clock is still below 2^53 ns (~104
/// simulated days), past which the division starts losing ulps.
pub(crate) fn ns_to_us(t: u64) -> f64 {
    debug_assert!(
        t < (1 << 53),
        "event clock {t} ns exceeds the f64-exact range"
    );
    (t as f64) / NS_PER_US
}

/// Engine-side retry policy for reads that fail with an injected
/// transient error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry, µs.
    pub backoff_us: f64,
    /// Multiplier applied to the backoff for each subsequent retry.
    pub backoff_mult: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_us: 50.0,
            backoff_mult: 2.0,
        }
    }
}

/// Seed of the fault stream when none is supplied (decorrelated from the
/// data/tuning seeds by construction — the injector folds it further).
pub const DEFAULT_FAULT_SEED: u64 = 0x5EED_FA17;

/// Fault-injection plus resilience configuration of one run.
///
/// Under the `none` profile the executor keeps its fault-free fast path —
/// no RNG draws, no extra events — so output is byte-identical to a build
/// without the fault layer, whatever the retry/hedge/deadline settings say.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// The device-misbehavior envelope to inject.
    pub profile: FaultProfile,
    /// Seed of the fault RNG stream.
    pub seed: u64,
    /// Retry-with-backoff policy for failed reads.
    pub retry: RetryPolicy,
    /// Per-query IO deadline, µs (0 = none). Once a query's deadline
    /// passes, unresolved reads are abandoned instead of retried and
    /// still-unissued beams are skipped: the query returns a partial
    /// top-k, accounted in [`FaultStats`].
    pub io_deadline_us: f64,
    /// Hedge a read with a duplicate attempt if it has not resolved after
    /// this many µs (0 = no hedging). The race's loser is cancelled
    /// exactly once, at resolution.
    pub hedge_after_us: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            profile: FaultProfile::none(),
            seed: DEFAULT_FAULT_SEED,
            retry: RetryPolicy::default(),
            io_deadline_us: 0.0,
            hedge_after_us: 0.0,
        }
    }
}

/// Configuration of one simulated measurement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// CPU cores of the simulated host (paper testbed: 20).
    pub cores: usize,
    /// Closed-loop client threads, each with one in-flight query.
    pub concurrency: usize,
    /// Simulated run duration, µs (paper: 30 s).
    pub duration_us: f64,
    /// Database-internal admission cap on concurrently executing queries
    /// (0 = unlimited). Models scheduler limits such as Milvus'
    /// `maxReadConcurrentRatio`.
    pub max_concurrent: usize,
    /// The SSD model backing storage-based plans.
    pub ssd: SsdModel,
    /// OS page-cache capacity in bytes (0 = direct I/O, the DiskANN mode).
    pub cache_bytes: u64,
    /// Fault injection and resilience (default: healthy device).
    pub faults: FaultConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cores: 20,
            concurrency: 1,
            duration_us: 30e6,
            max_concurrent: 0,
            ssd: SsdModel::samsung_990_pro(),
            cache_bytes: 0,
            faults: FaultConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A CPU subtask of the query finished (frees its core).
    Subtask { query: usize },
    /// One request of the query's current beam completed.
    Io { query: usize },
    /// A core-free delay elapsed.
    Delay { query: usize },
    /// Fault mode: one read attempt reached its device completion time.
    /// `uid`/`beam` guard against the slot having been reused or the
    /// query having moved on (stale events are dropped silently).
    FaultIo {
        query: usize,
        uid: u64,
        beam: u32,
        req: u16,
        attempt: u8,
        hedged: bool,
        failed: bool,
        start_ns: u64,
    },
    /// Fault mode: a retry backoff elapsed.
    FaultRetry {
        query: usize,
        uid: u64,
        beam: u32,
        req: u16,
    },
    /// Fault mode: a hedge timer fired.
    FaultHedge {
        query: usize,
        uid: u64,
        beam: u32,
        req: u16,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Running CPU subtasks of the current segment.
    Cpu,
    /// Running the submission subtask of an I/O segment.
    IoSubmit,
    /// Blocked waiting for the current beam.
    IoWait,
    /// Pipelined search: CPU subtasks running while the segment's reads
    /// are still in flight. The segment completes when both drain; if the
    /// CPU finishes first the query falls back to [`Phase::IoWait`] for
    /// the exposed tail.
    Overlap,
}

/// Per-read state of the current beam (fault mode only). A read is
/// *settled* once it is either resolved (data arrived, possibly after
/// retries/hedging) or abandoned (retry budget or deadline exhausted);
/// the beam completes when every read settles.
#[derive(Debug, Clone, Copy, Default)]
struct ReqState {
    offset: u64,
    len: u32,
    /// Payload bytes of the fetch (for read-amplification accounting).
    needed: u32,
    /// What the read fetches, carried so retries/hedges of the same read
    /// keep the tag the planner assigned.
    provenance: IoProvenance,
    /// Attempts started so far (primary + retries + hedges); also the
    /// next attempt's ordinal, which keys the injector's RNG stream.
    attempts: u8,
    /// Non-hedged attempts started (what the retry budget counts).
    tries: u8,
    /// In-flight attempts: (ordinal, hedged, start_ns). At most two — one
    /// primary-or-retry plus one hedge.
    flight: [(u8, bool, u64); 2],
    inflight: u8,
    resolved: bool,
    abandoned: bool,
    /// A retry backoff event is scheduled (nothing in flight meanwhile).
    retry_pending: bool,
}

#[derive(Debug)]
struct ActiveQuery {
    plan: usize,
    seg: usize,
    phase: Phase,
    started_ns: u64,
    remaining_subtasks: usize,
    pending_ios: usize,
    client: usize,
    live: bool,
    /// Globally unique query number (issue order), the trace track id.
    uid: u64,
    /// Root span (NONE below `TraceLevel::Query`).
    span: SpanId,
    /// Currently open phase child span (NONE when spans are off).
    phase_span: SpanId,
    /// Phase the interval since `attr_since_ns` will be billed to.
    attr_phase: ObsPhase,
    /// Start of the current attribution interval.
    attr_since_ns: u64,
    /// Nanoseconds billed to each phase so far.
    phase_ns: [u64; ObsPhase::COUNT],
    /// Fault mode: absolute IO deadline (`u64::MAX` when none).
    deadline_ns: u64,
    /// Fault mode: at least one planned read was abandoned.
    degraded: bool,
    /// Fault mode: read-beam ordinal; guards stale fault events.
    beam_seq: u32,
    /// Fault mode: per-read state of the current beam (empty otherwise).
    reqs_state: Vec<ReqState>,
}

/// Runs query plans to produce [`RunMetrics`].
///
/// The executor is deterministic: identical inputs produce identical
/// metrics. See the crate docs for the execution semantics.
#[derive(Debug)]
pub struct Executor {
    config: RunConfig,
}

impl Executor {
    /// Creates an executor.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `concurrency` is zero, or `duration_us` is not
    /// positive.
    pub fn new(config: RunConfig) -> Executor {
        assert!(config.cores > 0, "cores must be positive");
        assert!(config.concurrency > 0, "concurrency must be positive");
        assert!(config.duration_us > 0.0, "duration must be positive");
        Executor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Replays `plans` under closed-loop load. Client `i`'s `j`-th query
    /// uses plan `(i + j * concurrency) % plans.len()`, so all plans are
    /// exercised round-robin as in VectorDBBench's repeating query stream.
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty.
    pub fn run(&self, plans: &[QueryPlan]) -> RunMetrics {
        self.run_traced(plans, TraceLevel::Off).metrics
    }

    /// Like [`Executor::run`], but records an observability trace at
    /// `level` alongside the metrics. Timestamps in the trace are
    /// simulated nanoseconds, so identical inputs yield byte-identical
    /// exported traces.
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty.
    pub fn run_traced(&self, plans: &[QueryPlan], level: TraceLevel) -> TracedRun {
        assert!(!plans.is_empty(), "plans must be non-empty");
        Simulation::new(&self.config, plans, level).run()
    }
}

/// The result of [`Executor::run_traced`]: the run's metrics, the span
/// trace (feed it to [`sann_obs::export`]), and the counter/histogram
/// registry behind the metrics.
#[derive(Debug)]
pub struct TracedRun {
    /// Aggregate metrics, as from [`Executor::run`].
    pub metrics: RunMetrics,
    /// The recorded span trace (empty below [`TraceLevel::Query`]).
    pub trace: Trace,
    /// Counters, histograms, and exact latency samples for the run.
    pub registry: Registry,
}

struct Simulation<'a> {
    config: &'a RunConfig,
    plans: &'a [QueryPlan],
    duration_ns: u64,
    events: BinaryHeap<Reverse<(u64, u64, usize)>>,
    event_payload: Vec<EventKind>,
    seq: u64,
    free_cores: usize,
    ready: VecDeque<(usize, u64)>,
    queries: Vec<ActiveQuery>,
    free_slots: Vec<usize>,
    active_count: usize,
    /// Queries waiting for admission: (client, enqueue time).
    admission: VecDeque<(usize, u64)>,
    issued_per_client: Vec<u64>,
    issue_counter: u64,
    device: DeviceSim,
    cache: PageCache,
    tracer: IoTracer,
    busy_ns: u64,
    completed_in_window: u64,
    query_read_bytes: u64,
    query_io_count: u64,
    clock_ns: u64,
    /// Observability: per-segment phase labels for each plan (CPU
    /// segments trailing the last I/O segment are the rerank pass —
    /// mirroring `sann_index::QueryTrace::step_phases`).
    seg_phases: Vec<Vec<ObsPhase>>,
    obs: Tracer,
    registry: Registry,
    // Cheap scalar counters, flushed into the registry at the end of the
    // run so the hot loop never touches a map.
    beams: u64,
    beams_cache_absorbed: u64,
    reads_cache_hit: u64,
    /// Per-provenance page-cache hits and bytes (indexed by
    /// [`IoProvenance::index`]); with the tracer's per-tag device stats
    /// these complete the "where did each planned read land" breakdown.
    prov_cache_hits: [u64; IoProvenance::COUNT],
    prov_cache_hit_bytes: [u64; IoProvenance::COUNT],
    reads_device: u64,
    writes_device: u64,
    admission_waits: u64,
    queue_wait_hist: LogHistogram,
    beam_width_hist: LogHistogram,
    /// Fault injection: `Some` iff the configured profile is active. The
    /// `None` case keeps the pre-fault fast path byte-identical.
    injector: Option<FaultInjector>,
    /// Fault/resilience counters (stay all-zero without an injector).
    fstats: FaultStats,
}

impl<'a> Simulation<'a> {
    fn new(config: &'a RunConfig, plans: &'a [QueryPlan], level: TraceLevel) -> Simulation<'a> {
        let seg_phases = plans
            .iter()
            .map(|p| {
                let segs = p.segments();
                // Rerank = CPU after the last *blocking* segment. Overlapped
                // segments are deliberately excluded from the boundary: a
                // trailing prefetch-only overlap must not reclassify the
                // rerank pass it follows (mirroring
                // `sann_index::TraceStep::phase`'s blocking-read rule).
                let last_io = segs
                    .iter()
                    .rposition(|s| matches!(s, Segment::Io { .. } | Segment::Write { .. }));
                segs.iter()
                    .enumerate()
                    .map(|(i, s)| match s {
                        Segment::Cpu { .. } => {
                            if last_io.is_some_and(|r| i > r) {
                                ObsPhase::Rerank
                            } else {
                                ObsPhase::Compute
                            }
                        }
                        Segment::Delay { .. } => ObsPhase::Delay,
                        Segment::Io { .. } | Segment::Write { .. } | Segment::Overlapped { .. } => {
                            ObsPhase::BeamIssue
                        }
                    })
                    .collect()
            })
            .collect();
        Simulation {
            config,
            plans,
            duration_ns: us_to_ns(config.duration_us),
            events: BinaryHeap::new(),
            event_payload: Vec::new(),
            seq: 0,
            free_cores: config.cores,
            ready: VecDeque::new(),
            queries: Vec::new(),
            free_slots: Vec::new(),
            active_count: 0,
            admission: VecDeque::new(),
            issued_per_client: vec![0; config.concurrency],
            issue_counter: 0,
            device: DeviceSim::new(config.ssd),
            cache: PageCache::new(config.cache_bytes),
            tracer: IoTracer::new(),
            busy_ns: 0,
            completed_in_window: 0,
            query_read_bytes: 0,
            query_io_count: 0,
            clock_ns: 0,
            seg_phases,
            obs: Tracer::new(level),
            registry: Registry::new(),
            beams: 0,
            beams_cache_absorbed: 0,
            reads_cache_hit: 0,
            prov_cache_hits: [0; IoProvenance::COUNT],
            prov_cache_hit_bytes: [0; IoProvenance::COUNT],
            reads_device: 0,
            writes_device: 0,
            admission_waits: 0,
            queue_wait_hist: LogHistogram::new(),
            beam_width_hist: LogHistogram::new(),
            injector: if config.faults.profile.active() {
                Some(FaultInjector::new(
                    config.faults.profile,
                    config.faults.seed,
                    config.ssd.base_latency_us,
                ))
            } else {
                None
            },
            fstats: FaultStats::default(),
        }
    }

    fn push_event(&mut self, at_ns: u64, kind: EventKind) {
        let idx = self.event_payload.len();
        self.event_payload.push(kind);
        self.events.push(Reverse((at_ns, self.seq, idx)));
        self.seq += 1;
    }

    fn run(mut self) -> TracedRun {
        for client in 0..self.config.concurrency {
            self.issue_query(client, 0);
        }
        self.dispatch(0);

        while let Some(Reverse((t, _, idx))) = self.events.pop() {
            assert!(
                t >= self.clock_ns,
                "event queue regressed: popped t={t} ns behind clock {} ns",
                self.clock_ns
            );
            self.clock_ns = t;
            match self.event_payload[idx] {
                EventKind::Subtask { query } => {
                    self.free_cores += 1;
                    self.on_subtask_done(query, t);
                }
                EventKind::Io { query } => {
                    self.on_io_done(query, t);
                }
                EventKind::Delay { query } => {
                    self.queries[query].seg += 1;
                    self.advance(query, t);
                }
                EventKind::FaultIo {
                    query,
                    uid,
                    beam,
                    req,
                    attempt,
                    hedged,
                    failed,
                    start_ns,
                } => {
                    self.on_fault_io(
                        query,
                        uid,
                        beam,
                        req as usize,
                        attempt,
                        hedged,
                        failed,
                        start_ns,
                        t,
                    );
                }
                EventKind::FaultRetry {
                    query,
                    uid,
                    beam,
                    req,
                } => self.on_fault_retry(query, uid, beam, req as usize, t),
                EventKind::FaultHedge {
                    query,
                    uid,
                    beam,
                    req,
                } => self.on_fault_hedge(query, uid, beam, req as usize, t),
            }
            self.dispatch(t);
        }

        // Conservation audit: every byte the block-layer tracer logged must
        // have been scheduled on the device exactly once, and vice versa —
        // cache hits bypass both, misses go through both. A mismatch means
        // a code path recorded traffic without simulating it (or simulated
        // it untraced), which would corrupt every bandwidth figure.
        let stats = self.tracer.stats();
        assert_eq!(
            stats.read_bytes + stats.write_bytes,
            self.device.bytes(),
            "I/O conservation violated: tracer saw {} read + {} written bytes \
             but the device transferred {}",
            stats.read_bytes,
            stats.write_bytes,
            self.device.bytes()
        );
        assert_eq!(
            stats.reads + stats.writes,
            self.device.completed(),
            "I/O conservation violated: tracer saw {} requests but the device \
             completed {}",
            stats.reads + stats.writes,
            self.device.completed()
        );

        // Flush the scalar counters into the registry (a single map touch
        // per counter for the whole run, keeping the hot loop allocation-
        // and map-free).
        self.registry
            .counter_add("engine.queries_issued", self.issue_counter);
        self.registry.counter_add("engine.beams", self.beams);
        self.registry
            .counter_add("engine.beams_cache_absorbed", self.beams_cache_absorbed);
        self.registry
            .counter_add("engine.reads_cache_hit", self.reads_cache_hit);
        // Per-provenance cache-hit counters appear only when a non-default
        // tag actually hit — same idiom as the exporters' conditional
        // `prov` attribute, so untagged runs keep their registry (and its
        // exported form) byte-identical to pre-provenance builds.
        const PROV_HIT_COUNTERS: [&str; IoProvenance::COUNT] = [
            "engine.cache_hit.graph-adjacency",
            "engine.cache_hit.vector-block",
            "engine.cache_hit.ivf-posting-list",
            "engine.cache_hit.pq-codes",
            "engine.cache_hit.metadata",
        ];
        for p in IoProvenance::ALL {
            let hits = self.prov_cache_hits[p.index()];
            if p != IoProvenance::default() && hits > 0 {
                self.registry
                    .counter_add(PROV_HIT_COUNTERS[p.index()], hits);
            }
        }
        self.registry
            .counter_add("engine.reads_device", self.reads_device);
        self.registry
            .counter_add("engine.writes_device", self.writes_device);
        self.registry
            .counter_add("engine.admission_waits", self.admission_waits);
        self.registry
            .hist_merge("engine.queue_wait_ns", &self.queue_wait_hist);
        self.registry
            .hist_merge("engine.beam_width", &self.beam_width_hist);

        if self.injector.is_some() {
            // Fault conservation audit: every planned read of every
            // activated query must have been settled exactly once — served
            // (device or cache) or honestly abandoned. A mismatch means a
            // retry/hedge path dropped or double-counted a read, which
            // would corrupt the degraded-recall accounting.
            assert_eq!(
                self.fstats.ios_planned,
                self.fstats.ios_completed + self.fstats.ios_abandoned,
                "fault conservation violated: {} planned reads vs {} completed + {} abandoned",
                self.fstats.ios_planned,
                self.fstats.ios_completed,
                self.fstats.ios_abandoned
            );
            // Flushed only under an active profile so fault-free runs keep
            // their registry (and its exported form) byte-identical to a
            // build without the fault layer.
            let f = &self.fstats;
            self.registry
                .counter_add("engine.faults_injected", f.injected_errors);
            self.registry
                .counter_add("engine.fault_spikes", f.latency_spikes);
            self.registry
                .counter_add("engine.fault_gc_stall_ns", f.gc_stall_ns);
            self.registry.counter_add("engine.retries", f.retries);
            self.registry
                .counter_add("engine.retry_exhausted", f.retry_exhausted);
            self.registry
                .counter_add("engine.hedges_issued", f.hedges_issued);
            self.registry
                .counter_add("engine.hedges_cancelled", f.hedges_cancelled);
            self.registry
                .counter_add("engine.deadline_skips", f.deadline_skips);
            self.registry
                .counter_add("engine.queries_degraded", f.degraded_queries);
            self.registry
                .counter_add("engine.ios_planned", f.ios_planned);
            self.registry
                .counter_add("engine.ios_completed", f.ios_completed);
            self.registry
                .counter_add("engine.ios_abandoned", f.ios_abandoned);
        }

        let duration_s = self.config.duration_us / 1e6;
        // Device telemetry is sampled unconditionally inside the DES (it
        // never depends on the trace level), so traced and untraced runs
        // keep byte-identical metrics.
        let telemetry = crate::metrics::DeviceTelemetry {
            mean_queue_depth: self.device.mean_queue_depth(),
            utilization: self.device.utilization(self.config.duration_us),
            queue_depth_timeline: self
                .device
                .queue_depth_timeline(self.config.duration_us, TELEMETRY_BUCKET_US),
            utilization_timeline: self
                .device
                .utilization_timeline(self.config.duration_us, TELEMETRY_BUCKET_US),
        };
        let metrics = RunMetrics::assemble(
            self.completed_in_window as f64 / duration_s,
            &self.registry,
            self.busy_ns as f64 / (self.duration_ns as f64 * self.config.cores as f64),
            self.tracer,
            self.config.duration_us,
            self.completed_in_window,
            self.query_read_bytes,
            self.query_io_count,
            self.fstats,
            self.prov_cache_hits,
            self.prov_cache_hit_bytes,
            telemetry,
        );
        TracedRun {
            metrics,
            trace: self.obs.finish(self.clock_ns),
            registry: self.registry,
        }
    }

    /// A closed-loop client issues its next query at time `t` (no new issues
    /// after the measurement window closes).
    fn issue_query(&mut self, client: usize, t: u64) {
        if t >= self.duration_ns {
            return;
        }
        self.issued_per_client[client] += 1;
        if self.config.max_concurrent > 0 && self.active_count >= self.config.max_concurrent {
            self.admission.push_back((client, t));
            return;
        }
        self.activate(client, t, t);
    }

    /// Activates a query at time `t` that was issued at `issued_ns`
    /// (earlier than `t` only when it sat in the admission queue). The
    /// wait is billed to the queue-wait phase, which the latency metric
    /// excludes: reported latency starts at activation.
    fn activate(&mut self, client: usize, t: u64, issued_ns: u64) {
        let plan = (self.issue_counter as usize) % self.plans.len();
        let uid = self.issue_counter;
        self.issue_counter += 1;
        let wait_ns = t - issued_ns;
        if wait_ns > 0 {
            self.admission_waits += 1;
            self.queue_wait_hist.record(wait_ns);
        }
        // The root span opens at issue time so the queue wait nests
        // inside it; every other phase lives in [activation, completion].
        let span = self
            .obs
            .begin_span(SpanId::NONE, uid, SpanName::Query { plan }, issued_ns);
        if wait_ns > 0 && span.is_some() {
            let w = self
                .obs
                .begin_span(span, uid, SpanName::Phase(ObsPhase::QueueWait), issued_ns);
            self.obs.end_span(w, t);
        }
        let mut phase_ns = [0u64; ObsPhase::COUNT];
        phase_ns[ObsPhase::QueueWait.index()] = wait_ns;
        let deadline_ns = if self.injector.is_some() && self.config.faults.io_deadline_us > 0.0 {
            t.saturating_add(us_to_ns(self.config.faults.io_deadline_us))
        } else {
            u64::MAX
        };
        if self.injector.is_some() {
            self.fstats.ios_planned += self.plans[plan].io_count();
        }
        let q = ActiveQuery {
            plan,
            seg: 0,
            phase: Phase::Cpu,
            started_ns: t,
            remaining_subtasks: 0,
            pending_ios: 0,
            client,
            live: true,
            uid,
            span,
            phase_span: SpanId::NONE,
            attr_phase: ObsPhase::QueueWait,
            attr_since_ns: t,
            phase_ns,
            deadline_ns,
            degraded: false,
            beam_seq: 0,
            reqs_state: Vec::new(),
        };
        let slot = if let Some(slot) = self.free_slots.pop() {
            self.queries[slot] = q;
            slot
        } else {
            self.queries.push(q);
            self.queries.len() - 1
        };
        self.active_count += 1;
        self.advance(slot, t);
    }

    /// Switches the query's attribution to `phase` at time `t`: the
    /// interval since the last switch is billed to the previous phase,
    /// and (at span level) the open phase span is closed and a new child
    /// opened. Re-setting the current phase merges contiguous intervals.
    fn set_phase(&mut self, query: usize, phase: ObsPhase, t: u64) {
        let q = &mut self.queries[query];
        if q.attr_phase == phase {
            return;
        }
        q.phase_ns[q.attr_phase.index()] += t - q.attr_since_ns;
        q.attr_since_ns = t;
        q.attr_phase = phase;
        if q.span.is_some() {
            let (span, uid, prev) = (q.span, q.uid, q.phase_span);
            self.obs.end_span(prev, t);
            let new = self.obs.begin_span(span, uid, SpanName::Phase(phase), t);
            self.queries[query].phase_span = new;
        }
    }

    /// Moves the query to its next segment (current one already complete).
    fn advance(&mut self, query: usize, t: u64) {
        loop {
            let (plan_idx, seg_idx) = {
                let q = &self.queries[query];
                (q.plan, q.seg)
            };
            match self.plans[plan_idx].segments().get(seg_idx) {
                None => {
                    self.complete(query, t);
                    return;
                }
                Some(Segment::Cpu { total_us, fanout }) => {
                    if *total_us <= 0.0 {
                        self.queries[query].seg += 1;
                        continue;
                    }
                    let label = self.seg_phases[plan_idx][seg_idx];
                    self.set_phase(query, label, t);
                    let fanout = (*fanout).max(1);
                    let sub_ns = us_to_ns_ceil(total_us / cast::f64_from_usize(fanout));
                    {
                        let q = &mut self.queries[query];
                        q.phase = Phase::Cpu;
                        q.remaining_subtasks = fanout;
                    }
                    for _ in 0..fanout {
                        self.ready.push_back((query, sub_ns));
                    }
                    return;
                }
                Some(Segment::Delay { us }) => {
                    if *us <= 0.0 {
                        self.queries[query].seg += 1;
                        continue;
                    }
                    self.set_phase(query, ObsPhase::Delay, t);
                    let at = t + us_to_ns(*us);
                    self.push_event(at, EventKind::Delay { query });
                    return;
                }
                Some(Segment::Io { reqs }) | Some(Segment::Write { reqs }) => {
                    if reqs.is_empty() {
                        self.queries[query].seg += 1;
                        continue;
                    }
                    if self.injector.is_some()
                        && matches!(self.plans[plan_idx].segments()[seg_idx], Segment::Io { .. })
                        && t >= self.queries[query].deadline_ns
                    {
                        // Past the per-query IO deadline: skip the whole
                        // beam unread and degrade to a partial result.
                        let n = cast::u64_from_usize(reqs.len());
                        self.fstats.deadline_skips += n;
                        self.fstats.ios_abandoned += n;
                        self.queries[query].degraded = true;
                        self.queries[query].seg += 1;
                        continue;
                    }
                    self.set_phase(query, ObsPhase::BeamIssue, t);
                    // Submission runs on a core first; the requests are
                    // issued when it completes.
                    let submit_ns =
                        us_to_ns(cast::f64_from_usize(reqs.len()) * self.config.ssd.submit_cpu_us);
                    {
                        let q = &mut self.queries[query];
                        q.phase = Phase::IoSubmit;
                        q.remaining_subtasks = 1;
                    }
                    self.ready.push_back((query, submit_ns.max(1)));
                    return;
                }
                Some(Segment::Overlapped {
                    total_us,
                    fanout,
                    reqs,
                }) => {
                    if reqs.is_empty() && *total_us <= 0.0 {
                        self.queries[query].seg += 1;
                        continue;
                    }
                    let deadline_skip = self.injector.is_some()
                        && !reqs.is_empty()
                        && t >= self.queries[query].deadline_ns;
                    if deadline_skip {
                        // Past the per-query IO deadline: abandon the reads
                        // (they were speculative or next-hop fetches), but
                        // still run the CPU — the distances it computes are
                        // for data already in memory.
                        let n = cast::u64_from_usize(reqs.len());
                        self.fstats.deadline_skips += n;
                        self.fstats.ios_abandoned += n;
                        self.queries[query].degraded = true;
                    }
                    if reqs.is_empty() || deadline_skip {
                        // Degenerate to a plain CPU segment.
                        if *total_us <= 0.0 {
                            self.queries[query].seg += 1;
                            continue;
                        }
                        self.set_phase(query, ObsPhase::Compute, t);
                        let fanout = (*fanout).max(1);
                        let sub_ns = us_to_ns_ceil(total_us / cast::f64_from_usize(fanout));
                        {
                            let q = &mut self.queries[query];
                            q.phase = Phase::Cpu;
                            q.remaining_subtasks = fanout;
                        }
                        for _ in 0..fanout {
                            self.ready.push_back((query, sub_ns));
                        }
                        return;
                    }
                    self.set_phase(query, ObsPhase::BeamIssue, t);
                    // Same submission model as a blocking beam: the requests
                    // go out once the submission subtask completes, and only
                    // then does the overlapped CPU start.
                    let submit_ns =
                        us_to_ns(cast::f64_from_usize(reqs.len()) * self.config.ssd.submit_cpu_us);
                    {
                        let q = &mut self.queries[query];
                        q.phase = Phase::IoSubmit;
                        q.remaining_subtasks = 1;
                    }
                    self.ready.push_back((query, submit_ns.max(1)));
                    return;
                }
            }
        }
    }

    fn on_subtask_done(&mut self, query: usize, t: u64) {
        let phase = self.queries[query].phase;
        match phase {
            Phase::Cpu => {
                let q = &mut self.queries[query];
                q.remaining_subtasks -= 1;
                if q.remaining_subtasks == 0 {
                    q.seg += 1;
                    self.advance(query, t);
                }
            }
            Phase::IoSubmit => {
                // Issue the beam now.
                let (plan_idx, seg_idx) = {
                    let q = &self.queries[query];
                    (q.plan, q.seg)
                };
                // The per-beam clone releases the borrow on `self.plans` so
                // the issue path can take `&mut self`; a beam is at most
                // `beam_width` requests (≤ 8 in every profile), so the copy
                // is a few dozen bytes, not a per-distance allocation.
                let (reqs, is_write, overlap) = match &self.plans[plan_idx].segments()[seg_idx] {
                    // sann-lint: allow(hot-alloc) -- tiny per-beam copy releases the plans borrow
                    Segment::Io { reqs } => (reqs.clone(), false, None),
                    // sann-lint: allow(hot-alloc) -- tiny per-beam copy releases the plans borrow
                    Segment::Write { reqs } => (reqs.clone(), true, None),
                    Segment::Overlapped {
                        total_us,
                        fanout,
                        reqs,
                        // sann-lint: allow(hot-alloc) -- tiny per-beam copy releases the plans borrow
                    } => (reqs.clone(), false, Some((*total_us, *fanout))),
                    // Phase-machine invariant: advance() sets IoSubmit only
                    // on Io/Write/Overlapped segments with requests, so this
                    // arm cannot be reached.
                    // sann-lint: allow(panic-path) -- phase machine sets IoSubmit only on io-bearing segments
                    _ => unreachable!("IoSubmit phase on non-io segment"),
                };
                self.beams += 1;
                self.beam_width_hist
                    .record(cast::u64_from_usize(reqs.len()));
                let pending = if !is_write && self.injector.is_some() {
                    // Reads under an active fault profile take the
                    // resilient path: per-request retry/hedge/deadline
                    // state machine. Writes stay on the clean path.
                    self.issue_beam_faulted(query, t, &reqs)
                } else {
                    self.issue_clean_beam(query, t, &reqs, is_write)
                };
                if let Some((total_us, fanout)) = overlap {
                    self.begin_overlap_cpu(query, t, total_us, fanout, pending);
                    return;
                }
                // Service time is flash-service when the device is
                // involved; a beam fully absorbed by the page cache is a
                // zero-duration cache-hit phase instead.
                if pending == 0 {
                    self.beams_cache_absorbed += 1;
                    self.set_phase(query, ObsPhase::CacheHit, t);
                    let q = &mut self.queries[query];
                    q.phase = Phase::IoWait;
                    q.pending_ios = 0;
                    q.seg += 1;
                    self.advance(query, t);
                } else {
                    self.set_phase(query, ObsPhase::FlashService, t);
                    let q = &mut self.queries[query];
                    q.phase = Phase::IoWait;
                    q.pending_ios = pending;
                }
            }
            Phase::Overlap => {
                let done = {
                    let q = &mut self.queries[query];
                    q.remaining_subtasks -= 1;
                    q.remaining_subtasks == 0
                };
                if !done {
                    return;
                }
                if self.queries[query].pending_ios == 0 {
                    let q = &mut self.queries[query];
                    q.seg += 1;
                    self.advance(query, t);
                } else {
                    // The overlapped CPU is done but reads are still in
                    // flight: only this exposed tail counts as flash
                    // service — the covered portion was billed to compute.
                    self.queries[query].phase = Phase::IoWait;
                    self.set_phase(query, ObsPhase::FlashService, t);
                }
            }
            // Subtask completions are only scheduled during Cpu/IoSubmit/
            // Overlap phases; the event queue cannot deliver one while
            // IoWait.
            // sann-lint: allow(panic-path) -- subtask events are never scheduled during IoWait
            Phase::IoWait => unreachable!("subtask completion while waiting on io"),
        }
    }

    /// Issues one beam of requests on the clean (fault-free) path: cache
    /// hits are absorbed on the spot, misses are scheduled on the device.
    /// Returns the number of requests left in flight; the caller decides
    /// how the query waits for them.
    fn issue_clean_beam(&mut self, query: usize, t: u64, reqs: &[IoReq], is_write: bool) -> usize {
        let (uid, span) = {
            let q = &self.queries[query];
            (q.uid, q.span)
        };
        // Block-layer events carry the owning query's root span so
        // exported timelines can nest device traffic under queries.
        let owner = span.index().map_or(NO_OWNER, |i| i as u64);
        let record_io = self.obs.level().io();
        let mut pending = 0usize;
        for r in reqs {
            let t_us = ns_to_us(t);
            let done_ns = if is_write {
                // Writes bypass the page cache (write-through /
                // direct I/O semantics).
                self.tracer.record_write_tagged(
                    t_us,
                    r.offset,
                    r.len,
                    r.needed,
                    r.provenance,
                    owner,
                );
                self.writes_device += 1;
                let done_us = self.device.schedule_write(t_us, r.len);
                us_to_ns(done_us)
            } else {
                self.query_io_count += 1;
                self.query_read_bytes += r.len as u64;
                let missed = self.cache.access(r.offset, r.len);
                if missed == 0 {
                    self.reads_cache_hit += 1;
                    // sann-lint: allow(panic-path) -- provenance.index() < COUNT by construction
                    self.prov_cache_hits[r.provenance.index()] += 1;
                    // sann-lint: allow(panic-path) -- provenance.index() < COUNT by construction
                    self.prov_cache_hit_bytes[r.provenance.index()] += u64::from(r.len);
                    continue; // page-cache hit: no device traffic
                }
                self.tracer.record_read_tagged(
                    t_us,
                    r.offset,
                    r.len,
                    r.needed,
                    r.provenance,
                    owner,
                );
                self.reads_device += 1;
                let done_us = self.device.schedule(t_us, r.len);
                us_to_ns(done_us)
            };
            self.push_event(done_ns, EventKind::Io { query });
            if record_io {
                self.obs.io_span(IoSpan {
                    owner: span,
                    query: uid,
                    start_ns: t,
                    end_ns: done_ns,
                    offset: r.offset,
                    len: r.len,
                    write: is_write,
                    provenance: r.provenance,
                    attempt: 0,
                    hedged: false,
                    outcome: IoOutcome::Ok,
                });
            }
            pending += 1;
        }
        pending
    }

    /// Starts the CPU half of an [`Segment::Overlapped`] segment after its
    /// reads were issued (`pending` of them reached the device). The CPU
    /// time is billed to compute — overlap is the whole point — and only a
    /// tail where reads outlive the CPU shows up as flash service.
    fn begin_overlap_cpu(
        &mut self,
        query: usize,
        t: u64,
        total_us: f64,
        fanout: usize,
        pending: usize,
    ) {
        if pending == 0 {
            self.beams_cache_absorbed += 1;
        }
        if total_us <= 0.0 {
            // Nothing to overlap with: behave exactly like a blocking beam.
            if pending == 0 {
                self.set_phase(query, ObsPhase::CacheHit, t);
                let q = &mut self.queries[query];
                q.phase = Phase::IoWait;
                q.pending_ios = 0;
                q.seg += 1;
                self.advance(query, t);
            } else {
                self.set_phase(query, ObsPhase::FlashService, t);
                let q = &mut self.queries[query];
                q.phase = Phase::IoWait;
                q.pending_ios = pending;
            }
            return;
        }
        self.set_phase(query, ObsPhase::Compute, t);
        let fanout = fanout.max(1);
        let sub_ns = us_to_ns_ceil(total_us / cast::f64_from_usize(fanout));
        {
            let q = &mut self.queries[query];
            q.phase = Phase::Overlap;
            q.remaining_subtasks = fanout;
            q.pending_ios = pending;
        }
        for _ in 0..fanout {
            self.ready.push_back((query, sub_ns));
        }
    }

    fn on_io_done(&mut self, query: usize, t: u64) {
        let q = &mut self.queries[query];
        debug_assert!(q.live && matches!(q.phase, Phase::IoWait | Phase::Overlap));
        q.pending_ios -= 1;
        if q.pending_ios == 0 {
            if q.phase == Phase::Overlap && q.remaining_subtasks > 0 {
                // Reads finished under cover of the overlapped CPU; the
                // segment completes when the CPU does.
                return;
            }
            q.seg += 1;
            self.advance(query, t);
        }
    }

    /// Fault-mode issuance of a read beam: each request gets its own
    /// retry/hedge state; the beam completes when every request settles
    /// (resolved or abandoned). Returns the number of requests left in
    /// flight; the caller decides how the query waits for them.
    fn issue_beam_faulted(&mut self, query: usize, t: u64, reqs: &[IoReq]) -> usize {
        let (uid, beam) = {
            let q = &mut self.queries[query];
            q.beam_seq += 1;
            q.reqs_state.clear();
            q.reqs_state.extend(reqs.iter().map(|r| ReqState {
                offset: r.offset,
                len: r.len,
                needed: r.needed,
                provenance: r.provenance,
                ..ReqState::default()
            }));
            (q.uid, q.beam_seq)
        };
        let hedge_ns = us_to_ns(self.config.faults.hedge_after_us.max(0.0));
        let mut pending = 0usize;
        for (i, r) in reqs.iter().enumerate() {
            self.query_io_count += 1;
            self.query_read_bytes += r.len as u64;
            let missed = self.cache.access(r.offset, r.len);
            if missed == 0 {
                // Page-cache hit: served without touching the (faulty)
                // device, so it cannot fail or spike.
                self.reads_cache_hit += 1;
                self.prov_cache_hits[r.provenance.index()] += 1;
                self.prov_cache_hit_bytes[r.provenance.index()] += u64::from(r.len);
                self.fstats.ios_completed += 1;
                self.queries[query].reqs_state[i].resolved = true;
                continue;
            }
            self.start_fault_attempt(query, i, false, t);
            if hedge_ns > 0 {
                self.push_event(
                    t + hedge_ns,
                    EventKind::FaultHedge {
                        query,
                        uid,
                        beam,
                        req: i as u16,
                    },
                );
            }
            pending += 1;
        }
        pending
    }

    /// Starts one device attempt for a fault-mode read: draws the attempt's
    /// fault outcome from its identity-keyed RNG stream, schedules the
    /// (possibly inflated) device service, and registers the attempt as in
    /// flight. Failed attempts still consume device time and block-layer
    /// trace records — the host only learns of the error at completion.
    fn start_fault_attempt(&mut self, query: usize, req_idx: usize, hedged: bool, t: u64) {
        let (uid, span, beam, offset, len, needed, provenance, attempt) = {
            let q = &mut self.queries[query];
            let r = &mut q.reqs_state[req_idx];
            let attempt = r.attempts;
            r.attempts += 1;
            if !hedged {
                r.tries += 1;
            }
            debug_assert!(
                (r.inflight as usize) < r.flight.len(),
                "more than {} attempts in flight",
                r.flight.len()
            );
            r.flight[r.inflight as usize] = (attempt, hedged, t);
            r.inflight += 1;
            (
                q.uid,
                q.span,
                q.beam_seq,
                r.offset,
                r.len,
                r.needed,
                r.provenance,
                attempt,
            )
        };
        let tag = if hedged {
            HEDGE_TAG | attempt as u64
        } else {
            attempt as u64
        };
        let t_us = ns_to_us(t);
        // The dispatcher only routes beams here when an injector is armed;
        // if that ever broke, dropping the attempt (debug builds assert) is
        // safer than panicking in the middle of a sweep.
        let Some(injector) = self.injector.as_ref() else {
            debug_assert!(false, "fault path without injector");
            return;
        };
        let fault = injector.draw(uid, req_idx as u64, tag, t_us);
        if fault.spiked {
            self.fstats.latency_spikes += 1;
        }
        if fault.error {
            self.fstats.injected_errors += 1;
        }
        if !hedged && attempt > 0 {
            self.fstats.retries += 1;
        }
        self.fstats.gc_stall_ns += us_to_ns(fault.gc_stall_us);
        let owner = span.index().map_or(NO_OWNER, |i| i as u64);
        self.tracer
            .record_read_tagged(t_us, offset, len, needed, provenance, owner);
        self.reads_device += 1;
        let done_us = self.device.schedule_faulted(t_us, len, fault.extra_us);
        self.push_event(
            us_to_ns(done_us),
            EventKind::FaultIo {
                query,
                uid,
                beam,
                req: req_idx as u16,
                attempt,
                hedged,
                failed: fault.error,
                start_ns: t,
            },
        );
    }

    /// True when a fault event still refers to the query state it was
    /// scheduled against (same occupant, same read beam, still waiting).
    fn fault_event_is_current(&self, query: usize, uid: u64, beam: u32) -> bool {
        self.queries.get(query).is_some_and(|q| {
            q.live
                && q.uid == uid
                && q.beam_seq == beam
                && matches!(q.phase, Phase::IoWait | Phase::Overlap)
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn on_fault_io(
        &mut self,
        query: usize,
        uid: u64,
        beam: u32,
        req: usize,
        attempt: u8,
        hedged: bool,
        failed: bool,
        start_ns: u64,
        t: u64,
    ) {
        if !self.fault_event_is_current(query, uid, beam) {
            return;
        }
        {
            let r = &self.queries[query].reqs_state[req];
            if r.resolved || r.abandoned {
                // A hedge-race loser arriving after the request settled;
                // its span was already emitted at resolution time.
                return;
            }
        }
        // Remove this attempt from the in-flight set.
        let (offset, len, provenance, inflight_left) = {
            let q = &mut self.queries[query];
            let r = &mut q.reqs_state[req];
            let n = r.inflight as usize;
            // Every completion event corresponds to an attempt this state
            // machine put in flight; an unknown one would mean a duplicated
            // event, and dropping it beats panicking mid-run.
            let Some(pos) = r.flight[..n]
                .iter()
                .position(|&(a, h, _)| a == attempt && h == hedged)
            else {
                debug_assert!(false, "completion for an attempt not in flight");
                return;
            };
            r.flight[pos] = r.flight[n - 1];
            r.inflight -= 1;
            (r.offset, r.len, r.provenance, r.inflight)
        };
        let span = self.queries[query].span;
        if self.obs.level().io() {
            self.obs.io_span(IoSpan {
                owner: span,
                query: uid,
                start_ns,
                end_ns: t,
                offset,
                len,
                write: false,
                provenance,
                attempt,
                hedged,
                outcome: if failed {
                    IoOutcome::Error
                } else {
                    IoOutcome::Ok
                },
            });
        }
        if failed {
            if inflight_left > 0 {
                // A sibling attempt may still succeed; wait for it.
                return;
            }
            self.decide_retry_or_abandon(query, uid, beam, req, t);
        } else {
            self.resolve_fault_req(query, req, t);
        }
    }

    /// Marks a fault-mode read as served. Any sibling attempt still in
    /// flight lost the race and is cancelled exactly once, here: the host
    /// stops waiting now, while the device finishes the wasted work
    /// unobserved (its completion event is dropped as stale).
    fn resolve_fault_req(&mut self, query: usize, req: usize, t: u64) {
        let (span, uid) = {
            let q = &self.queries[query];
            (q.span, q.uid)
        };
        let (losers, n_losers, offset, len, provenance) = {
            let q = &mut self.queries[query];
            let r = &mut q.reqs_state[req];
            r.resolved = true;
            let n = r.inflight as usize;
            let losers = r.flight;
            r.inflight = 0;
            (losers, n, r.offset, r.len, r.provenance)
        };
        for &(a, h, s) in &losers[..n_losers] {
            self.fstats.hedges_cancelled += 1;
            if self.obs.level().io() {
                self.obs.io_span(IoSpan {
                    owner: span,
                    query: uid,
                    start_ns: s,
                    end_ns: t,
                    offset,
                    len,
                    write: false,
                    provenance,
                    attempt: a,
                    hedged: h,
                    outcome: IoOutcome::Cancelled,
                });
            }
        }
        self.fstats.ios_completed += 1;
        self.fault_req_settled(query, t);
    }

    /// A failed read with nothing left in flight: retry if the budget and
    /// the deadline allow, otherwise abandon it.
    fn decide_retry_or_abandon(&mut self, query: usize, uid: u64, beam: u32, req: usize, t: u64) {
        let deadline = self.queries[query].deadline_ns;
        let tries = self.queries[query].reqs_state[req].tries;
        let policy = self.config.faults.retry;
        if t >= deadline {
            self.abandon_fault_req(query, req, t, true);
        } else if (tries as u32) < 1 + policy.max_retries {
            let backoff_us = policy.backoff_us * policy.backoff_mult.powi(tries as i32 - 1);
            self.queries[query].reqs_state[req].retry_pending = true;
            self.push_event(
                t + us_to_ns(backoff_us.max(0.0)).max(1),
                EventKind::FaultRetry {
                    query,
                    uid,
                    beam,
                    req: req as u16,
                },
            );
        } else {
            self.abandon_fault_req(query, req, t, false);
        }
    }

    fn on_fault_retry(&mut self, query: usize, uid: u64, beam: u32, req: usize, t: u64) {
        if !self.fault_event_is_current(query, uid, beam) {
            return;
        }
        {
            let r = &mut self.queries[query].reqs_state[req];
            if r.resolved || r.abandoned || !r.retry_pending {
                return;
            }
            debug_assert_eq!(r.inflight, 0, "retry scheduled with attempts in flight");
            r.retry_pending = false;
        }
        if t >= self.queries[query].deadline_ns {
            self.abandon_fault_req(query, req, t, true);
            return;
        }
        self.start_fault_attempt(query, req, false, t);
    }

    fn on_fault_hedge(&mut self, query: usize, uid: u64, beam: u32, req: usize, t: u64) {
        if !self.fault_event_is_current(query, uid, beam) {
            return;
        }
        {
            let r = &self.queries[query].reqs_state[req];
            // Hedge only a read still waiting on its primary/retry attempt:
            // not already settled, not between retries, not already hedged.
            if r.resolved
                || r.abandoned
                || r.inflight == 0
                || (r.inflight as usize) >= r.flight.len()
            {
                return;
            }
        }
        if t >= self.queries[query].deadline_ns {
            return;
        }
        self.fstats.hedges_issued += 1;
        self.start_fault_attempt(query, req, true, t);
    }

    /// Gives up on a fault-mode read: the query degrades to a partial
    /// top-k and the loss is accounted (deadline vs retry exhaustion).
    fn abandon_fault_req(&mut self, query: usize, req: usize, t: u64, deadline_hit: bool) {
        {
            let q = &mut self.queries[query];
            q.reqs_state[req].abandoned = true;
            q.degraded = true;
        }
        self.fstats.ios_abandoned += 1;
        if deadline_hit {
            self.fstats.deadline_skips += 1;
        } else {
            self.fstats.retry_exhausted += 1;
        }
        self.fault_req_settled(query, t);
    }

    /// One fault-mode read settled (served or abandoned); the beam — and
    /// with it the segment — completes when the last one does.
    fn fault_req_settled(&mut self, query: usize, t: u64) {
        let q = &mut self.queries[query];
        q.pending_ios -= 1;
        if q.pending_ios == 0 {
            if q.phase == Phase::Overlap && q.remaining_subtasks > 0 {
                // Settled under cover of the overlapped CPU; the segment
                // completes when the CPU does.
                return;
            }
            q.seg += 1;
            self.advance(query, t);
        }
    }

    fn complete(&mut self, query: usize, t: u64) {
        let (client, started, span, phase_span, phase_ns, degraded) = {
            let q = &mut self.queries[query];
            q.live = false;
            // Bill the trailing interval to whatever phase was current.
            q.phase_ns[q.attr_phase.index()] += t - q.attr_since_ns;
            q.attr_since_ns = t;
            (
                q.client,
                q.started_ns,
                q.span,
                q.phase_span,
                q.phase_ns,
                q.degraded,
            )
        };
        if degraded {
            self.fstats.degraded_queries += 1;
        }
        self.obs.end_span(phase_span, t);
        self.obs.end_span(span, t);
        let latency_ns = t - started;
        // Phase-attribution audit (the observability analog of the I/O
        // conservation check): the in-latency phases partition
        // [activation, completion], so their sum must equal the reported
        // latency exactly — not just within the ISSUE's 1 µs budget. A
        // mismatch means some interval was double-billed or dropped.
        let attributed: u64 = ObsPhase::ALL
            .iter()
            .filter(|p| p.in_latency())
            .map(|p| phase_ns[p.index()])
            .sum();
        assert_eq!(
            attributed, latency_ns,
            "phase attribution leaked: {attributed} ns across phases vs {latency_ns} ns latency"
        );
        self.registry.record_query(latency_ns, &phase_ns);
        self.free_slots.push(query);
        self.active_count -= 1;
        if t <= self.duration_ns {
            self.completed_in_window += 1;
        }
        // Admit a waiting query before the client re-issues (FIFO fairness).
        if let Some((waiting, issued_ns)) = self.admission.pop_front() {
            self.activate(waiting, t, issued_ns);
        }
        self.issue_query(client, t);
    }

    fn dispatch(&mut self, t: u64) {
        while self.free_cores > 0 {
            let Some((query, dur_ns)) = self.ready.pop_front() else {
                return;
            };
            self.free_cores -= 1;
            self.busy_ns += dur_ns;
            self.push_event(t + dur_ns, EventKind::Subtask { query });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_index::IoReq;

    fn cpu_plan(us: f64) -> QueryPlan {
        QueryPlan::new(vec![Segment::cpu(us)])
    }

    #[test]
    fn us_to_ns_matches_the_open_coded_casts() {
        // Bit-exact with the expressions these helpers replaced, so golden
        // traces and determinism baselines are unchanged.
        for us in [0.0, 0.1, 1.0, 3.7, 12.5, 1e6, 30e6, 1.0 / 3.0] {
            assert_eq!(us_to_ns(us), (us * NS_PER_US) as u64, "us={us}");
            assert_eq!(us_to_ns_ceil(us), (us * NS_PER_US).ceil() as u64, "us={us}");
        }
        assert_eq!(us_to_ns_ceil(0.0001), 1, "ceil keeps sub-ns work nonzero");
        assert_eq!(us_to_ns(0.0001), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "finite non-negative")]
    fn us_to_ns_rejects_nan_in_debug() {
        us_to_ns(f64::NAN);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "finite non-negative")]
    fn us_to_ns_ceil_rejects_negative_in_debug() {
        us_to_ns_ceil(-1.0);
    }

    #[test]
    fn single_client_cpu_bound_qps() {
        let config = RunConfig {
            cores: 4,
            concurrency: 1,
            duration_us: 1e6,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[cpu_plan(100.0)]);
        assert!((m.qps - 10_000.0).abs() < 200.0, "qps {}", m.qps);
        assert!((m.p99_latency_us - 100.0).abs() < 2.0);
        // One core busy out of four.
        assert!(
            (m.cpu_utilization - 0.25).abs() < 0.02,
            "cpu {}",
            m.cpu_utilization
        );
    }

    #[test]
    fn throughput_scales_until_cores_saturate() {
        let mut last_qps = 0.0;
        for conc in [1usize, 2, 4, 8] {
            let config = RunConfig {
                cores: 4,
                concurrency: conc,
                duration_us: 1e6,
                ..RunConfig::default()
            };
            let m = Executor::new(config).run(&[cpu_plan(100.0)]);
            if conc <= 4 {
                assert!(
                    (m.qps - conc as f64 * 10_000.0).abs() < 500.0,
                    "conc {conc} qps {}",
                    m.qps
                );
            } else {
                // Saturated at 4 cores.
                assert!(
                    (m.qps - 40_000.0).abs() < 1000.0,
                    "conc {conc} qps {}",
                    m.qps
                );
                assert!(m.p99_latency_us > 150.0, "queueing must inflate latency");
            }
            assert!(m.qps >= last_qps - 500.0);
            last_qps = m.qps;
        }
    }

    #[test]
    fn io_plan_latency_includes_device_time() {
        let ssd = SsdModel::samsung_990_pro();
        let plan = QueryPlan::new(vec![
            Segment::cpu(10.0),
            Segment::io(vec![IoReq::new(0, 4096)]),
            Segment::cpu(10.0),
        ]);
        let config = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 1e6,
            ssd,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[plan]);
        let expect = 10.0 + ssd.submit_cpu_us + ssd.idle_latency_us(4096) + 10.0;
        assert!(
            (m.mean_latency_us - expect).abs() < 2.0,
            "latency {} vs {}",
            m.mean_latency_us,
            expect
        );
        assert!(m.read_bytes_per_query > 4000.0);
    }

    #[test]
    fn beam_reads_overlap_on_device() {
        let ssd = SsdModel::samsung_990_pro();
        let beam: Vec<IoReq> = (0..8).map(|i| IoReq::new(i * 4096, 4096)).collect();
        let plan = QueryPlan::new(vec![Segment::io(beam)]);
        let config = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 1e6,
            ssd,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[plan]);
        // 8 parallel reads should take ~1 media latency, not 8.
        assert!(
            m.mean_latency_us < 2.5 * ssd.base_latency_us,
            "beam latency {}",
            m.mean_latency_us
        );
    }

    #[test]
    fn admission_cap_limits_throughput() {
        let uncapped = RunConfig {
            cores: 8,
            concurrency: 8,
            duration_us: 1e6,
            ..RunConfig::default()
        };
        let capped = RunConfig {
            max_concurrent: 2,
            ..uncapped
        };
        let plan = cpu_plan(100.0);
        let m_un = Executor::new(uncapped).run(std::slice::from_ref(&plan));
        let m_cap = Executor::new(capped).run(&[plan]);
        assert!(
            m_cap.qps < m_un.qps / 3.0,
            "cap 2 of 8: {} vs {}",
            m_cap.qps,
            m_un.qps
        );
    }

    #[test]
    fn intra_query_parallelism_cuts_latency() {
        let serial = QueryPlan::new(vec![Segment::cpu(800.0)]);
        let fanned = QueryPlan::new(vec![Segment::cpu_parallel(800.0, 8)]);
        let config = RunConfig {
            cores: 8,
            concurrency: 1,
            duration_us: 1e6,
            ..RunConfig::default()
        };
        let m_serial = Executor::new(config).run(&[serial]);
        let m_fan = Executor::new(config).run(&[fanned]);
        assert!((m_serial.mean_latency_us - 800.0).abs() < 5.0);
        assert!((m_fan.mean_latency_us - 100.0).abs() < 5.0);
        assert!(m_fan.qps > 6.0 * m_serial.qps);
    }

    #[test]
    fn page_cache_absorbs_repeated_reads() {
        let plan = QueryPlan::new(vec![Segment::io(vec![IoReq::new(0, 4096)])]);
        let cold = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 0.2e6,
            cache_bytes: 0,
            ..RunConfig::default()
        };
        let warm = RunConfig {
            cache_bytes: 1 << 20,
            ..cold
        };
        let m_cold = Executor::new(cold).run(std::slice::from_ref(&plan));
        let m_warm = Executor::new(warm).run(&[plan]);
        assert!(
            m_warm.qps > 3.0 * m_cold.qps,
            "{} vs {}",
            m_warm.qps,
            m_cold.qps
        );
        // The warm run hits cache after the first read: almost no device traffic.
        assert!(m_warm.device_read_bytes < m_cold.device_read_bytes / 10);
    }

    #[test]
    fn delay_adds_latency_not_cpu() {
        let plan = QueryPlan::new(vec![Segment::delay(500.0), Segment::cpu(10.0)]);
        let config = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 1e6,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[plan]);
        assert!(
            (m.mean_latency_us - 510.0).abs() < 2.0,
            "latency {}",
            m.mean_latency_us
        );
        assert!(
            m.cpu_utilization < 0.02,
            "delays must not burn CPU: {}",
            m.cpu_utilization
        );
    }

    #[test]
    fn concurrent_writes_inflate_read_latency() {
        let ssd = SsdModel::samsung_990_pro();
        let read_plan = QueryPlan::new(vec![Segment::io(vec![IoReq::new(0, 4096)])]);
        let write_plan = QueryPlan::new(vec![Segment::write(
            (0..16)
                .map(|i| IoReq::new((1 << 30) + i * 4096, 4096))
                .collect(),
        )]);
        let alone = RunConfig {
            cores: 4,
            concurrency: 8,
            duration_us: 0.5e6,
            ssd,
            ..RunConfig::default()
        };
        let m_alone = Executor::new(alone).run(std::slice::from_ref(&read_plan));
        // Same read clients, plus heavy writers sharing the device.
        let mixed = RunConfig {
            concurrency: 72,
            ..alone
        };
        let m_mixed = Executor::new(mixed).run(&[&[read_plan], &vec![write_plan; 8][..]].concat());
        assert!(m_mixed.io_stats.write_bytes > 0, "writers must write");
        assert!(
            m_mixed.p99_latency_us > m_alone.p99_latency_us,
            "read-write interference must inflate tail latency: {} vs {}",
            m_mixed.p99_latency_us,
            m_alone.p99_latency_us
        );
    }

    #[test]
    fn deterministic_runs() {
        let plan = QueryPlan::new(vec![
            Segment::cpu(30.0),
            Segment::io(vec![IoReq::new(0, 4096), IoReq::new(8192, 4096)]),
            Segment::cpu(10.0),
        ]);
        let config = RunConfig {
            cores: 4,
            concurrency: 16,
            duration_us: 0.5e6,
            ..RunConfig::default()
        };
        let a = Executor::new(config).run(std::slice::from_ref(&plan));
        let b = Executor::new(config).run(&[plan]);
        assert_eq!(a.qps, b.qps);
        assert_eq!(a.p99_latency_us, b.p99_latency_us);
        assert_eq!(a.device_read_bytes, b.device_read_bytes);
    }

    #[test]
    fn round_robin_covers_all_plans() {
        let fast = cpu_plan(10.0);
        let slow = cpu_plan(1000.0);
        let config = RunConfig {
            cores: 1,
            concurrency: 1,
            duration_us: 1e6,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[fast, slow]);
        // Mean of alternating 10/1000 µs queries ≈ 505 µs.
        assert!(
            (m.mean_latency_us - 505.0).abs() < 20.0,
            "mean {}",
            m.mean_latency_us
        );
    }

    #[test]
    #[should_panic(expected = "plans must be non-empty")]
    fn empty_plans_panic() {
        let config = RunConfig::default();
        Executor::new(config).run(&[]);
    }

    fn mixed_plan() -> QueryPlan {
        QueryPlan::new(vec![
            Segment::cpu(20.0),
            Segment::io(vec![IoReq::new(0, 4096), IoReq::new(8192, 4096)]),
            Segment::cpu(10.0),
        ])
    }

    #[test]
    fn traced_run_produces_valid_nested_spans() {
        let config = RunConfig {
            cores: 2,
            concurrency: 4,
            duration_us: 0.05e6,
            ..RunConfig::default()
        };
        let run = Executor::new(config).run_traced(&[mixed_plan()], sann_obs::TraceLevel::Io);
        run.trace.validate().unwrap();
        assert!(!run.trace.spans.is_empty());
        assert!(!run.trace.io.is_empty(), "direct I/O plan must trace reads");
        // One root span per completed-or-started query; per query the
        // in-latency phase children sum exactly to the root duration
        // minus queue wait.
        let roots: Vec<_> = run
            .trace
            .spans
            .iter()
            .filter(|s| matches!(s.name, SpanName::Query { .. }))
            .collect();
        assert!(!roots.is_empty());
        for root in roots {
            let mut child_ns = 0u64;
            let mut wait_ns = 0u64;
            for s in run.trace.query_spans(root.query) {
                if let SpanName::Phase(p) = s.name {
                    if p.in_latency() {
                        child_ns += s.duration_ns();
                    } else {
                        wait_ns += s.duration_ns();
                    }
                }
            }
            assert_eq!(
                child_ns + wait_ns,
                root.duration_ns(),
                "query {} children must partition the root span",
                root.query
            );
        }
        // Registry counters line up with trace contents.
        assert_eq!(
            run.registry.counter("engine.reads_device")
                + run.registry.counter("engine.writes_device"),
            run.trace.io.len() as u64
        );
        assert!(run.registry.counter("engine.beams") > 0);
    }

    #[test]
    fn traced_run_metrics_match_untraced() {
        let config = RunConfig {
            cores: 2,
            concurrency: 8,
            duration_us: 0.1e6,
            cache_bytes: 1 << 20,
            ..RunConfig::default()
        };
        let plain = Executor::new(config).run(&[mixed_plan()]);
        for level in sann_obs::TraceLevel::ALL {
            let traced = Executor::new(config).run_traced(&[mixed_plan()], level);
            assert_eq!(
                plain.canonical_bytes(),
                traced.metrics.canonical_bytes(),
                "tracing at {level} must not perturb the simulation"
            );
        }
    }

    #[test]
    fn phase_breakdown_accounts_for_every_nanosecond() {
        let config = RunConfig {
            cores: 2,
            concurrency: 4,
            duration_us: 0.1e6,
            max_concurrent: 2,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[mixed_plan()]);
        let b = &m.phase_breakdown;
        assert!(b.queries > 0);
        // The executor asserts per-query exactness; here we check the
        // aggregate additionally matches the reported mean latency.
        let mean_us = b.latency_ns() as f64 / b.queries as f64 / 1000.0;
        assert!(
            (mean_us - m.mean_latency_us).abs() < 1e-6,
            "breakdown mean {mean_us} vs metric {}",
            m.mean_latency_us
        );
        // With an admission cap of 2 and 4 clients, someone must wait.
        assert!(b.phase_ns(sann_obs::Phase::QueueWait) > 0);
        assert!(b.phase_ns(sann_obs::Phase::FlashService) > 0);
        assert!(b.phase_ns(sann_obs::Phase::Rerank) > 0);
    }

    #[test]
    fn overlap_hides_io_under_compute() {
        // Same work, two schedules: blocking read then compute, vs the
        // pipelined segment running them concurrently. The overlap must
        // recover most of the device latency.
        let ssd = SsdModel::samsung_990_pro();
        let read = || vec![IoReq::new(0, 4096)];
        let phased = QueryPlan::new(vec![
            Segment::cpu(10.0),
            Segment::io(read()),
            Segment::cpu(200.0),
        ]);
        let pipelined = QueryPlan::new(vec![
            Segment::cpu(10.0),
            Segment::overlapped(200.0, 1, read()),
        ]);
        let config = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 1e6,
            ssd,
            ..RunConfig::default()
        };
        let m_phased = Executor::new(config).run(&[phased]);
        let m_pipe = Executor::new(config).run(&[pipelined]);
        let lat = ssd.idle_latency_us(4096);
        assert!(
            m_phased.mean_latency_us - m_pipe.mean_latency_us > 0.8 * lat,
            "overlap must hide the read: {} vs {} (device {lat})",
            m_pipe.mean_latency_us,
            m_phased.mean_latency_us
        );
        // The CPU outlives the read, so the whole device time is covered:
        // latency ~ cpu + submit overheads only.
        let expect = 10.0 + ssd.submit_cpu_us + 200.0;
        assert!(
            (m_pipe.mean_latency_us - expect).abs() < 2.0,
            "pipelined latency {} vs {expect}",
            m_pipe.mean_latency_us
        );
        assert_eq!(m_phased.read_bytes_per_query, m_pipe.read_bytes_per_query);
    }

    #[test]
    fn overlap_covered_io_bills_compute_not_flash_service() {
        // CPU far longer than the device: the read finishes under cover,
        // so no flash-service time may be billed for the segment.
        let plan = QueryPlan::new(vec![Segment::overlapped(
            500.0,
            1,
            vec![IoReq::new(0, 4096)],
        )]);
        let config = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 0.2e6,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[plan]);
        let b = &m.phase_breakdown;
        assert_eq!(
            b.phase_ns(ObsPhase::FlashService),
            0,
            "fully covered reads must not bill flash service"
        );
        assert!(b.phase_ns(ObsPhase::Compute) > 0);
        assert!(b.phase_ns(ObsPhase::BeamIssue) > 0, "submission still runs");
    }

    #[test]
    fn overlap_exposed_tail_bills_flash_service() {
        // CPU far shorter than the device: the tail past the CPU is
        // exposed waiting and must show up as flash service.
        let ssd = SsdModel::samsung_990_pro();
        let plan = QueryPlan::new(vec![Segment::overlapped(1.0, 1, vec![IoReq::new(0, 4096)])]);
        let config = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 0.2e6,
            ssd,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[plan]);
        let b = &m.phase_breakdown;
        let flash_us = b.phase_ns(ObsPhase::FlashService) as f64 / 1000.0 / b.queries as f64;
        let expect = ssd.idle_latency_us(4096) - 1.0;
        assert!(
            (flash_us - expect).abs() < 2.0,
            "exposed tail {flash_us} vs device-minus-cpu {expect}"
        );
    }

    #[test]
    fn overlapped_traces_validate_and_match_untraced() {
        let plan = || {
            QueryPlan::new(vec![
                Segment::cpu(20.0),
                Segment::io(vec![IoReq::new(0, 4096)]),
                Segment::overlapped(
                    30.0,
                    2,
                    vec![IoReq::new(8192, 4096), IoReq::new(16384, 4096)],
                ),
                Segment::cpu(10.0),
            ])
        };
        let config = RunConfig {
            cores: 4,
            concurrency: 8,
            duration_us: 0.1e6,
            cache_bytes: 1 << 20,
            ..RunConfig::default()
        };
        let plain = Executor::new(config).run(&[plan()]);
        for level in sann_obs::TraceLevel::ALL {
            let traced = Executor::new(config).run_traced(&[plan()], level);
            traced.trace.validate().unwrap();
            assert_eq!(
                plain.canonical_bytes(),
                traced.metrics.canonical_bytes(),
                "tracing at {level} must not perturb an overlapped run"
            );
        }
        // Deterministic across repeat runs, like every other plan shape.
        let again = Executor::new(config).run(&[plan()]);
        assert_eq!(plain.canonical_bytes(), again.canonical_bytes());
    }

    #[test]
    fn overlap_after_last_blocking_read_keeps_rerank() {
        // A trailing prefetch-only overlapped segment must not reclassify
        // the rerank CPU before it (the engine side of the trace-model
        // rule: rerank = CPU after the last *blocking* read).
        let plan = QueryPlan::new(vec![
            Segment::cpu(20.0),
            Segment::io(vec![IoReq::new(0, 4096)]),
            Segment::cpu(10.0),
            Segment::overlapped(5.0, 1, vec![IoReq::new(8192, 4096)]),
        ]);
        let config = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 0.1e6,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[plan]);
        assert!(
            m.phase_breakdown.phase_ns(ObsPhase::Rerank) > 0,
            "the CPU between the last blocking read and the trailing \
             prefetch is still the rerank pass"
        );
    }

    #[test]
    fn cache_hits_become_zero_duration_phase() {
        let plan = QueryPlan::new(vec![Segment::io(vec![IoReq::new(0, 4096)])]);
        let config = RunConfig {
            cores: 2,
            concurrency: 1,
            duration_us: 0.05e6,
            cache_bytes: 1 << 20,
            ..RunConfig::default()
        };
        let run = Executor::new(config).run_traced(&[plan], sann_obs::TraceLevel::Query);
        run.trace.validate().unwrap();
        let hits = run
            .trace
            .spans
            .iter()
            .filter(|s| matches!(s.name, SpanName::Phase(ObsPhase::CacheHit)))
            .count();
        assert!(hits > 0, "warm cache must produce cache-hit phases");
        assert!(run.registry.counter("engine.beams_cache_absorbed") > 0);
        assert_eq!(
            run.metrics.phase_breakdown.phase_ns(ObsPhase::CacheHit),
            0,
            "cache-hit phases are instantaneous in simulated time"
        );
    }
}
