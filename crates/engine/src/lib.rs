//! Discrete-event execution engine: replays query traces against a core
//! pool and the simulated SSD, reproducing the paper's measurement setup.
//!
//! # Why simulation
//!
//! The paper measures wall-clock behaviour of four databases on a 20-core
//! Xeon with a Samsung 990 Pro. We substitute that testbed with a
//! deterministic discrete-event simulation (see DESIGN.md §1): the *work* of
//! each query is computed by the real index implementations
//! ([`sann_index::QueryTrace`]), and this engine models *how long* that work
//! takes on a machine with `C` cores and the modeled SSD:
//!
//! * compute steps occupy a core for a duration given by the [`CostModel`],
//! * read beams charge per-request submission CPU, then block the query
//!   (not the core) until the slowest request completes on the
//!   [`sann_ssdsim::DeviceSim`],
//! * closed-loop clients (the paper's "query threads") keep exactly one
//!   query in flight each,
//! * an optional admission cap models database-internal scheduler limits,
//! * optional intra-query fan-out models engines (Milvus) that parallelize
//!   one query across cores.
//!
//! Outputs are the paper's metrics: QPS, P99 latency, CPU utilization, and
//! the block-level I/O trace.
//!
//! # Examples
//!
//! ```
//! use sann_engine::{CostModel, Executor, QueryPlan, RunConfig, Segment};
//!
//! // One query = 100 µs of CPU, repeated by 4 closed-loop clients for 1 s.
//! let plan = QueryPlan::new(vec![Segment::cpu(100.0)]);
//! let config = RunConfig { cores: 2, concurrency: 4, duration_us: 1e6, ..RunConfig::default() };
//! let metrics = Executor::new(config).run(&[plan]);
//! // Two cores at 100 µs/query → ~20k queries per second.
//! assert!((metrics.qps - 20_000.0).abs() / 20_000.0 < 0.05);
//! ```

pub mod cost;
pub mod executor;
pub mod ledger;
pub mod metrics;
pub mod plan;

pub use cost::CostModel;
pub use executor::{Executor, FaultConfig, RetryPolicy, RunConfig, TracedRun, DEFAULT_FAULT_SEED};
pub use ledger::{DeviceCostModel, QueryLedger};
pub use metrics::{DeviceTelemetry, FaultStats, RunMetrics};
pub use plan::{PlanBuilder, QueryPlan, Segment};
pub use sann_ssdsim::FaultProfile;
