//! Query plans: timed segment lists compiled from index traces.

use crate::cost::CostModel;
use sann_index::{IoReq, QueryTrace, TraceStep};

/// One schedulable unit of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// CPU work totalling `total_us`, optionally fanned out over `fanout`
    /// parallel subtasks (intra-query parallelism, as in Milvus' segment-
    /// parallel search). The segment completes when every subtask completes.
    Cpu {
        /// Total CPU time across subtasks, µs.
        total_us: f64,
        /// Number of parallel subtasks the work is split into.
        fanout: usize,
    },
    /// A beam of reads issued together; the query blocks until the slowest
    /// completes. Submission CPU is charged by the executor.
    Io {
        /// The requests in the beam.
        reqs: Vec<IoReq>,
    },
    /// Pure latency that occupies no core (network round trip, scheduler
    /// hand-off). Concurrent queries overlap their delays freely.
    Delay {
        /// Delay duration, µs.
        us: f64,
    },
    /// A batch of writes issued together (WAL appends, segment flushes);
    /// completes when the slowest write completes. Writes share the device
    /// with reads, so mixed workloads interfere.
    Write {
        /// The write requests in the batch.
        reqs: Vec<IoReq>,
    },
    /// Reads in flight *while* CPU work runs (software-pipelined beam
    /// search / look-ahead prefetch). The segment completes when both the
    /// slowest request and the last CPU subtask finish; the CPU side bills
    /// to compute, only the exposed I/O tail bills to flash service.
    Overlapped {
        /// Total concurrent CPU time across subtasks, µs.
        total_us: f64,
        /// Number of parallel subtasks the CPU work is split into.
        fanout: usize,
        /// The requests in flight under the CPU work.
        reqs: Vec<IoReq>,
    },
}

impl Segment {
    /// A serial CPU segment.
    pub fn cpu(total_us: f64) -> Segment {
        Segment::Cpu {
            total_us,
            fanout: 1,
        }
    }

    /// A fanned-out CPU segment.
    pub fn cpu_parallel(total_us: f64, fanout: usize) -> Segment {
        Segment::Cpu {
            total_us,
            fanout: fanout.max(1),
        }
    }

    /// An I/O beam segment.
    pub fn io(reqs: Vec<IoReq>) -> Segment {
        Segment::Io { reqs }
    }

    /// A core-free delay segment.
    pub fn delay(us: f64) -> Segment {
        Segment::Delay { us }
    }

    /// A write-batch segment.
    pub fn write(reqs: Vec<IoReq>) -> Segment {
        Segment::Write { reqs }
    }

    /// An overlapped compute-under-I/O segment.
    pub fn overlapped(total_us: f64, fanout: usize, reqs: Vec<IoReq>) -> Segment {
        Segment::Overlapped {
            total_us,
            fanout: fanout.max(1),
            reqs,
        }
    }
}

/// A compiled, replayable query: the ordered segments of one search.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryPlan {
    segments: Vec<Segment>,
}

impl QueryPlan {
    /// Creates a plan from segments.
    pub fn new(segments: Vec<Segment>) -> QueryPlan {
        QueryPlan { segments }
    }

    /// The ordered segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total CPU time in the plan, µs (excluding I/O submission costs).
    pub fn cpu_us(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Cpu { total_us, .. } | Segment::Overlapped { total_us, .. } => *total_us,
                _ => 0.0,
            })
            .sum()
    }

    /// Total bytes read by the plan (blocking and overlapped beams).
    pub fn read_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Io { reqs } | Segment::Overlapped { reqs, .. } => {
                    reqs.iter().map(|r| r.len as u64).sum()
                }
                _ => 0,
            })
            .sum()
    }

    /// Total read requests in the plan (blocking and overlapped beams).
    /// Write batches are excluded here; fault accounting tracks reads.
    pub fn io_count(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Io { reqs } | Segment::Overlapped { reqs, .. } => reqs.len() as u64,
                _ => 0,
            })
            .sum()
    }
}

/// Compiles [`QueryTrace`]s into [`QueryPlan`]s under a [`CostModel`] and an
/// intra-query parallelism policy.
///
/// Three optional modifiers model architecture- and scale-dependent effects
/// (see `sann-vdb`'s profiles and the harness's scale-extrapolation model):
///
/// * [`with_work_multiplier`](PlanBuilder::with_work_multiplier) scales the
///   data-dependent compute (distances/PQ lookups) without touching the
///   fixed per-query overhead;
/// * [`with_io_fanout`](PlanBuilder::with_io_fanout) replicates every read
///   beam (segment-parallel storage engines issue one beam per data
///   segment);
/// * [`with_read_overhead_us`](PlanBuilder::with_read_overhead_us) charges
///   CPU per read beam (I/O path software overhead beyond raw submission).
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    cost: CostModel,
    intra_parallelism: usize,
    work_multiplier: f64,
    io_fanout: usize,
    read_overhead_us: f64,
    latency_floor_us: f64,
}

/// Offset shift between replicated beams, so fanned-out reads land on
/// distinct device regions (distinct segments).
const IO_FANOUT_STRIDE: u64 = 1 << 30;

impl PlanBuilder {
    /// Creates a builder with no intra-query parallelism.
    pub fn new(cost: CostModel) -> PlanBuilder {
        PlanBuilder {
            cost,
            intra_parallelism: 1,
            work_multiplier: 1.0,
            io_fanout: 1,
            read_overhead_us: 0.0,
            latency_floor_us: 0.0,
        }
    }

    /// Fans compute segments out over `fanout` parallel subtasks (1 = serial).
    pub fn with_intra_parallelism(mut self, fanout: usize) -> PlanBuilder {
        self.intra_parallelism = fanout.max(1);
        self
    }

    /// Multiplies data-dependent compute (not the fixed overhead).
    pub fn with_work_multiplier(mut self, factor: f64) -> PlanBuilder {
        self.work_multiplier = factor.max(0.0);
        self
    }

    /// Replicates every read beam `fanout` times onto distinct device
    /// regions (1 = no replication).
    pub fn with_io_fanout(mut self, fanout: usize) -> PlanBuilder {
        self.io_fanout = fanout.max(1);
        self
    }

    /// Adds fixed CPU time before every read beam (the storage engine's
    /// per-hop I/O-path software cost; fanned out like regular compute).
    pub fn with_read_overhead_us(mut self, overhead_us: f64) -> PlanBuilder {
        self.read_overhead_us = overhead_us.max(0.0);
        self
    }

    /// Adds a core-free latency floor to every query (network round trip and
    /// scheduler hand-offs that add latency but burn no measurable CPU).
    pub fn with_latency_floor_us(mut self, floor_us: f64) -> PlanBuilder {
        self.latency_floor_us = floor_us.max(0.0);
        self
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The current beam replication factor.
    pub fn io_fanout(&self) -> usize {
        self.io_fanout
    }

    /// Compiles one trace: per-query overhead, then each step in order.
    /// Consecutive compute/PQ steps merge into one CPU segment.
    pub fn build(&self, trace: &QueryTrace) -> QueryPlan {
        let mut segments: Vec<Segment> = Vec::new();
        if self.latency_floor_us > 0.0 {
            segments.push(Segment::delay(self.latency_floor_us));
        }
        let mut pending_cpu = self.cost.overhead_us();
        for step in &trace.steps {
            match step {
                TraceStep::Compute { count, dim } => {
                    pending_cpu += self.cost.compute_us(*count, *dim) * self.work_multiplier;
                }
                TraceStep::PqLookup { count, m } => {
                    pending_cpu += self.cost.pq_us(*count, *m) * self.work_multiplier;
                }
                TraceStep::Read { reqs } => {
                    pending_cpu += self.read_overhead_us;
                    if pending_cpu > 0.0 {
                        segments.push(Segment::cpu_parallel(pending_cpu, self.intra_parallelism));
                        pending_cpu = 0.0;
                    }
                    segments.push(Segment::io(self.fan_out(reqs)));
                }
                TraceStep::Overlapped { reqs, cpu } => {
                    // The overlapped reads are a beam like any other
                    // (submission and per-beam software cost apply); the
                    // step's own CPU runs concurrently inside the segment.
                    pending_cpu += self.read_overhead_us;
                    if pending_cpu > 0.0 {
                        segments.push(Segment::cpu_parallel(pending_cpu, self.intra_parallelism));
                        pending_cpu = 0.0;
                    }
                    let ov_us: f64 = cpu
                        .iter()
                        .map(|op| match op {
                            sann_index::CpuOp::Compute { count, dim } => {
                                self.cost.compute_us(*count, *dim) * self.work_multiplier
                            }
                            sann_index::CpuOp::PqLookup { count, m } => {
                                self.cost.pq_us(*count, *m) * self.work_multiplier
                            }
                        })
                        .sum();
                    segments.push(Segment::overlapped(
                        ov_us,
                        self.intra_parallelism,
                        self.fan_out(reqs),
                    ));
                }
            }
        }
        if pending_cpu > 0.0 {
            segments.push(Segment::cpu_parallel(pending_cpu, self.intra_parallelism));
        }
        QueryPlan::new(segments)
    }

    /// Compiles a batch of traces.
    pub fn build_all(&self, traces: &[QueryTrace]) -> Vec<QueryPlan> {
        traces.iter().map(|t| self.build(t)).collect()
    }

    /// Replicates a beam `io_fanout` times onto distinct device regions.
    fn fan_out(&self, reqs: &[IoReq]) -> Vec<IoReq> {
        let mut fanned = Vec::with_capacity(reqs.len() * self.io_fanout);
        for replica in 0..self.io_fanout as u64 {
            fanned.extend(reqs.iter().map(|r| r.shifted(replica * IO_FANOUT_STRIDE)));
        }
        fanned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> QueryTrace {
        let mut t = QueryTrace::new();
        t.push_compute(100, 768);
        t.push_read(vec![IoReq::new(0, 4096), IoReq::new(4096, 4096)]);
        t.push_pq_lookup(64, 48);
        t.push_compute(4, 768);
        t
    }

    #[test]
    fn compiles_in_order_with_merged_cpu() {
        let b = PlanBuilder::new(CostModel::default());
        let plan = b.build(&sample_trace());
        assert_eq!(plan.segments().len(), 3, "cpu, io, cpu");
        assert!(matches!(plan.segments()[0], Segment::Cpu { .. }));
        assert!(matches!(plan.segments()[1], Segment::Io { .. }));
        assert!(matches!(plan.segments()[2], Segment::Cpu { .. }));
        assert_eq!(plan.read_bytes(), 8192);
        assert_eq!(plan.io_count(), 2);
    }

    #[test]
    fn overhead_lands_in_first_segment() {
        let cost = CostModel::default().with_overhead_us(500.0);
        let plan = PlanBuilder::new(cost).build(&QueryTrace::new());
        assert_eq!(plan.segments().len(), 1);
        assert!((plan.cpu_us() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn fanout_applies_to_cpu_segments() {
        let b = PlanBuilder::new(CostModel::default()).with_intra_parallelism(4);
        let plan = b.build(&sample_trace());
        match &plan.segments()[0] {
            Segment::Cpu { fanout, .. } => assert_eq!(*fanout, 4),
            other => panic!("expected cpu, got {other:?}"),
        }
    }

    #[test]
    fn cpu_time_matches_cost_model() {
        let cost = CostModel::default().with_overhead_us(0.0);
        let plan = PlanBuilder::new(cost).build(&sample_trace());
        let expect = cost.compute_us(104, 768) + cost.pq_us(64, 48);
        assert!((plan.cpu_us() - expect).abs() < 1e-9);
    }

    #[test]
    fn build_all_maps_each_trace() {
        let b = PlanBuilder::new(CostModel::default());
        let plans = b.build_all(&[sample_trace(), QueryTrace::new()]);
        assert_eq!(plans.len(), 2);
        assert!(plans[1].read_bytes() == 0);
    }

    #[test]
    fn work_multiplier_spares_overhead() {
        let cost = CostModel::default().with_overhead_us(100.0);
        let base = PlanBuilder::new(cost).build(&sample_trace()).cpu_us();
        let scaled = PlanBuilder::new(cost)
            .with_work_multiplier(3.0)
            .build(&sample_trace());
        let expect = 100.0 + (base - 100.0) * 3.0;
        assert!(
            (scaled.cpu_us() - expect).abs() < 1e-6,
            "{} vs {expect}",
            scaled.cpu_us()
        );
    }

    #[test]
    fn io_fanout_replicates_beams_on_distinct_regions() {
        let plan = PlanBuilder::new(CostModel::default())
            .with_io_fanout(3)
            .build(&sample_trace());
        assert_eq!(plan.io_count(), 6, "2 reqs x 3 replicas");
        assert_eq!(plan.read_bytes(), 3 * 8192);
        match &plan.segments()[1] {
            Segment::Io { reqs } => {
                let mut offsets: Vec<u64> = reqs.iter().map(|r| r.offset).collect();
                offsets.dedup();
                assert_eq!(offsets.len(), 6, "replicas must not alias");
            }
            other => panic!("expected io, got {other:?}"),
        }
    }

    fn overlapped_trace() -> QueryTrace {
        let mut t = QueryTrace::new();
        t.push_read(vec![IoReq::new(0, 4096)]);
        t.push_overlapped(
            vec![IoReq::new(8192, 4096), IoReq::new(16384, 4096)],
            vec![
                sann_index::CpuOp::Compute { count: 8, dim: 768 },
                sann_index::CpuOp::PqLookup { count: 64, m: 48 },
            ],
        );
        t.push_compute(4, 768);
        t
    }

    #[test]
    fn overlapped_steps_compile_to_overlapped_segments() {
        let cost = CostModel::default().with_overhead_us(0.0);
        let plan = PlanBuilder::new(cost).build(&overlapped_trace());
        assert_eq!(plan.segments().len(), 3, "io, overlapped, cpu");
        assert!(matches!(plan.segments()[0], Segment::Io { .. }));
        match &plan.segments()[1] {
            Segment::Overlapped {
                total_us,
                fanout,
                reqs,
            } => {
                let expect = cost.compute_us(8, 768) + cost.pq_us(64, 48);
                assert!((total_us - expect).abs() < 1e-9);
                assert_eq!(*fanout, 1);
                assert_eq!(reqs.len(), 2);
            }
            other => panic!("expected overlapped, got {other:?}"),
        }
        assert!(matches!(plan.segments()[2], Segment::Cpu { .. }));
        // Aggregates see the overlapped beam like any other.
        assert_eq!(plan.io_count(), 3);
        assert_eq!(plan.read_bytes(), 3 * 4096);
        let cpu = cost.compute_us(8, 768) + cost.pq_us(64, 48) + cost.compute_us(4, 768);
        assert!((plan.cpu_us() - cpu).abs() < 1e-9);
    }

    #[test]
    fn io_fanout_replicates_overlapped_beams() {
        let plan = PlanBuilder::new(CostModel::default())
            .with_io_fanout(3)
            .build(&overlapped_trace());
        assert_eq!(plan.io_count(), 9, "(1 + 2) reqs x 3 replicas");
        // Default overhead makes segments [cpu, io, overlapped, cpu].
        match &plan.segments()[2] {
            Segment::Overlapped { reqs, .. } => {
                let mut offsets: Vec<u64> = reqs.iter().map(|r| r.offset).collect();
                offsets.dedup();
                assert_eq!(offsets.len(), 6, "replicas must not alias");
            }
            other => panic!("expected overlapped, got {other:?}"),
        }
    }

    #[test]
    fn read_overhead_charges_overlapped_beams_too() {
        let cost = CostModel::default().with_overhead_us(0.0);
        let plain = PlanBuilder::new(cost).build(&overlapped_trace()).cpu_us();
        let with = PlanBuilder::new(cost)
            .with_read_overhead_us(200.0)
            .build(&overlapped_trace());
        assert!(
            (with.cpu_us() - plain - 400.0).abs() < 1e-6,
            "one blocking + one overlapped beam in the trace"
        );
    }

    #[test]
    fn read_overhead_charges_per_beam() {
        let cost = CostModel::default().with_overhead_us(0.0);
        let plain = PlanBuilder::new(cost).build(&sample_trace()).cpu_us();
        let with = PlanBuilder::new(cost)
            .with_read_overhead_us(200.0)
            .build(&sample_trace());
        assert!(
            (with.cpu_us() - plain - 200.0).abs() < 1e-6,
            "one beam in the trace"
        );
    }
}
