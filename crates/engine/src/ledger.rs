//! The $/query ledger: prices a simulated run on a concrete device.
//!
//! The paper's cost argument (Table 1, §6) is that storage-based indexes
//! trade DRAM capacity for flash — so the interesting number is not QPS
//! alone but *dollars per query* on a given device. This module turns a
//! [`RunMetrics`] into that number with a four-component device cost
//! model:
//!
//! * **capacity** — the drive's purchase price amortized linearly over its
//!   warranty lifetime; a run is billed for the simulated wall time it
//!   occupies the device.
//! * **wear** — flash endurance is sold as total bytes written (TBW);
//!   every simulated write byte burns `price / TBW` dollars of the
//!   device's remaining life. Read-only search workloads pay zero here;
//!   streaming-insert workloads (FreshDiskANN-style) do not.
//! * **energy** — active power scaled by the measured device utilization
//!   plus idle power for the rest, priced per kWh.
//! * **cpu** — core-hours of the simulated host, priced at a
//!   cloud-on-demand-like rate and scaled by measured CPU utilization.
//!
//! All four components are pure arithmetic over [`RunMetrics`] fields, so
//! the ledger is exactly as deterministic as the metrics: identical runs
//! price to bit-identical dollars. Fault profiles compose for free — an
//! `aging` device completes fewer queries in the same window at the same
//! amortized cost, so its $/query rises without any fault-specific terms
//! here.

use crate::metrics::RunMetrics;

const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Purchase, endurance, and power parameters of one storage device plus
/// the host-CPU rate — everything needed to price a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceCostModel {
    /// Display name (also the CLI spelling, kebab-case).
    pub name: &'static str,
    /// Drive purchase price, USD.
    pub device_usd: f64,
    /// Usable capacity, GB (decimal, as sold).
    pub capacity_gb: f64,
    /// Endurance as total terabytes written over the warranty period.
    pub endurance_tbw: f64,
    /// Warranty lifetime the purchase price amortizes over, years.
    pub lifetime_years: f64,
    /// Power while the device serves media work, watts.
    pub active_w: f64,
    /// Idle power, watts.
    pub idle_w: f64,
    /// Electricity price, USD per kWh.
    pub usd_per_kwh: f64,
    /// Host CPU price, USD per core-hour (cloud on-demand ballpark).
    pub cpu_usd_per_core_hour: f64,
}

impl DeviceCostModel {
    /// The paper's testbed drive: Samsung 990 Pro 2 TB (PCIe 4.0 NVMe).
    /// 1200 TBW endurance over a 5-year warranty, ~$170 street price.
    pub fn samsung_990_pro() -> DeviceCostModel {
        DeviceCostModel {
            name: "990-pro",
            device_usd: 170.0,
            capacity_gb: 2000.0,
            endurance_tbw: 1200.0,
            lifetime_years: 5.0,
            active_w: 5.5,
            idle_w: 0.05,
            usd_per_kwh: 0.15,
            cpu_usd_per_core_hour: 0.048,
        }
    }

    /// A budget SATA drive (870 EVO-class): cheaper per GB, same TBW
    /// class, lower power — the $/query floor for latency-tolerant runs.
    pub fn sata_ssd() -> DeviceCostModel {
        DeviceCostModel {
            name: "sata",
            device_usd: 110.0,
            capacity_gb: 2000.0,
            endurance_tbw: 1200.0,
            lifetime_years: 5.0,
            active_w: 3.0,
            idle_w: 0.03,
            usd_per_kwh: 0.15,
            cpu_usd_per_core_hour: 0.048,
        }
    }

    /// Parses a CLI spelling (`990-pro` or `sata`).
    pub fn parse(s: &str) -> Option<DeviceCostModel> {
        match s {
            "990-pro" => Some(DeviceCostModel::samsung_990_pro()),
            "sata" => Some(DeviceCostModel::sata_ssd()),
            _ => None,
        }
    }

    /// Price of one device-second of existence (capacity amortization).
    pub fn usd_per_second(&self) -> f64 {
        self.device_usd / (self.lifetime_years * SECONDS_PER_YEAR)
    }

    /// Price of one written byte (endurance burn).
    pub fn usd_per_write_byte(&self) -> f64 {
        self.device_usd / (self.endurance_tbw * 1e12)
    }

    /// Prices a run executed on `cores` host cores. All terms scale
    /// linearly with the measurement window, so a longer window prices
    /// the same steady state to the same $/query.
    pub fn price(&self, metrics: &RunMetrics, cores: usize) -> QueryLedger {
        let duration_s = metrics.duration_us / 1e6;
        let duration_h = duration_s / 3600.0;
        let util = metrics.device.utilization;
        let capacity_usd = self.usd_per_second() * duration_s;
        let wear_usd =
            self.usd_per_write_byte() * sann_core::cast::f64_from_u64(metrics.io_stats.write_bytes);
        let device_w = self.active_w * util + self.idle_w * (1.0 - util);
        let energy_usd = device_w * duration_h / 1000.0 * self.usd_per_kwh;
        let cpu_usd = sann_core::cast::f64_from_usize(cores)
            * metrics.cpu_utilization
            * duration_h
            * self.cpu_usd_per_core_hour;
        QueryLedger {
            capacity_usd,
            wear_usd,
            energy_usd,
            cpu_usd,
            completed: metrics.completed,
        }
    }
}

/// The priced run: per-component dollars plus the completed-query count
/// they divide over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryLedger {
    /// Amortized device purchase price for the window, USD.
    pub capacity_usd: f64,
    /// Endurance burned by write bytes, USD.
    pub wear_usd: f64,
    /// Device energy, USD.
    pub energy_usd: f64,
    /// Host core-hours, USD.
    pub cpu_usd: f64,
    /// Queries completed in the window.
    pub completed: u64,
}

impl QueryLedger {
    /// Total run cost, USD.
    pub fn total_usd(&self) -> f64 {
        self.capacity_usd + self.wear_usd + self.energy_usd + self.cpu_usd
    }

    /// Dollars per completed query (0.0 when nothing completed — an
    /// all-abandoned run has no meaningful unit price).
    pub fn usd_per_query(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_usd() / sann_core::cast::f64_from_u64(self.completed)
        }
    }

    /// Dollars per million queries — the number comparable across papers.
    pub fn usd_per_million(&self) -> f64 {
        self.usd_per_query() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, RunConfig};
    use crate::plan::{QueryPlan, Segment};
    use sann_index::IoReq;

    fn priced_run(write_heavy: bool) -> (RunMetrics, QueryLedger) {
        let mut segs = vec![
            Segment::cpu(20.0),
            Segment::io(vec![IoReq::new(0, 4096), IoReq::new(8192, 4096)]),
        ];
        if write_heavy {
            segs.push(Segment::write(vec![IoReq::new(1 << 30, 65536)]));
        }
        let config = RunConfig {
            cores: 4,
            concurrency: 4,
            duration_us: 0.2e6,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&[QueryPlan::new(segs)]);
        let ledger = DeviceCostModel::samsung_990_pro().price(&m, config.cores);
        (m, ledger)
    }

    #[test]
    fn presets_parse_and_differ() {
        let nvme = DeviceCostModel::parse("990-pro").unwrap();
        let sata = DeviceCostModel::parse("sata").unwrap();
        assert_eq!(nvme, DeviceCostModel::samsung_990_pro());
        assert!(sata.device_usd < nvme.device_usd);
        assert!(DeviceCostModel::parse("floppy").is_none());
    }

    #[test]
    fn read_only_runs_burn_no_wear() {
        let (m, ledger) = priced_run(false);
        assert_eq!(m.io_stats.write_bytes, 0);
        assert_eq!(ledger.wear_usd, 0.0);
        assert!(ledger.total_usd() > 0.0);
        assert!(ledger.usd_per_query() > 0.0);
        assert!(
            (ledger.usd_per_million() - ledger.usd_per_query() * 1e6).abs() < 1e-18,
            "per-million is exactly scaled per-query"
        );
    }

    #[test]
    fn writes_add_wear_cost() {
        let (m, ledger) = priced_run(true);
        assert!(m.io_stats.write_bytes > 0);
        let expect =
            DeviceCostModel::samsung_990_pro().usd_per_write_byte() * m.io_stats.write_bytes as f64;
        assert!((ledger.wear_usd - expect).abs() < 1e-18);
        assert!(ledger.wear_usd > 0.0);
    }

    #[test]
    fn empty_ledger_has_no_unit_price() {
        let ledger = QueryLedger {
            capacity_usd: 1.0,
            wear_usd: 0.0,
            energy_usd: 0.0,
            cpu_usd: 0.0,
            completed: 0,
        };
        assert_eq!(ledger.usd_per_query(), 0.0);
        assert_eq!(ledger.usd_per_million(), 0.0);
    }

    #[test]
    fn component_rates_match_spec_sheet() {
        let m = DeviceCostModel::samsung_990_pro();
        // $170 over 5 years ≈ $1.08e-6 per second.
        assert!((m.usd_per_second() - 170.0 / (5.0 * 365.25 * 24.0 * 3600.0)).abs() < 1e-18);
        // $170 over 1200 TBW ≈ $1.4e-13 per written byte.
        assert!((m.usd_per_write_byte() - 170.0 / 1.2e15).abs() < 1e-24);
    }
}
