//! Metrics of one simulated run — the quantities the paper reports.

use sann_core::buf::ByteWriter;
use sann_core::stats;
use sann_obs::{PhaseBreakdown, Registry};
use sann_ssdsim::{IoStats, IoTracer};

/// Results of one closed-loop measurement run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Queries per second completed within the measurement window.
    pub qps: f64,
    /// Mean query latency, µs.
    pub mean_latency_us: f64,
    /// Median query latency, µs.
    pub p50_latency_us: f64,
    /// P99 tail latency, µs (the paper's latency metric).
    pub p99_latency_us: f64,
    /// Fraction of total core time spent busy (0..1); the paper's Fig. 4
    /// plots this as "global CPU usage".
    pub cpu_utilization: f64,
    /// Queries completed within the window.
    pub completed: u64,
    /// Mean bytes read per query (logical, before page cache).
    pub read_bytes_per_query: f64,
    /// Mean I/O requests per query (logical, before page cache).
    pub ios_per_query: f64,
    /// Bytes actually transferred from the device (after page cache).
    pub device_read_bytes: u64,
    /// Mean device read bandwidth over the window, MiB/s.
    pub mean_bandwidth_mib: f64,
    /// Per-second device read bandwidth, MiB/s (Fig. 5's series).
    pub bandwidth_timeline_mib: Vec<f64>,
    /// Request-size histogram and counts at the block layer.
    pub io_stats: IoStats,
    /// Per-phase attribution of query time (queue wait, compute, beam
    /// issue, flash service, cache hit, rerank, delay). In-latency phases
    /// sum to the total reported latency exactly — the executor asserts
    /// this per query.
    pub phase_breakdown: PhaseBreakdown,
}

impl RunMetrics {
    /// Internal constructor used by the executor. Latencies and the phase
    /// breakdown come from the run's observability [`Registry`] — the
    /// executor records exact per-query nanoseconds there instead of
    /// carrying an ad-hoc `Vec<f64>`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        qps: f64,
        registry: &Registry,
        cpu_utilization: f64,
        tracer: IoTracer,
        duration_us: f64,
        completed: u64,
        logical_read_bytes: u64,
        logical_io_count: u64,
    ) -> RunMetrics {
        let io_stats = tracer.stats();
        let latencies_us = registry.latencies_us();
        let issued = latencies_us.len().max(1) as f64;
        RunMetrics {
            qps,
            mean_latency_us: stats::mean(&latencies_us),
            p50_latency_us: stats::percentile(&latencies_us, 50.0),
            p99_latency_us: stats::percentile(&latencies_us, 99.0),
            cpu_utilization: cpu_utilization.min(1.0),
            completed,
            read_bytes_per_query: logical_read_bytes as f64 / issued,
            ios_per_query: logical_io_count as f64 / issued,
            device_read_bytes: io_stats.read_bytes,
            mean_bandwidth_mib: tracer.mean_read_bandwidth(duration_us),
            bandwidth_timeline_mib: tracer.bandwidth_timeline(duration_us),
            io_stats,
            phase_breakdown: registry.breakdown().clone(),
        }
    }

    /// Serializes every field to a canonical little-endian byte string.
    ///
    /// Two runs are *bit-identical* iff their canonical byte strings are
    /// equal — floats are encoded by their exact bit patterns, so this is
    /// strictly stronger than comparing rounded report values. The
    /// determinism audit (`sann-xtask lint --determinism`) runs the same
    /// sweep twice and diffs these strings byte for byte.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut buf = ByteWriter::new();
        buf.put_f64_le(self.qps);
        buf.put_f64_le(self.mean_latency_us);
        buf.put_f64_le(self.p50_latency_us);
        buf.put_f64_le(self.p99_latency_us);
        buf.put_f64_le(self.cpu_utilization);
        buf.put_u64_le(self.completed);
        buf.put_f64_le(self.read_bytes_per_query);
        buf.put_f64_le(self.ios_per_query);
        buf.put_u64_le(self.device_read_bytes);
        buf.put_f64_le(self.mean_bandwidth_mib);
        buf.put_u32_le(self.bandwidth_timeline_mib.len() as u32);
        for &bw in &self.bandwidth_timeline_mib {
            buf.put_f64_le(bw);
        }
        buf.put_u64_le(self.io_stats.reads);
        buf.put_u64_le(self.io_stats.writes);
        buf.put_u64_le(self.io_stats.read_bytes);
        buf.put_u64_le(self.io_stats.write_bytes);
        buf.put_u32_le(self.io_stats.size_histogram.len() as u32);
        for (&size, &count) in &self.io_stats.size_histogram {
            buf.put_u32_le(size);
            buf.put_u64_le(count);
        }
        self.phase_breakdown.encode(&mut buf);
        buf.into_bytes()
    }

    /// Mean read bandwidth one query sustains over its own lifetime, MiB/s —
    /// the paper's Fig. 6/11/15 metric. Computed as mean bytes per query over
    /// mean query latency: it grows with dataset size (more bytes per query,
    /// O-14) and shrinks with concurrency (latency inflates while bytes stay
    /// fixed, O-13).
    pub fn per_query_bandwidth_mib(&self) -> f64 {
        if self.mean_latency_us <= 0.0 {
            return 0.0;
        }
        self.read_bytes_per_query / (1 << 20) as f64 / (self.mean_latency_us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_obs::Phase;

    /// A registry holding the given latencies, all attributed to compute.
    fn registry_with_us(latencies_us: &[f64]) -> Registry {
        let mut r = Registry::new();
        for &us in latencies_us {
            let ns = crate::executor::us_to_ns(us);
            let mut phases = [0u64; Phase::COUNT];
            phases[Phase::Compute.index()] = ns;
            r.record_query(ns, &phases);
        }
        r
    }

    #[test]
    fn assemble_computes_percentiles() {
        let latencies: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let reg = registry_with_us(&latencies);
        let m = RunMetrics::assemble(10.0, &reg, 0.5, IoTracer::new(), 1e6, 10, 2048, 2);
        // Linear interpolation between closest ranks over samples 1..=100.
        assert!((m.p50_latency_us - 50.5).abs() < 1e-9);
        assert!((m.p99_latency_us - 99.01).abs() < 1e-9);
        assert!((m.mean_latency_us - 50.5).abs() < 1e-9);
        assert!((m.read_bytes_per_query - 20.48).abs() < 1e-9);
        assert_eq!(m.phase_breakdown.queries, 100);
        assert_eq!(
            m.phase_breakdown.latency_ns(),
            (1..=100u64).map(|i| i * 1000).sum::<u64>()
        );
    }

    #[test]
    fn cpu_utilization_is_clamped() {
        let m = RunMetrics::assemble(0.0, &Registry::new(), 1.7, IoTracer::new(), 1e6, 0, 0, 0);
        assert_eq!(m.cpu_utilization, 1.0);
    }

    #[test]
    fn empty_run_is_all_zeros() {
        let m = RunMetrics::assemble(0.0, &Registry::new(), 0.0, IoTracer::new(), 1e6, 0, 0, 0);
        assert_eq!(m.completed, 0);
        assert_eq!(m.p99_latency_us, 0.0);
        assert_eq!(m.device_read_bytes, 0);
        assert_eq!(m.per_query_bandwidth_mib(), 0.0);
        assert_eq!(m.phase_breakdown.queries, 0);
    }

    #[test]
    fn canonical_bytes_distinguishes_metric_changes() {
        let make = |qps: f64| {
            let reg = registry_with_us(&[1.0, 2.0]);
            RunMetrics::assemble(qps, &reg, 0.1, IoTracer::new(), 1e6, 2, 8192, 2)
        };
        let a = make(10.0);
        assert_eq!(a.canonical_bytes(), make(10.0).canonical_bytes());
        assert_ne!(a.canonical_bytes(), make(10.5).canonical_bytes());
        let mut b = make(10.0);
        b.bandwidth_timeline_mib.push(3.0);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        // Moving a nanosecond between phases changes the encoding even
        // though every legacy metric stays identical.
        let mut c = make(10.0);
        c.phase_breakdown.ns[Phase::Compute.index()] -= 1;
        c.phase_breakdown.ns[Phase::Rerank.index()] += 1;
        assert_ne!(a.canonical_bytes(), c.canonical_bytes());
    }

    #[test]
    fn per_query_bandwidth_is_bytes_over_latency() {
        // 1 MiB per query, 0.5 s latency → 2 MiB/s.
        let reg = registry_with_us(&[0.5e6, 0.5e6]);
        let m = RunMetrics::assemble(2.0, &reg, 0.1, IoTracer::new(), 1e6, 2, 2 << 20, 2);
        assert!((m.per_query_bandwidth_mib() - 2.0).abs() < 1e-9);
    }
}
