//! Metrics of one simulated run — the quantities the paper reports.

use sann_core::buf::ByteWriter;
use sann_core::{cast, stats};
use sann_obs::{IoProvenance, PhaseBreakdown, Registry};
use sann_ssdsim::{IoStats, IoTracer};

/// Device-level telemetry the executor samples inside the DES event loop
/// (never gated on the trace level, so traced and untraced runs agree).
#[derive(Debug, Clone, Default)]
pub struct DeviceTelemetry {
    /// Mean device queue depth over all request arrivals (busy flash
    /// units seen by each arriving request).
    pub mean_queue_depth: f64,
    /// Fraction of total flash-unit time spent serving media work, 0..1.
    pub utilization: f64,
    /// Per-second mean queue depth (same 1 s windows as the bandwidth
    /// timeline).
    pub queue_depth_timeline: Vec<f64>,
    /// Per-second device utilization, 0..1 per window.
    pub utilization_timeline: Vec<f64>,
}

/// Fault-injection and resilience accounting for one run.
///
/// All-zero on a fault-free run ([`FaultStats::is_clean`]): the executor
/// only tracks these under an active fault profile, so the `none` profile
/// stays byte-identical to a build without the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Read attempts that failed with an injected transient error.
    pub injected_errors: u64,
    /// Read attempts that suffered an injected latency spike.
    pub latency_spikes: u64,
    /// Total simulated time reads stalled behind GC pauses, ns.
    pub gc_stall_ns: u64,
    /// Retry attempts issued after a failed read.
    pub retries: u64,
    /// Planned reads abandoned after exhausting the retry budget.
    pub retry_exhausted: u64,
    /// Hedged duplicate reads issued.
    pub hedges_issued: u64,
    /// Attempts abandoned because a sibling resolved the read first
    /// (the loser of a hedge race — cancelled exactly once per race).
    pub hedges_cancelled: u64,
    /// Planned reads abandoned because the per-query IO deadline passed.
    pub deadline_skips: u64,
    /// Queries that completed with at least one planned read abandoned
    /// (their top-k is partial; see [`FaultStats::degraded_recall`]).
    pub degraded_queries: u64,
    /// Reads the activated queries' plans called for.
    pub ios_planned: u64,
    /// Planned reads served (from device or page cache).
    pub ios_completed: u64,
    /// Planned reads abandoned (retry exhaustion or deadline).
    pub ios_abandoned: u64,
}

impl FaultStats {
    /// Whether the run saw no fault activity at all.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Fraction of planned reads actually served, 0..1 (1.0 when no reads
    /// were planned). The executor guarantees
    /// `ios_planned == ios_completed + ios_abandoned` at run end.
    pub fn served_fraction(&self) -> f64 {
        if self.ios_planned == 0 {
            1.0
        } else {
            self.ios_completed as f64 / self.ios_planned as f64
        }
    }

    /// Honest upper bound on the recall of a degraded run: each abandoned
    /// read removes its candidates from the search frontier, so recall can
    /// be no better than the healthy recall scaled by the fraction of
    /// reads served.
    pub fn degraded_recall(&self, healthy_recall: f64) -> f64 {
        healthy_recall * self.served_fraction()
    }

    /// Appends every field to the canonical encoding (fixed order).
    pub fn encode(&self, buf: &mut ByteWriter) {
        for v in [
            self.injected_errors,
            self.latency_spikes,
            self.gc_stall_ns,
            self.retries,
            self.retry_exhausted,
            self.hedges_issued,
            self.hedges_cancelled,
            self.deadline_skips,
            self.degraded_queries,
            self.ios_planned,
            self.ios_completed,
            self.ios_abandoned,
        ] {
            buf.put_u64_le(v);
        }
    }
}

/// Results of one closed-loop measurement run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Queries per second completed within the measurement window.
    pub qps: f64,
    /// Mean query latency, µs.
    pub mean_latency_us: f64,
    /// Median query latency, µs.
    pub p50_latency_us: f64,
    /// P99 tail latency, µs (the paper's latency metric).
    pub p99_latency_us: f64,
    /// Fraction of total core time spent busy (0..1); the paper's Fig. 4
    /// plots this as "global CPU usage".
    pub cpu_utilization: f64,
    /// Queries completed within the window.
    pub completed: u64,
    /// Mean bytes read per query (logical, before page cache).
    pub read_bytes_per_query: f64,
    /// Mean I/O requests per query (logical, before page cache).
    pub ios_per_query: f64,
    /// Bytes actually transferred from the device (after page cache).
    pub device_read_bytes: u64,
    /// Mean device read bandwidth over the window, MiB/s.
    pub mean_bandwidth_mib: f64,
    /// Per-second device read bandwidth, MiB/s (Fig. 5's series).
    pub bandwidth_timeline_mib: Vec<f64>,
    /// Request-size histogram and counts at the block layer.
    pub io_stats: IoStats,
    /// Per-phase attribution of query time (queue wait, compute, beam
    /// issue, flash service, cache hit, rerank, delay). In-latency phases
    /// sum to the total reported latency exactly — the executor asserts
    /// this per query.
    pub phase_breakdown: PhaseBreakdown,
    /// Fault-injection and resilience accounting (all-zero on fault-free
    /// runs).
    pub fault: FaultStats,
    /// Measurement-window length, µs (needed to amortize time-based costs
    /// in [`crate::ledger`]).
    pub duration_us: f64,
    /// Page-cache hits per provenance tag (indexed by
    /// [`IoProvenance::index`]); together with
    /// [`IoStats::prov_reads`] this partitions every planned read by what
    /// it fetched and where it was served.
    pub prov_cache_hits: [u64; IoProvenance::COUNT],
    /// Bytes served from the page cache per provenance tag.
    pub prov_cache_hit_bytes: [u64; IoProvenance::COUNT],
    /// Device telemetry sampled inside the DES (queue depth, utilization).
    pub device: DeviceTelemetry,
    /// Fraction of device page accesses served by the hottest 10 % of
    /// touched 4 KiB pages (0.1 = uniform, → 1.0 = fully skewed).
    pub hot_page_skew: f64,
}

impl RunMetrics {
    /// Internal constructor used by the executor. Latencies and the phase
    /// breakdown come from the run's observability [`Registry`] — the
    /// executor records exact per-query nanoseconds there instead of
    /// carrying an ad-hoc `Vec<f64>`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        qps: f64,
        registry: &Registry,
        cpu_utilization: f64,
        tracer: IoTracer,
        duration_us: f64,
        completed: u64,
        logical_read_bytes: u64,
        logical_io_count: u64,
        fault: FaultStats,
        prov_cache_hits: [u64; IoProvenance::COUNT],
        prov_cache_hit_bytes: [u64; IoProvenance::COUNT],
        device: DeviceTelemetry,
    ) -> RunMetrics {
        let io_stats = tracer.stats();
        let hot_page_skew = tracer.hot_page_skew();
        let latencies_us = registry.latencies_us();
        let issued = latencies_us.len().max(1) as f64;
        RunMetrics {
            qps,
            mean_latency_us: stats::mean(&latencies_us),
            p50_latency_us: stats::percentile(&latencies_us, 50.0),
            p99_latency_us: stats::percentile(&latencies_us, 99.0),
            cpu_utilization: cpu_utilization.min(1.0),
            completed,
            read_bytes_per_query: logical_read_bytes as f64 / issued,
            ios_per_query: logical_io_count as f64 / issued,
            device_read_bytes: io_stats.read_bytes,
            mean_bandwidth_mib: tracer.mean_read_bandwidth(duration_us),
            bandwidth_timeline_mib: tracer.bandwidth_timeline(duration_us),
            io_stats,
            phase_breakdown: registry.breakdown().clone(),
            fault,
            duration_us,
            prov_cache_hits,
            prov_cache_hit_bytes,
            device,
            hot_page_skew,
        }
    }

    /// Serializes every field to a canonical little-endian byte string.
    ///
    /// Two runs are *bit-identical* iff their canonical byte strings are
    /// equal — floats are encoded by their exact bit patterns, so this is
    /// strictly stronger than comparing rounded report values. The
    /// determinism audit (`sann-xtask lint --determinism`) runs the same
    /// sweep twice and diffs these strings byte for byte.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut buf = ByteWriter::new();
        buf.put_f64_le(self.qps);
        buf.put_f64_le(self.mean_latency_us);
        buf.put_f64_le(self.p50_latency_us);
        buf.put_f64_le(self.p99_latency_us);
        buf.put_f64_le(self.cpu_utilization);
        buf.put_u64_le(self.completed);
        buf.put_f64_le(self.read_bytes_per_query);
        buf.put_f64_le(self.ios_per_query);
        buf.put_u64_le(self.device_read_bytes);
        buf.put_f64_le(self.mean_bandwidth_mib);
        buf.put_u32_le(self.bandwidth_timeline_mib.len() as u32);
        for &bw in &self.bandwidth_timeline_mib {
            buf.put_f64_le(bw);
        }
        buf.put_u64_le(self.io_stats.reads);
        buf.put_u64_le(self.io_stats.writes);
        buf.put_u64_le(self.io_stats.read_bytes);
        buf.put_u64_le(self.io_stats.write_bytes);
        buf.put_u32_le(self.io_stats.size_histogram.len() as u32);
        for (&size, &count) in &self.io_stats.size_histogram {
            buf.put_u32_le(size);
            buf.put_u64_le(count);
        }
        self.phase_breakdown.encode(&mut buf);
        self.fault.encode(&mut buf);
        // I/O-characterization fields (appended after the legacy layout so
        // pre-existing prefixes stay byte-stable).
        buf.put_u64_le(self.io_stats.needed_read_bytes);
        for i in 0..IoProvenance::COUNT {
            buf.put_u64_le(self.io_stats.prov_reads[i]);
            buf.put_u64_le(self.io_stats.prov_read_bytes[i]);
            buf.put_u64_le(self.prov_cache_hits[i]);
            buf.put_u64_le(self.prov_cache_hit_bytes[i]);
        }
        buf.put_f64_le(self.duration_us);
        buf.put_f64_le(self.hot_page_skew);
        buf.put_f64_le(self.device.mean_queue_depth);
        buf.put_f64_le(self.device.utilization);
        buf.put_u32_le(cast::u32_from_usize(self.device.queue_depth_timeline.len()));
        for &qd in &self.device.queue_depth_timeline {
            buf.put_f64_le(qd);
        }
        buf.put_u32_le(cast::u32_from_usize(self.device.utilization_timeline.len()));
        for &u in &self.device.utilization_timeline {
            buf.put_f64_le(u);
        }
        buf.into_bytes()
    }

    /// Device read amplification: bytes fetched over bytes the planner
    /// actually needed (0.0 when nothing was needed). Cache-served reads
    /// count in neither term — this characterizes device traffic.
    pub fn read_amplification(&self) -> f64 {
        self.io_stats.read_amplification()
    }

    /// Mean read bandwidth one query sustains over its own lifetime, MiB/s —
    /// the paper's Fig. 6/11/15 metric. Computed as mean bytes per query over
    /// mean query latency: it grows with dataset size (more bytes per query,
    /// O-14) and shrinks with concurrency (latency inflates while bytes stay
    /// fixed, O-13).
    pub fn per_query_bandwidth_mib(&self) -> f64 {
        if self.mean_latency_us <= 0.0 {
            return 0.0;
        }
        self.read_bytes_per_query / (1 << 20) as f64 / (self.mean_latency_us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_obs::Phase;

    /// A registry holding the given latencies, all attributed to compute.
    fn registry_with_us(latencies_us: &[f64]) -> Registry {
        let mut r = Registry::new();
        for &us in latencies_us {
            let ns = crate::executor::us_to_ns(us);
            let mut phases = [0u64; Phase::COUNT];
            phases[Phase::Compute.index()] = ns;
            r.record_query(ns, &phases);
        }
        r
    }

    #[test]
    fn assemble_computes_percentiles() {
        let latencies: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let reg = registry_with_us(&latencies);
        let m = RunMetrics::assemble(
            10.0,
            &reg,
            0.5,
            IoTracer::new(),
            1e6,
            10,
            2048,
            2,
            FaultStats::default(),
            [0; IoProvenance::COUNT],
            [0; IoProvenance::COUNT],
            DeviceTelemetry::default(),
        );
        // Linear interpolation between closest ranks over samples 1..=100.
        assert!((m.p50_latency_us - 50.5).abs() < 1e-9);
        assert!((m.p99_latency_us - 99.01).abs() < 1e-9);
        assert!((m.mean_latency_us - 50.5).abs() < 1e-9);
        assert!((m.read_bytes_per_query - 20.48).abs() < 1e-9);
        assert_eq!(m.phase_breakdown.queries, 100);
        assert_eq!(
            m.phase_breakdown.latency_ns(),
            (1..=100u64).map(|i| i * 1000).sum::<u64>()
        );
    }

    #[test]
    fn cpu_utilization_is_clamped() {
        let m = RunMetrics::assemble(
            0.0,
            &Registry::new(),
            1.7,
            IoTracer::new(),
            1e6,
            0,
            0,
            0,
            FaultStats::default(),
            [0; IoProvenance::COUNT],
            [0; IoProvenance::COUNT],
            DeviceTelemetry::default(),
        );
        assert_eq!(m.cpu_utilization, 1.0);
    }

    #[test]
    fn empty_run_is_all_zeros() {
        let m = RunMetrics::assemble(
            0.0,
            &Registry::new(),
            0.0,
            IoTracer::new(),
            1e6,
            0,
            0,
            0,
            FaultStats::default(),
            [0; IoProvenance::COUNT],
            [0; IoProvenance::COUNT],
            DeviceTelemetry::default(),
        );
        assert_eq!(m.completed, 0);
        assert!(m.fault.is_clean());
        assert_eq!(m.p99_latency_us, 0.0);
        assert_eq!(m.device_read_bytes, 0);
        assert_eq!(m.per_query_bandwidth_mib(), 0.0);
        assert_eq!(m.phase_breakdown.queries, 0);
    }

    #[test]
    fn canonical_bytes_distinguishes_metric_changes() {
        let make = |qps: f64| {
            let reg = registry_with_us(&[1.0, 2.0]);
            RunMetrics::assemble(
                qps,
                &reg,
                0.1,
                IoTracer::new(),
                1e6,
                2,
                8192,
                2,
                FaultStats::default(),
                [0; IoProvenance::COUNT],
                [0; IoProvenance::COUNT],
                DeviceTelemetry::default(),
            )
        };
        let a = make(10.0);
        assert_eq!(a.canonical_bytes(), make(10.0).canonical_bytes());
        assert_ne!(a.canonical_bytes(), make(10.5).canonical_bytes());
        let mut b = make(10.0);
        b.bandwidth_timeline_mib.push(3.0);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        // Moving a nanosecond between phases changes the encoding even
        // though every legacy metric stays identical.
        let mut c = make(10.0);
        c.phase_breakdown.ns[Phase::Compute.index()] -= 1;
        c.phase_breakdown.ns[Phase::Rerank.index()] += 1;
        assert_ne!(a.canonical_bytes(), c.canonical_bytes());
    }

    #[test]
    fn per_query_bandwidth_is_bytes_over_latency() {
        // 1 MiB per query, 0.5 s latency → 2 MiB/s.
        let reg = registry_with_us(&[0.5e6, 0.5e6]);
        let m = RunMetrics::assemble(
            2.0,
            &reg,
            0.1,
            IoTracer::new(),
            1e6,
            2,
            2 << 20,
            2,
            FaultStats::default(),
            [0; IoProvenance::COUNT],
            [0; IoProvenance::COUNT],
            DeviceTelemetry::default(),
        );
        assert!((m.per_query_bandwidth_mib() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fault_stats_served_fraction_and_degraded_recall() {
        let clean = FaultStats::default();
        assert!(clean.is_clean());
        assert_eq!(clean.served_fraction(), 1.0);
        assert_eq!(clean.degraded_recall(0.95), 0.95);
        let f = FaultStats {
            ios_planned: 200,
            ios_completed: 150,
            ios_abandoned: 50,
            retry_exhausted: 50,
            degraded_queries: 10,
            ..FaultStats::default()
        };
        assert!(!f.is_clean());
        assert!((f.served_fraction() - 0.75).abs() < 1e-12);
        assert!((f.degraded_recall(0.9) - 0.675).abs() < 1e-12);
    }

    #[test]
    fn canonical_bytes_distinguishes_fault_stats() {
        let make = |fault: FaultStats| {
            let reg = registry_with_us(&[1.0, 2.0]);
            RunMetrics::assemble(
                1.0,
                &reg,
                0.1,
                IoTracer::new(),
                1e6,
                2,
                0,
                0,
                fault,
                [0; IoProvenance::COUNT],
                [0; IoProvenance::COUNT],
                DeviceTelemetry::default(),
            )
        };
        let clean = make(FaultStats::default());
        assert_eq!(
            clean.canonical_bytes(),
            make(FaultStats::default()).canonical_bytes()
        );
        let faulted = make(FaultStats {
            retries: 1,
            ..FaultStats::default()
        });
        assert_ne!(clean.canonical_bytes(), faulted.canonical_bytes());
    }
}
