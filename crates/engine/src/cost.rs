//! CPU cost model: converts trace work items into core-occupancy time.

/// Microsecond costs of the primitive operations a query performs.
///
/// Defaults approximate one core of the paper's Xeon Silver 4416+ running
/// vectorized distance kernels; database engine profiles scale them with
/// [`CostModel::scaled`] (e.g. a Go-based engine pays a higher factor than a
/// C++ one — the paper's O-2/O-8 show up to 7.1× throughput differences
/// between databases using the *same* index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// µs per full-precision distance evaluation, per vector dimension.
    pub dist_us_per_dim: f64,
    /// µs per PQ ADC lookup, per code byte.
    pub pq_us_per_byte: f64,
    /// Fixed per-query CPU overhead (parsing, planning, result assembly), µs.
    pub query_overhead_us: f64,
    /// Multiplier on all per-operation costs (engine/runtime efficiency).
    pub cpu_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // ~0.19 µs per 768-d L2 distance (AVX2-class throughput).
            dist_us_per_dim: 0.00025,
            // ~0.1 µs per 48-byte PQ code.
            pq_us_per_byte: 0.002,
            query_overhead_us: 30.0,
            cpu_factor: 1.0,
        }
    }
}

impl CostModel {
    /// CPU time of `count` full-precision distance evaluations at `dim`.
    pub fn compute_us(&self, count: u64, dim: u32) -> f64 {
        count as f64 * dim as f64 * self.dist_us_per_dim * self.cpu_factor
    }

    /// CPU time of `count` PQ lookups with `m`-byte codes.
    pub fn pq_us(&self, count: u64, m: u32) -> f64 {
        count as f64 * m as f64 * self.pq_us_per_byte * self.cpu_factor
    }

    /// Fixed per-query overhead.
    pub fn overhead_us(&self) -> f64 {
        self.query_overhead_us * self.cpu_factor
    }

    /// Returns a copy with every cost multiplied by `factor` (stacking on any
    /// existing factor).
    pub fn scaled(mut self, factor: f64) -> CostModel {
        self.cpu_factor *= factor;
        self
    }

    /// Returns a copy with the fixed per-query overhead replaced.
    pub fn with_overhead_us(mut self, overhead_us: f64) -> CostModel {
        self.query_overhead_us = overhead_us;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_linearly() {
        let c = CostModel::default();
        assert!((c.compute_us(1000, 768) - 1000.0 * 768.0 * 0.00025).abs() < 1e-9);
        assert!((c.pq_us(100, 48) - 100.0 * 48.0 * 0.002).abs() < 1e-9);
    }

    #[test]
    fn scaled_stacks() {
        let c = CostModel::default().scaled(2.0).scaled(3.0);
        assert!((c.cpu_factor - 6.0).abs() < 1e-12);
        assert!((c.compute_us(1, 100) - 6.0 * 100.0 * 0.00025).abs() < 1e-9);
        assert!((c.overhead_us() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_override() {
        let c = CostModel::default().with_overhead_us(5.0);
        assert_eq!(c.overhead_us(), 5.0);
    }

    #[test]
    fn default_distance_is_submicrosecond_per_768d() {
        let c = CostModel::default();
        let one = c.compute_us(1, 768);
        assert!((0.05..1.0).contains(&one), "768-d distance {one} µs");
    }
}
