//! SARIF 2.1.0 export of analyzer findings.
//!
//! [SARIF](https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html)
//! is the interchange format editors and CI annotators consume. The writer
//! here is hand-rolled (std-only) and **byte-deterministic**: fixed field
//! order, findings sorted by (file, line, column, rule), workspace-relative
//! forward-slash URIs, and no timestamps — the determinism audit diffs two
//! exports byte for byte.
//!
//! Suppressed findings (valid allow markers) are included with a
//! `suppressions` entry carrying the marker's reason, matching how SARIF
//! models in-source suppression; consumers that honor suppressions hide
//! them, and auditors can still list every exception with its
//! justification.

use crate::rules::{Finding, Severity, REGISTRY};
use std::fmt::Write as _;

/// Renders one SARIF 2.1.0 log for the given findings.
///
/// `findings` are the unsuppressed results; `allowed` the marker-suppressed
/// ones. Both are re-sorted internally, so callers need no particular order.
pub fn render(findings: &[Finding], allowed: &[Finding]) -> String {
    let mut results: Vec<(&Finding, bool)> = findings
        .iter()
        .map(|f| (f, false))
        .chain(allowed.iter().map(|f| (f, true)))
        .collect();
    results.sort_by(|(a, sa), (b, sb)| {
        (&a.rel, a.line, a.col, a.rule, *sa).cmp(&(&b.rel, b.line, b.col, b.rule, *sb))
    });

    let mut out = String::new();
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"sann-xtask-analyze\",");
    out.push_str("\"informationUri\":\"https://github.com/example/sann\",\"rules\":[");
    for (i, rule) in REGISTRY.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
             \"defaultConfiguration\":{{\"level\":{}}}}}",
            json_str(rule.name),
            json_str(rule.why),
            json_str(level(rule.severity)),
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, (f, suppressed)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let sev = REGISTRY
            .iter()
            .find(|r| r.name == f.rule)
            .map(|r| level(r.severity))
            .unwrap_or("warning");
        let _ = write!(
            out,
            "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]",
            json_str(f.rule),
            json_str(sev),
            json_str(&f.message),
            json_str(&f.rel),
            f.line,
            f.col,
        );
        if *suppressed {
            let reason = f.allowed.as_deref().unwrap_or("");
            let _ = write!(
                out,
                ",\"suppressions\":[{{\"kind\":\"inSource\",\"justification\":{}}}]",
                json_str(reason)
            );
        }
        out.push('}');
    }
    out.push_str("]}]}");
    out.push('\n');
    out
}

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Deny => "error",
        Severity::Ratchet => "warning",
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(rule: &'static str, rel: &str, line: u32, col: u32) -> Finding {
        Finding {
            rule,
            file: PathBuf::from(rel),
            rel: rel.to_string(),
            krate: "core".to_string(),
            line,
            col,
            message: format!("msg for {rule}"),
            excerpt: "let x = 1;".to_string(),
            allowed: None,
        }
    }

    #[test]
    fn output_is_order_independent_and_stable() {
        let a = finding("panic-path", "crates/core/src/a.rs", 3, 9);
        let b = finding("wall-clock", "crates/core/src/a.rs", 1, 1);
        let one = render(&[a.clone(), b.clone()], &[]);
        let two = render(&[b, a], &[]);
        assert_eq!(one, two, "result order must not leak into the export");
        assert!(one.contains("\"version\":\"2.1.0\""));
        // Sorted: wall-clock (line 1) before panic-path (line 3).
        assert!(one.find("wall-clock").unwrap() < one.rfind("panic-path").unwrap());
    }

    #[test]
    fn suppressions_carry_the_marker_reason() {
        let mut f = finding("unordered-container", "x.rs", 2, 2);
        f.allowed = Some("scratch map, order never observed".to_string());
        let out = render(&[], &[f]);
        assert!(out.contains("\"suppressions\""));
        assert!(out.contains("scratch map, order never observed"));
    }

    #[test]
    fn escaping_handles_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn every_registry_rule_is_described() {
        let out = render(&[], &[]);
        for rule in REGISTRY {
            assert!(
                out.contains(&format!("\"id\":\"{}\"", rule.name)),
                "{}",
                rule.name
            );
        }
    }
}
