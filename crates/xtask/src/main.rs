//! CLI entry point: `sann-xtask lint [--root DIR] [--determinism]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(("lint", rest)) = args.split_first().map(|(a, b)| (a.as_str(), b)) else {
        eprintln!("usage: sann-xtask lint [--root DIR] [--determinism]");
        return ExitCode::FAILURE;
    };

    let mut root: Option<PathBuf> = None;
    let mut determinism = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--determinism" => determinism = true,
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let scan = match &root {
        // An explicit root is a fixture tree: scan every .rs file in it.
        Some(dir) => sann_xtask::lint::scan_tree(dir),
        None => sann_xtask::lint::scan_workspace(&workspace_root()),
    };
    let report = match scan {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sann-xtask: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if !report.ok() {
        return ExitCode::FAILURE;
    }

    if determinism {
        match sann_xtask::determinism::run() {
            Ok(summary) => println!("{summary}"),
            Err(e) => {
                eprintln!("determinism: FAIL — {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The workspace root: where `cargo run -p sann-xtask` executes from, or —
/// when run from elsewhere — the nearest ancestor with a `crates/` dir.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
