//! CLI entry point for the workspace checker.
//!
//! ```text
//! sann-xtask analyze [--root DIR] [--rules FAMILY,...] [--format text|sarif]
//!                    [--baseline FILE] [--hotpaths FILE] [--update-baseline]
//! sann-xtask lint    [--root DIR] [--determinism]
//! ```
//!
//! `lint` is an alias of `analyze --rules determinism` with the legacy
//! report rendering; `--determinism` additionally runs the runtime
//! double-run audit.

use sann_xtask::analyze::{self, Format, Options};
use sann_xtask::rules::Family;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: sann-xtask <analyze|lint> [options]\n\
    analyze [--root DIR] [--rules FAMILY,...] [--format text|sarif]\n\
    \x20       [--baseline FILE] [--hotpaths FILE] [--update-baseline]\n\
    lint    [--root DIR] [--determinism]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first().map(|(a, b)| (a.as_str(), b)) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match cmd {
        "analyze" => run_analyze(rest),
        "lint" => run_lint(rest),
        other => {
            eprintln!("unknown subcommand {other}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_analyze(rest: &[String]) -> ExitCode {
    let mut opts = Options::new(analyze::workspace_root());
    let mut format = Format::Text;
    let mut update_baseline = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return flag_needs("--root", "a directory"),
            },
            "--rules" => match it.next() {
                Some(list) => {
                    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        match Family::parse(name) {
                            Some(f) => opts.families.push(f),
                            None => {
                                eprintln!(
                                    "unknown rule family `{name}` (families: {})",
                                    Family::ALL
                                        .iter()
                                        .map(|f| f.name())
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                );
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
                None => return flag_needs("--rules", "a family list"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                _ => return flag_needs("--format", "`text` or `sarif`"),
            },
            "--baseline" => match it.next() {
                Some(path) => opts.baseline_path = Some(PathBuf::from(path)),
                None => return flag_needs("--baseline", "a file"),
            },
            "--hotpaths" => match it.next() {
                Some(path) => opts.hotpaths_path = Some(PathBuf::from(path)),
                None => return flag_needs("--hotpaths", "a file"),
            },
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if update_baseline {
        return match analyze::update_baseline(&opts) {
            Ok((path, text)) => {
                let entries = text.lines().filter(|l| l.contains(" = ")).count();
                println!(
                    "analyze: wrote {} ({} ratchet entr{})",
                    path.display(),
                    entries,
                    if entries == 1 { "y" } else { "ies" }
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sann-xtask: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let analysis = match analyze::run(&opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sann-xtask: {e}");
            return ExitCode::FAILURE;
        }
    };
    match format {
        Format::Text => print!("{}", analysis.render_text()),
        Format::Sarif => print!("{}", analysis.render_sarif()),
    }
    if analysis.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_lint(rest: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut determinism = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return flag_needs("--root", "a directory"),
            },
            "--determinism" => determinism = true,
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let scan = match &root {
        // An explicit root is a fixture tree: scan every .rs file in it.
        Some(dir) => sann_xtask::lint::scan_tree(dir),
        None => sann_xtask::lint::scan_workspace(&analyze::workspace_root()),
    };
    let report = match scan {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sann-xtask: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if !report.ok() {
        return ExitCode::FAILURE;
    }

    if determinism {
        match sann_xtask::determinism::run() {
            Ok(summary) => println!("{summary}"),
            Err(e) => {
                eprintln!("determinism: FAIL — {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn flag_needs(flag: &str, what: &str) -> ExitCode {
    eprintln!("{flag} needs {what}");
    ExitCode::FAILURE
}
