//! Ratcheted finding baselines: per-(rule, crate) counts that may only
//! shrink.
//!
//! The workspace carries hundreds of pre-existing panic-path and cast
//! findings; blocking on all of them would freeze development, ignoring
//! them would let the count grow silently. The ratchet splits the
//! difference: `analyze --update-baseline` records the current counts in
//! `analyze-baseline.toml`, CI fails only when a count *exceeds* its
//! baseline, and shrinking counts are reported so the baseline can be
//! re-tightened. The rendered file is byte-deterministic (sorted rules,
//! sorted crates), which the determinism audit double-checks.
//!
//! The format is a strict subset of TOML, parsed by [`MiniToml`] — the
//! workspace builds offline with no TOML crate. The same parser reads the
//! hot-path manifest (`analyze-hotpaths.toml`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-(rule, crate) ratchet counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(rule, crate) → allowed finding count`.
    counts: BTreeMap<(String, String), u64>,
}

impl Baseline {
    /// An empty baseline: every ratcheted finding is a regression.
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Builds a baseline from observed counts.
    pub fn from_counts(counts: &BTreeMap<(String, String), u64>) -> Baseline {
        Baseline {
            counts: counts
                .iter()
                .filter(|(_, &n)| n > 0)
                .map(|(k, &n)| (k.clone(), n))
                .collect(),
        }
    }

    /// The baselined count for (`rule`, `krate`); absent entries are 0.
    pub fn get(&self, rule: &str, krate: &str) -> u64 {
        self.counts
            .get(&(rule.to_string(), krate.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Iterates entries in deterministic (rule, crate) order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counts
            .iter()
            .map(|((r, c), &n)| (r.as_str(), c.as_str(), n))
    }

    /// Parses the baseline file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on any syntax error or
    /// non-integer value.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = MiniToml::parse(text)?;
        let mut counts = BTreeMap::new();
        for (section, key, value) in &doc.entries {
            let n: u64 = value
                .parse()
                .map_err(|_| format!("baseline [{section}] {key}: `{value}` is not a count"))?;
            counts.insert((section.clone(), key.clone()), n);
        }
        Ok(Baseline { counts })
    }

    /// Renders the baseline deterministically (sorted sections and keys).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# sann-xtask analyze: ratcheted finding baseline.\n\
             # Regenerate with: cargo run -p sann-xtask -- analyze --update-baseline\n\
             # Counts may only shrink; CI fails when any (rule, crate) count grows.\n",
        );
        let mut last_rule: Option<&str> = None;
        for (rule, krate, n) in self.entries() {
            if last_rule != Some(rule) {
                let _ = write!(out, "\n[{rule}]\n");
                last_rule = Some(rule);
            }
            let _ = writeln!(out, "{krate} = {n}");
        }
        out
    }
}

/// A parsed mini-TOML document: `[section]` headers over `key = value`
/// lines. Values are either bare integers or double-quoted strings; keys
/// are bare identifiers or double-quoted strings. Comments (`#`) and blank
/// lines are skipped. Duplicate keys: last wins.
#[derive(Debug, Default)]
pub struct MiniToml {
    /// `(section, key, value)` triples in file order.
    pub entries: Vec<(String, String, String)>,
}

impl MiniToml {
    /// Parses `text`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside the
    /// subset.
    pub fn parse(text: &str) -> Result<MiniToml, String> {
        let mut doc = MiniToml::default();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = i + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!("line {lineno}: unclosed [section] header"));
                };
                section = unquote(name.trim()).to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let key = unquote(key.trim()).to_string();
            let mut value = value.trim();
            // Strip a trailing comment from unquoted values.
            if !value.starts_with('"') {
                if let Some(hash) = value.find('#') {
                    value = value[..hash].trim_end();
                }
            }
            let value = unquote(value).to_string();
            if key.is_empty() {
                return Err(format!("line {lineno}: empty key"));
            }
            doc.entries.push((section.clone(), key, value));
        }
        Ok(doc)
    }

    /// Values in `section`, keyed, in file order.
    pub fn section<'a>(&'a self, name: &'a str) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        self.entries
            .iter()
            .filter(move |(s, _, _)| s == name)
            .map(|(_, k, v)| (k.as_str(), v.as_str()))
    }
}

/// Strips one level of double quotes, if present.
fn unquote(s: &str) -> &str {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_deterministically() {
        let mut counts = BTreeMap::new();
        counts.insert(("panic-path".to_string(), "engine".to_string()), 12u64);
        counts.insert(("panic-path".to_string(), "core".to_string()), 3);
        counts.insert(("cast-truncation".to_string(), "index".to_string()), 40);
        counts.insert(("hot-alloc".to_string(), "core".to_string()), 0); // dropped
        let b = Baseline::from_counts(&counts);
        let text = b.render();
        let reparsed = Baseline::parse(&text).unwrap();
        assert_eq!(b, reparsed);
        assert_eq!(reparsed.render(), text, "render is a fixed point");
        assert_eq!(reparsed.get("panic-path", "engine"), 12);
        assert_eq!(reparsed.get("panic-path", "vdb"), 0, "absent is zero");
        assert_eq!(reparsed.get("hot-alloc", "core"), 0, "zero entries dropped");
        // Sections are sorted, so cast-truncation renders first.
        assert!(text.find("[cast-truncation]").unwrap() < text.find("[panic-path]").unwrap());
    }

    #[test]
    fn parse_accepts_comments_and_quoted_keys() {
        let text = "# header\n[panic-path]\n\"engine\" = 7 # trailing\n\ncore = 1\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.get("panic-path", "engine"), 7);
        assert_eq!(b.get("panic-path", "core"), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("[unclosed\n").is_err());
        assert!(Baseline::parse("[r]\nkey value\n").is_err());
        assert!(Baseline::parse("[r]\nkey = notanumber\n").is_err());
    }

    #[test]
    fn minitoml_string_values_and_sections() {
        let doc =
            MiniToml::parse("[hot]\n\"crates/core/src/a.rs\" = \"f, g\"\nplain = \"h\"\n").unwrap();
        let hot: Vec<_> = doc.section("hot").collect();
        assert_eq!(hot, vec![("crates/core/src/a.rs", "f, g"), ("plain", "h")]);
    }
}
