//! `sann-xtask analyze` — the token-level workspace analyzer.
//!
//! Drives the [`crate::lexer`] and the [`crate::rules`] registry over every
//! `.rs` file of every product crate (all trees: `src/` including
//! `src/bin/`, `tests/`, `benches/`, `examples/`, plus the workspace-root
//! facade and integration tests), resolves `sann-lint: allow` markers,
//! applies the ratcheted baseline, and renders the result as a human table
//! or SARIF 2.1 ([`crate::sarif`]).
//!
//! Severity policy by tree: deny-rules (determinism, layering) apply
//! everywhere; ratcheted rules (panic-path, cast-truncation, hot-*) apply
//! to `src/` trees only and skip `#[cfg(test)]` modules — tests may unwrap.

use crate::baseline::{Baseline, MiniToml};
use crate::lexer;
use crate::rules::{self, Family, Finding, RuleCtx, Severity, Tree};
use crate::sarif;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Output format of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable table plus per-finding lines.
    Text,
    /// SARIF 2.1.0 JSON (byte-stable).
    Sarif,
}

/// Everything configuring one `analyze` run.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (or a fixture tree).
    pub root: PathBuf,
    /// Rule families to run (empty = all).
    pub families: Vec<Family>,
    /// Baseline file; defaults to `<root>/analyze-baseline.toml`. A missing
    /// file is an empty baseline (every ratcheted finding regresses).
    pub baseline_path: Option<PathBuf>,
    /// Hot-path manifest; defaults to `<root>/analyze-hotpaths.toml`.
    pub hotpaths_path: Option<PathBuf>,
}

impl Options {
    /// Default options over `root`: all families, default file locations.
    pub fn new(root: impl Into<PathBuf>) -> Options {
        Options {
            root: root.into(),
            families: Vec::new(),
            baseline_path: None,
            hotpaths_path: None,
        }
    }

    fn family_on(&self, family: Family) -> bool {
        self.families.is_empty() || self.families.contains(&family)
    }
}

/// One ratchet regression: a (rule, crate) count above its baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Rule name.
    pub rule: String,
    /// Crate key.
    pub krate: String,
    /// Baselined count.
    pub baseline: u64,
    /// Observed count.
    pub current: u64,
}

/// Everything one analyze run produced.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Files scanned.
    pub files: usize,
    /// Deny-severity unsuppressed findings (any ⇒ failure).
    pub violations: Vec<Finding>,
    /// Ratchet-severity unsuppressed findings (counted, not individually
    /// fatal).
    pub ratcheted: Vec<Finding>,
    /// Marker-suppressed findings (any severity).
    pub allowed: Vec<Finding>,
    /// Malformed or unknown-rule markers (any ⇒ failure).
    pub marker_errors: Vec<String>,
    /// Observed ratcheted counts per (rule, crate).
    pub counts: BTreeMap<(String, String), u64>,
    /// The baseline in force.
    pub baseline: Baseline,
    /// Ratchet regressions (any ⇒ failure).
    pub regressions: Vec<Regression>,
}

impl Analysis {
    /// Whether the run passed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.marker_errors.is_empty() && self.regressions.is_empty()
    }

    /// (rule, crate) pairs whose counts shrank below the baseline — the
    /// ratchet can be tightened with `--update-baseline`.
    pub fn improvements(&self) -> Vec<Regression> {
        let mut out = Vec::new();
        for (rule, krate, base) in self.baseline.entries() {
            let now = self
                .counts
                .get(&(rule.to_string(), krate.to_string()))
                .copied()
                .unwrap_or(0);
            if now < base {
                out.push(Regression {
                    rule: rule.to_string(),
                    krate: krate.to_string(),
                    baseline: base,
                    current: now,
                });
            }
        }
        out
    }

    /// Allow-markers used inside a given crate directory name.
    pub fn markers_in_crate(&self, krate: &str) -> usize {
        self.allowed.iter().filter(|f| f.krate == krate).count()
    }

    /// Renders the SARIF form (see [`crate::sarif`]).
    pub fn render_sarif(&self) -> String {
        let mut unsuppressed: Vec<Finding> = Vec::new();
        unsuppressed.extend(self.violations.iter().cloned());
        unsuppressed.extend(self.ratcheted.iter().cloned());
        sarif::render(&unsuppressed, &self.allowed)
    }

    /// Renders the human table plus failure details.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "sann-xtask analyze: scanned {} files", self.files);
        let _ = writeln!(
            out,
            "  {:<22} {:>8} {:>9} {:>8}  policy",
            "rule", "findings", "baseline", "allowed"
        );
        for rule in rules::REGISTRY {
            let (pool, policy) = match rule.severity {
                Severity::Deny => (&self.violations, "deny"),
                Severity::Ratchet => (&self.ratcheted, "ratchet"),
            };
            let found = pool.iter().filter(|f| f.rule == rule.name).count();
            let base: u64 = self
                .baseline
                .entries()
                .filter(|(r, _, _)| *r == rule.name)
                .map(|(_, _, n)| n)
                .sum();
            let allow = self.allowed.iter().filter(|f| f.rule == rule.name).count();
            let base_str = if rule.severity == Severity::Deny {
                "-".to_string()
            } else {
                base.to_string()
            };
            let _ = writeln!(
                out,
                "  {:<22} {:>8} {:>9} {:>8}  {policy}",
                rule.name, found, base_str, allow
            );
        }
        for f in &self.violations {
            let _ = writeln!(
                out,
                "error[{}]: {}:{}:{}: {}",
                f.rule, f.rel, f.line, f.col, f.excerpt
            );
            let _ = writeln!(out, "  note: {}", f.message);
        }
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "error[ratchet]: {}/{}: {} finding(s), baseline allows {}",
                r.rule, r.krate, r.current, r.baseline
            );
            for f in self
                .ratcheted
                .iter()
                .filter(|f| f.rule == r.rule && f.krate == r.krate)
            {
                let _ = writeln!(out, "  {}:{}:{}: {}", f.rel, f.line, f.col, f.excerpt);
            }
            if let Some(info) = rules::rule(&r.rule) {
                let _ = writeln!(out, "  note: {}", info.why);
            }
            let _ = writeln!(
                out,
                "  note: fix the new sites, add `sann-lint: allow({}) -- <reason>` markers, \
                 or (never to hide a regression) --update-baseline",
                r.rule
            );
        }
        for e in &self.marker_errors {
            let _ = writeln!(out, "error[bad-marker]: {e}");
        }
        for i in &self.improvements() {
            let _ = writeln!(
                out,
                "note[ratchet]: {}/{} shrank to {} (baseline {}) — run --update-baseline \
                 to tighten",
                i.rule, i.krate, i.current, i.baseline
            );
        }
        let _ = writeln!(
            out,
            "{}",
            if self.ok() {
                "analyze: PASS"
            } else {
                "analyze: FAIL"
            }
        );
        out
    }
}

/// One file scheduled for scanning.
struct Job {
    path: PathBuf,
    rel: String,
    krate: String,
    tree: Tree,
}

/// Runs the analyzer over `opts.root`.
///
/// # Errors
///
/// Returns a message when the directory walk, a file read, the baseline, or
/// the hot-path manifest fails to parse.
pub fn run(opts: &Options) -> Result<Analysis, String> {
    let jobs = collect_jobs(&opts.root)?;
    let hotpaths = load_hotpaths(opts)?;
    let mut analysis = Analysis {
        baseline: load_baseline(opts)?,
        ..Analysis::default()
    };

    for job in jobs {
        scan_file(opts, &job, &hotpaths, &mut analysis)?;
        analysis.files += 1;
    }

    // Deterministic output order regardless of directory walk order.
    let by_pos = |a: &Finding, b: &Finding| {
        (&a.rel, a.line, a.col, a.rule).cmp(&(&b.rel, b.line, b.col, b.rule))
    };
    analysis.violations.sort_by(by_pos);
    analysis.ratcheted.sort_by(by_pos);
    analysis.allowed.sort_by(by_pos);
    analysis.marker_errors.sort();

    // Ratchet: observed counts per (rule, crate) vs baseline.
    for f in &analysis.ratcheted {
        *analysis
            .counts
            .entry((f.rule.to_string(), f.krate.clone()))
            .or_insert(0) += 1;
    }
    for ((rule, krate), &n) in &analysis.counts {
        let base = analysis.baseline.get(rule, krate);
        if n > base {
            analysis.regressions.push(Regression {
                rule: rule.clone(),
                krate: krate.clone(),
                baseline: base,
                current: n,
            });
        }
    }
    Ok(analysis)
}

/// Writes the current ratcheted counts to the baseline file; returns its
/// path and rendered contents.
///
/// # Errors
///
/// Returns a message when the analysis or the write fails.
pub fn update_baseline(opts: &Options) -> Result<(PathBuf, String), String> {
    let analysis = run(opts)?;
    if !analysis.violations.is_empty() || !analysis.marker_errors.is_empty() {
        return Err(
            "refusing to write a baseline while deny-rule violations or marker errors exist \
             (fix those first — only ratcheted rules are baselined)"
                .to_string(),
        );
    }
    let baseline = Baseline::from_counts(&analysis.counts);
    let path = baseline_path(opts);
    let text = baseline.render();
    std::fs::write(&path, &text).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok((path, text))
}

fn baseline_path(opts: &Options) -> PathBuf {
    opts.baseline_path
        .clone()
        .unwrap_or_else(|| opts.root.join("analyze-baseline.toml"))
}

fn load_baseline(opts: &Options) -> Result<Baseline, String> {
    let path = baseline_path(opts);
    if !path.is_file() {
        return Ok(Baseline::empty());
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// `rel-file → hot fn names` from the manifest.
fn load_hotpaths(opts: &Options) -> Result<BTreeMap<String, Vec<String>>, String> {
    let path = opts
        .hotpaths_path
        .clone()
        .unwrap_or_else(|| opts.root.join("analyze-hotpaths.toml"));
    if !path.is_file() {
        return Ok(BTreeMap::new());
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc = MiniToml::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (file, fns) in doc.section("hot") {
        map.entry(file.to_string()).or_default().extend(
            fns.split(',')
                .map(|f| f.trim().to_string())
                .filter(|f| !f.is_empty()),
        );
    }
    Ok(map)
}

/// Collects every file to scan under `root`.
///
/// Workspace mode (`root/crates` exists): every crate directory except the
/// checker itself, all trees, plus the workspace-root facade `src/`,
/// `tests/`, and `examples/`. Fixture mode: every `.rs` under `root` as one
/// pseudo-crate's `src` tree.
fn collect_jobs(root: &Path) -> Result<Vec<Job>, String> {
    let mut jobs = Vec::new();
    let crates = root.join("crates");
    if !crates.is_dir() {
        if !root.is_dir() {
            return Err(format!("--root {}: not a directory", root.display()));
        }
        push_tree(root, root, "fixture", Tree::Src, &mut jobs)?;
        return Ok(jobs);
    }
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)
        .map_err(|e| format!("read_dir {}: {e}", crates.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        // The checker is exempt: it must name the banned patterns to ban
        // them (and its fixtures are deliberate violations).
        if name == "xtask" || name.is_empty() {
            continue;
        }
        for (sub, tree) in [
            ("src", Tree::Src),
            ("tests", Tree::Tests),
            ("benches", Tree::Benches),
            ("examples", Tree::Examples),
        ] {
            let tdir = dir.join(sub);
            if tdir.is_dir() {
                push_tree(&tdir, root, &name, tree, &mut jobs)?;
            }
        }
    }
    // Workspace-root facade crate and integration trees.
    for (sub, tree) in [
        ("src", Tree::Src),
        ("tests", Tree::Tests),
        ("examples", Tree::Examples),
    ] {
        let tdir = root.join(sub);
        if tdir.is_dir() {
            push_tree(&tdir, root, "sann", tree, &mut jobs)?;
        }
    }
    Ok(jobs)
}

fn push_tree(
    dir: &Path,
    root: &Path,
    krate: &str,
    tree: Tree,
    jobs: &mut Vec<Job>,
) -> Result<(), String> {
    let mut files = Vec::new();
    collect_rs(dir, &mut files)?;
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        jobs.push(Job {
            path,
            rel,
            krate: krate.to_string(),
            tree,
        });
    }
    Ok(())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A parsed `// sann-lint: allow(rule) -- reason` marker.
struct Marker {
    rule: String,
    reason: String,
}

/// Parses a marker out of a raw source line.
///
/// Returns `Ok(None)` for lines without a marker, `Err` for malformed ones —
/// an exception nobody can audit is a violation with extra steps.
fn parse_marker(line: &str) -> Result<Option<Marker>, String> {
    let Some(pos) = line.find("sann-lint:") else {
        return Ok(None);
    };
    let rest = line[pos + "sann-lint:".len()..].trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err("marker must be `sann-lint: allow(<rule>) -- <reason>`".into());
    };
    let Some(close) = args.find(')') else {
        return Err("unclosed allow( in lint marker".into());
    };
    let rule = args[..close].trim();
    if rules::rule(rule).is_none() {
        return Err(format!("unknown lint rule `{rule}` in allow marker"));
    }
    let tail = args[close + 1..].trim_start();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(format!("allow({rule}) marker is missing a `-- <reason>`"));
    }
    Ok(Some(Marker {
        rule: rule.to_string(),
        reason: reason.to_string(),
    }))
}

fn scan_file(
    opts: &Options,
    job: &Job,
    hotpaths: &BTreeMap<String, Vec<String>>,
    analysis: &mut Analysis,
) -> Result<(), String> {
    let source = std::fs::read_to_string(&job.path)
        .map_err(|e| format!("read {}: {e}", job.path.display()))?;
    scan_source_inner(
        opts,
        &job.path,
        &job.rel,
        &job.krate,
        job.tree,
        &source,
        hotpaths.get(&job.rel).map(Vec::as_slice).unwrap_or(&[]),
        analysis,
    );
    Ok(())
}

/// Scans one in-memory source file — also the engine behind the legacy
/// [`crate::lint::scan_source`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_source_inner(
    opts: &Options,
    file: &Path,
    rel: &str,
    krate: &str,
    tree: Tree,
    source: &str,
    hot_fns: &[String],
    analysis: &mut Analysis,
) {
    let raw_lines: Vec<&str> = source.lines().collect();
    let toks = lexer::lex(source);
    let test_mask = rules::cfg_test_mask(&toks);
    let hot_ranges = rules::hot_ranges(&toks, hot_fns);
    let ctx = RuleCtx {
        file,
        rel,
        krate,
        tree,
        lines: &raw_lines,
        toks: &toks,
        test_mask: &test_mask,
        hot_ranges: &hot_ranges,
    };

    let mut found = Vec::new();
    if opts.family_on(Family::Determinism) {
        rules::determinism::check(&ctx, &mut found);
    }
    if opts.family_on(Family::Layering) {
        rules::layering::check(&ctx, &mut found);
    }
    if opts.family_on(Family::PanicPath) {
        rules::panic_path::check(&ctx, &mut found);
    }
    if opts.family_on(Family::CastSafety) {
        rules::cast_safety::check(&ctx, &mut found);
    }
    if opts.family_on(Family::HotLoop) {
        rules::hot_loop::check(&ctx, &mut found);
    }

    // Markers live in comments, so they are parsed from the raw lines.
    let mut markers: Vec<Option<Marker>> = Vec::with_capacity(raw_lines.len());
    for (i, line) in raw_lines.iter().enumerate() {
        match parse_marker(line) {
            Ok(m) => markers.push(m),
            Err(e) => {
                analysis.marker_errors.push(format!("{rel}:{}: {e}", i + 1));
                markers.push(None);
            }
        }
    }
    let allowed_for = |line: u32, rule: &str| -> Option<String> {
        let idx = line as usize - 1;
        for look in [Some(idx), idx.checked_sub(1)] {
            if let Some(Some(m)) = look.and_then(|i| markers.get(i)) {
                if m.rule == rule {
                    return Some(m.reason.clone());
                }
            }
        }
        None
    };

    for mut f in found {
        f.allowed = allowed_for(f.line, f.rule);
        if f.allowed.is_some() {
            analysis.allowed.push(f);
        } else {
            match rules::rule(f.rule).map(|r| r.severity) {
                Some(Severity::Ratchet) => analysis.ratcheted.push(f),
                _ => analysis.violations.push(f),
            }
        }
    }
}

/// The workspace root: the nearest ancestor of the current directory with a
/// `crates/` dir and a `Cargo.toml`, or the current directory itself.
pub fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
