//! The four original determinism rules, migrated from the line scanner to
//! the token stream.
//!
//! Semantics match the legacy `sann-xtask lint` byte for byte on clean code:
//! one finding per (rule, line) even when a line hits a pattern twice, the
//! same rule names, and the same marker suppression. What changed is the
//! false-positive surface — string literals, raw strings, nested comments,
//! and lifetimes can no longer trip a rule — and the false-negative one:
//! `sort_by(…partial_cmp…unwrap…)` is now matched over the call's real
//! argument extent (bracket-matched) instead of a 3-line window.

use super::{is_path2, matching_close, Finding, RuleCtx};
use crate::lexer::TokKind;

/// Runs all four determinism rules over one file.
pub fn check(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    let mut push = PerLine::new(out);
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text {
            "Instant" | "SystemTime" => {
                push.push(ctx.finding(
                    i,
                    "wall-clock",
                    format!("`{}` reads the host clock", t.text),
                ));
            }
            "thread_rng" | "OsRng" | "from_entropy" => {
                push.push(ctx.finding(
                    i,
                    "unseeded-rng",
                    format!("`{}` draws entropy-seeded randomness", t.text),
                ));
            }
            "rand" if is_path2(ctx.toks, i, "rand", "random") => {
                push.push(ctx.finding(
                    i,
                    "unseeded-rng",
                    "`rand::random` draws entropy-seeded randomness".to_string(),
                ));
            }
            "HashMap" | "HashSet" => {
                push.push(ctx.finding(
                    i,
                    "unordered-container",
                    format!("`{}` iterates in randomized order", t.text),
                ));
            }
            "sort_by" | "sort_unstable_by" => {
                // NaN-unsafe sort: the comparator passed to this call goes
                // through partial_cmp(..).unwrap(). Match inside the real
                // argument extent, however many lines it spans.
                let Some(open) = ctx
                    .toks
                    .get(i + 1)
                    .filter(|t| t.is_punct('('))
                    .map(|_| i + 1)
                else {
                    continue;
                };
                let close = matching_close(ctx.toks, open).unwrap_or(ctx.toks.len() - 1);
                let args = &ctx.toks[open..=close];
                if args.iter().any(|t| t.is_ident("partial_cmp"))
                    && args.iter().any(|t| t.is_ident("unwrap"))
                {
                    push.push(ctx.finding(
                        i,
                        "nan-unsafe-sort",
                        format!("`{}` comparator unwraps `partial_cmp`", t.text),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Deduplicates findings per (rule, line), preserving the legacy lint's
/// one-finding-per-line accounting.
struct PerLine<'a> {
    out: &'a mut Vec<Finding>,
}

impl<'a> PerLine<'a> {
    fn new(out: &'a mut Vec<Finding>) -> PerLine<'a> {
        PerLine { out }
    }

    fn push(&mut self, f: Finding) {
        // Tokens arrive in order, so a same-line duplicate sits near the
        // tail of the output vector.
        let dup = self
            .out
            .iter()
            .rev()
            .take(8)
            .any(|p| p.rule == f.rule && p.line == f.line && p.rel == f.rel);
        if !dup {
            self.out.push(f);
        }
    }
}
