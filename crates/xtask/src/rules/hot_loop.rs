//! Hot-loop hygiene: allocation and float-ordering findings inside hot
//! functions.
//!
//! Hot functions are those carrying a `#[sann::hot]` attribute or named in
//! the hot-path manifest (`analyze-hotpaths.toml`) — distance kernels, the
//! executor's event loop, the page-cache access path, top-k maintenance.
//! Two rules apply inside their bodies (nested closures included):
//!
//! * `hot-alloc` — allocating calls (`Vec::new`, `vec!`, `to_vec`, `clone`,
//!   `format!`, `to_string`, `to_owned`, `collect`, `Box::new`,
//!   `String::new/from`) churn the allocator once per query or per event;
//!   preallocate in the caller or reuse a scratch buffer.
//! * `hot-float` — `partial_cmp` comparisons order NaN unpredictably (and
//!   panic when unwrapped); use `total_cmp`. Reductions should keep a fixed
//!   association order — the rule can't see types, so it flags the ordering
//!   API only.
//!
//! Both are ratcheted; existing audited sites live in the baseline.

use super::{is_path2, Finding, RuleCtx};
use crate::lexer::TokKind;

/// Method calls that allocate.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "collect", "clone"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// `Type::method` pairs that allocate.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("Box", "new"),
];

/// Runs both hot-loop rules over one file.
pub fn check(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.tree.ratcheted_rules_apply() || ctx.hot_ranges.is_empty() {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.test_mask[i] || !ctx.in_hot(i) || t.kind != TokKind::Ident {
            continue;
        }
        // hot-alloc: method calls, macros, and constructor paths.
        if ALLOC_METHODS.contains(&t.text)
            && i > 0
            && ctx.toks[i - 1].is_punct('.')
            && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(ctx.finding(
                i,
                "hot-alloc",
                format!("`.{}()` allocates inside a hot function", t.text),
            ));
            continue;
        }
        if ALLOC_MACROS.contains(&t.text) && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            out.push(ctx.finding(
                i,
                "hot-alloc",
                format!("`{}!` allocates inside a hot function", t.text),
            ));
            continue;
        }
        if ALLOC_PATHS
            .iter()
            .any(|(ty, method)| is_path2(ctx.toks, i, ty, method))
        {
            out.push(ctx.finding(
                i,
                "hot-alloc",
                format!(
                    "`{}::{}` allocates inside a hot function",
                    t.text,
                    ctx.toks[i + 3].text
                ),
            ));
            continue;
        }
        // hot-float: non-total float ordering.
        if t.text == "partial_cmp" {
            out.push(
                ctx.finding(
                    i,
                    "hot-float",
                    "`partial_cmp` in a hot function orders NaN unpredictably; use `total_cmp`"
                        .to_string(),
                ),
            );
        }
    }
}
