//! The analyzer's rule registry and the shared token-structure helpers.
//!
//! Every rule consumes one file's token stream (see [`crate::lexer`]) through
//! a [`RuleCtx`] and appends [`Finding`]s. Rules come in two severities:
//!
//! * [`Severity::Deny`] — zero tolerance; any unsuppressed finding fails the
//!   run (the determinism family and crate layering);
//! * [`Severity::Ratchet`] — counted against the per-(rule, crate) baseline
//!   in `analyze-baseline.toml`; the count may never grow, so pre-existing
//!   findings don't block but regressions do (panic paths, bare casts,
//!   hot-loop hygiene).
//!
//! Suppression uses the same `sann-lint: allow(<rule>) -- <reason>` markers
//! the determinism lint always had, on the finding's line or the line above.

pub mod cast_safety;
pub mod determinism;
pub mod hot_loop;
pub mod layering;
pub mod panic_path;

use crate::lexer::{Tok, TokKind};
use std::path::{Path, PathBuf};

/// How a rule's findings gate the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Any unsuppressed finding is an error.
    Deny,
    /// Findings are counted per crate against the ratcheted baseline; only
    /// count regressions are errors.
    Ratchet,
}

/// Rule families, selectable with `analyze --rules <family,...>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// The four original `sann-xtask lint` rules.
    Determinism,
    /// Crate-dependency layering against the declared DAG.
    Layering,
    /// `unwrap`/`expect`/`panic!` and hot-function indexing.
    PanicPath,
    /// Bare `as` numeric casts.
    CastSafety,
    /// Allocation and float-ordering hygiene inside hot functions.
    HotLoop,
}

impl Family {
    /// The family's `--rules` name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Determinism => "determinism",
            Family::Layering => "layering",
            Family::PanicPath => "panic-path",
            Family::CastSafety => "cast-safety",
            Family::HotLoop => "hot-loop",
        }
    }

    /// All families, in reporting order.
    pub const ALL: &'static [Family] = &[
        Family::Determinism,
        Family::Layering,
        Family::PanicPath,
        Family::CastSafety,
        Family::HotLoop,
    ];

    /// Parses a `--rules` name.
    pub fn parse(name: &str) -> Option<Family> {
        Family::ALL.iter().copied().find(|f| f.name() == name)
    }
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Marker-facing rule name (`allow(<name>)`).
    pub name: &'static str,
    /// The family the rule belongs to.
    pub family: Family,
    /// Deny or ratcheted.
    pub severity: Severity,
    /// Why the pattern is banned or tracked.
    pub why: &'static str,
}

/// Every rule the analyzer knows, in reporting order.
pub const REGISTRY: &[RuleInfo] = &[
    RuleInfo {
        name: "wall-clock",
        family: Family::Determinism,
        severity: Severity::Deny,
        why: "wall-clock time varies run to run; simulated time must come from the DES clock",
    },
    RuleInfo {
        name: "unseeded-rng",
        family: Family::Determinism,
        severity: Severity::Deny,
        why: "entropy-seeded randomness breaks replay; use sann_core::rng::SplitMix64",
    },
    RuleInfo {
        name: "unordered-container",
        family: Family::Determinism,
        severity: Severity::Deny,
        why: "HashMap/HashSet iteration order is randomized; use BTreeMap/BTreeSet",
    },
    RuleInfo {
        name: "nan-unsafe-sort",
        family: Family::Determinism,
        severity: Severity::Deny,
        why: "sort_by(partial_cmp().unwrap()) panics on NaN; use total_cmp",
    },
    RuleInfo {
        name: "layering",
        family: Family::Layering,
        severity: Severity::Deny,
        why: "crate dependencies must follow the declared DAG \
              (core ← {datagen,quant,ssdsim,obs} ← index ← engine ← vdb ← bench)",
    },
    RuleInfo {
        name: "panic-path",
        family: Family::PanicPath,
        severity: Severity::Ratchet,
        why: "a panic inside the simulation turns into a silent wrong figure or an aborted \
              sweep; use typed errors or document the invariant with an allow marker",
    },
    RuleInfo {
        name: "cast-truncation",
        family: Family::CastSafety,
        severity: Severity::Ratchet,
        why: "bare `as` numeric casts silently truncate/saturate; use sann_core::cast \
              helpers, try_into, or document why the cast is lossless",
    },
    RuleInfo {
        name: "hot-alloc",
        family: Family::HotLoop,
        severity: Severity::Ratchet,
        why: "allocation inside a hot function churns the allocator on every query; \
              preallocate outside the loop or use a scratch buffer",
    },
    RuleInfo {
        name: "hot-float",
        family: Family::HotLoop,
        severity: Severity::Ratchet,
        why: "non-total float comparisons in hot paths order NaN unpredictably; \
              use total_cmp (and keep reductions in a fixed association order)",
    },
];

/// Looks a rule up by name.
pub fn rule(name: &str) -> Option<&'static RuleInfo> {
    REGISTRY.iter().find(|r| r.name == name)
}

/// Which per-crate source tree a file belongs to — severity policies differ
/// (tests may unwrap; benches may allocate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tree {
    /// `src/` (including `src/bin/`): full policy.
    Src,
    /// `tests/`: determinism and layering only.
    Tests,
    /// `benches/`: determinism and layering only.
    Benches,
    /// `examples/`: determinism and layering only.
    Examples,
}

impl Tree {
    /// Whether ratcheted rules (panic-path, casts, hot-loop) apply here.
    pub fn ratcheted_rules_apply(self) -> bool {
        matches!(self, Tree::Src)
    }
}

/// One rule hit (suppression is resolved by the driver, not the rule).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Absolute path of the file.
    pub file: PathBuf,
    /// Workspace-relative path with forward slashes (stable across hosts).
    pub rel: String,
    /// Crate key for baseline accounting (`core`, `engine`, …).
    pub krate: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What fired, specifically.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// The marker reason when suppressed.
    pub allowed: Option<String>,
}

/// Everything a rule gets to look at for one file.
pub struct RuleCtx<'a> {
    /// Absolute path.
    pub file: &'a Path,
    /// Workspace-relative forward-slash path.
    pub rel: &'a str,
    /// Crate key (`core`, `engine`, … or the fixture pseudo-crate).
    pub krate: &'a str,
    /// Which tree the file sits in.
    pub tree: Tree,
    /// Raw source lines (1-based access via `line(n)`).
    pub lines: &'a [&'a str],
    /// The token stream.
    pub toks: &'a [Tok<'a>],
    /// Per-token: inside a `#[cfg(test)]` module (ratcheted rules skip).
    pub test_mask: &'a [bool],
    /// Token-index ranges `[start, end)` of hot function bodies.
    pub hot_ranges: &'a [(usize, usize)],
}

impl RuleCtx<'_> {
    /// The trimmed source line a token sits on.
    pub fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Whether token `i` is inside a hot function body.
    pub fn in_hot(&self, i: usize) -> bool {
        self.hot_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// Builds a finding for the token at index `i`.
    pub fn finding(&self, i: usize, rule: &'static str, message: String) -> Finding {
        let t = &self.toks[i];
        Finding {
            rule,
            file: self.file.to_path_buf(),
            rel: self.rel.to_string(),
            krate: self.krate.to_string(),
            line: t.line,
            col: t.col,
            message,
            excerpt: self.excerpt(t.line),
            allowed: None,
        }
    }
}

/// Finds the token index of the bracket matching the opener at `open`
/// (which must be `(`, `[`, or `{`). Returns `None` when unbalanced.
pub fn matching_close(toks: &[Tok<'_>], open: usize) -> Option<usize> {
    let (o, c) = match toks[open].text {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Whether tokens at `i` form the path `a::b` (four tokens).
pub fn is_path2(toks: &[Tok<'_>], i: usize, a: &str, b: &str) -> bool {
    toks[i].is_ident(a)
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(b))
}

/// The extent of one `fn` item: the name token and the `[body_open,
/// body_close]` token range of its `{ … }` body.
#[derive(Debug, Clone, Copy)]
pub struct FnExtent {
    /// Index of the name token (the ident after `fn`).
    pub name: usize,
    /// Index of the opening `{`.
    pub body_open: usize,
    /// Index of the matching `}`.
    pub body_close: usize,
}

/// Finds every `fn` item (including nested ones) and its body extent.
pub fn fn_extents(toks: &[Tok<'_>]) -> Vec<FnExtent> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let _ = name;
        // Scan forward for the body `{`, skipping the signature. Generic
        // bounds and where clauses contain no braces; a `;` first means a
        // trait method declaration with no body.
        let mut j = i + 2;
        let mut body_open = None;
        while let Some(t) = toks.get(j) {
            if t.is_punct('{') {
                body_open = Some(j);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        let Some(close) = matching_close(toks, open) else {
            continue;
        };
        out.push(FnExtent {
            name: i + 1,
            body_open: open,
            body_close: close,
        });
    }
    out
}

/// Marks every token inside a `#[cfg(test)] mod … { … }` region. Ratcheted
/// rules skip these: tests may unwrap, cast, and allocate freely.
pub fn cfg_test_mask(toks: &[Tok<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i + 6 < toks.len() {
        // #[cfg(test)]
        let is_cfg_test = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then expect `mod name {` or an
        // attributed item; only module regions are masked wholesale.
        let mut j = i + 7;
        while toks.get(j).is_some_and(|t| t.is_punct('#'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching_close(toks, j + 1) {
                Some(close) => j = close + 1,
                None => break,
            }
        }
        if toks.get(j).is_some_and(|t| t.is_ident("mod")) {
            // Find the module's opening brace (after the name).
            let mut k = j + 1;
            while let Some(t) = toks.get(k) {
                if t.is_punct('{') {
                    if let Some(close) = matching_close(toks, k) {
                        for m in &mut mask[k..=close] {
                            *m = true;
                        }
                        i = close + 1;
                    } else {
                        // Unbalanced: mask to EOF.
                        for m in &mut mask[k..] {
                            *m = true;
                        }
                        i = toks.len();
                    }
                    break;
                }
                if t.is_punct(';') {
                    break; // out-of-line module file
                }
                k += 1;
            }
            if i <= j {
                i = k + 1;
            }
        } else {
            i = j;
        }
    }
    mask
}

/// Token ranges `[body_open, body_close)` of hot functions: those carrying a
/// `#[sann::hot]` attribute, plus those named in the hot-path manifest for
/// this file (`manifest_fns`).
pub fn hot_ranges(toks: &[Tok<'_>], manifest_fns: &[String]) -> Vec<(usize, usize)> {
    let extents = fn_extents(toks);
    let mut out = Vec::new();
    for ext in &extents {
        let name = toks[ext.name].text;
        let hot = manifest_fns.iter().any(|f| f == name) || has_hot_attr(toks, ext.name);
        if hot {
            out.push((ext.body_open, ext.body_close + 1));
        }
    }
    out
}

/// Whether the `fn` whose name token is at `name_idx` carries a
/// `#[sann::hot]` attribute. Scans backwards over the attribute/visibility/
/// qualifier prefix of the item.
fn has_hot_attr(toks: &[Tok<'_>], name_idx: usize) -> bool {
    // Walk backwards across `fn`, qualifiers, visibility, and attributes.
    let mut i = name_idx.saturating_sub(1); // the `fn` keyword
    loop {
        if i == 0 {
            return false;
        }
        let t = &toks[i - 1];
        if t.kind == TokKind::Ident
            && matches!(
                t.text,
                "fn" | "pub" | "const" | "unsafe" | "extern" | "async"
            )
        {
            i -= 1;
            continue;
        }
        if t.is_punct(')') {
            // pub(crate) — skip the group.
            let mut depth = 0usize;
            let mut j = i - 1;
            loop {
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            i = j;
            continue;
        }
        if t.is_punct(']') {
            // An attribute `#[ … ]` ending here; check its contents.
            let mut depth = 0usize;
            let mut j = i - 1;
            loop {
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            if j == 0 || !toks[j - 1].is_punct('#') {
                return false;
            }
            // `#[sann::hot]` → tokens: sann :: hot between j+1 and i-1.
            if i >= j + 4 && is_path2(toks, j + 1, "sann", "hot") {
                return true;
            }
            i = j - 1;
            continue;
        }
        return false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_extents_cover_nested_functions() {
        let toks = lex("fn outer() { fn inner() { body(); } tail(); }");
        let exts = fn_extents(&toks);
        assert_eq!(exts.len(), 2);
        assert_eq!(toks[exts[0].name].text, "outer");
        assert_eq!(toks[exts[1].name].text, "inner");
        assert!(exts[0].body_close > exts[1].body_close);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let toks = lex("trait T { fn decl(&self) -> u32; fn with_default(&self) { x(); } }");
        let exts = fn_extents(&toks);
        assert_eq!(exts.len(), 1);
        assert_eq!(toks[exts[0].name].text, "with_default");
    }

    #[test]
    fn cfg_test_mask_covers_test_modules_only() {
        let src = "fn prod() { a(); }\n#[cfg(test)]\nmod tests { fn t() { b(); } }\nfn prod2() {}";
        let toks = lex(src);
        let mask = cfg_test_mask(&toks);
        let at = |text: &str| toks.iter().position(|t| t.text == text).unwrap();
        assert!(!mask[at("a")]);
        assert!(mask[at("b")]);
        assert!(!mask[at("prod2")]);
    }

    #[test]
    fn hot_attr_detected_through_other_attrs_and_visibility() {
        let src =
            "#[inline]\n#[sann::hot]\npub(crate) fn kernel(x: &[f32]) { x.len(); }\nfn cold() {}";
        let toks = lex(src);
        let ranges = hot_ranges(&toks, &[]);
        assert_eq!(ranges.len(), 1);
        let kernel_body = toks.iter().position(|t| t.text == "len").unwrap();
        assert!(ranges[0].0 <= kernel_body && kernel_body < ranges[0].1);
    }

    #[test]
    fn manifest_names_mark_hot_without_attr() {
        let toks = lex("fn listed() { y(); } fn unlisted() { z(); }");
        let ranges = hot_ranges(&toks, &["listed".to_string()]);
        assert_eq!(ranges.len(), 1);
        let y = toks.iter().position(|t| t.text == "y").unwrap();
        assert!(ranges[0].0 <= y && y < ranges[0].1);
    }
}
