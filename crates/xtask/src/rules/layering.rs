//! Crate-layering enforcement: actual `use`/path edges between `sann_*`
//! crates must follow the declared DAG.
//!
//! The architecture is layered —
//!
//! ```text
//! core ← {datagen, quant, ssdsim, obs} ← index ← engine ← vdb ← bench
//! ```
//!
//! — and PRs that churn the engine/shard layers must not quietly invert an
//! edge (e.g. `ssdsim` reaching up into `engine`). The rule scans every
//! `sann_<crate>` identifier in a file (imports *and* inline paths) and
//! checks the referenced crate against the transitive closure of the
//! declared dependencies of the crate the file belongs to. Test trees may
//! additionally use `datagen` (the dev-dependency fixture layer).

use super::{Finding, RuleCtx, Tree};
use crate::lexer::TokKind;

/// The declared direct dependencies of each product crate. Order is layer
/// order; the allowed set is the transitive closure.
pub const DECLARED_DEPS: &[(&str, &[&str])] = &[
    ("core", &[]),
    ("obs", &["core"]),
    ("datagen", &["core"]),
    ("quant", &["core"]),
    ("ssdsim", &["core", "obs"]),
    ("index", &["core", "obs", "quant", "ssdsim"]),
    ("engine", &["core", "obs", "ssdsim", "index"]),
    (
        "vdb",
        &["core", "datagen", "quant", "index", "ssdsim", "engine"],
    ),
    (
        "bench",
        &[
            "core", "obs", "datagen", "quant", "index", "ssdsim", "engine", "vdb",
        ],
    ),
];

/// The transitive closure of [`DECLARED_DEPS`] for `krate`, or `None` for a
/// crate outside the DAG (the facade crate and fixture trees skip the rule).
pub fn allowed_deps(krate: &str) -> Option<Vec<&'static str>> {
    let direct = DECLARED_DEPS.iter().find(|(c, _)| *c == krate)?.1;
    let mut closure: Vec<&'static str> = Vec::new();
    let mut stack: Vec<&'static str> = direct.to_vec();
    while let Some(dep) = stack.pop() {
        if closure.contains(&dep) {
            continue;
        }
        closure.push(dep);
        if let Some((_, next)) = DECLARED_DEPS.iter().find(|(c, _)| *c == dep) {
            stack.extend(next.iter().copied());
        }
    }
    closure.sort_unstable();
    Some(closure)
}

/// Runs the layering rule over one file.
pub fn check(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    let Some(allowed) = allowed_deps(ctx.krate) else {
        return;
    };
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(referenced) = t.text.strip_prefix("sann_") else {
            continue;
        };
        if referenced == ctx.krate || allowed.contains(&referenced) {
            continue;
        }
        // Dev-dependency layer: tests and benches (including `#[cfg(test)]`
        // modules inside src) may build fixtures with the data generator
        // even where the product crate may not.
        if referenced == "datagen"
            && (ctx.test_mask[i]
                || matches!(ctx.tree, Tree::Tests | Tree::Benches | Tree::Examples))
        {
            continue;
        }
        let msg = if DECLARED_DEPS.iter().any(|(c, _)| *c == referenced) {
            format!(
                "crate `{}` must not depend on `{referenced}` \
                 (allowed: {})",
                ctx.krate,
                if allowed.is_empty() {
                    "nothing — it is the bottom layer".to_string()
                } else {
                    allowed.join(", ")
                }
            )
        } else {
            format!(
                "crate `{}` references `sann_{referenced}`, which is not in the layering DAG",
                ctx.krate
            )
        };
        out.push(ctx.finding(i, "layering", msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_transitive() {
        assert_eq!(allowed_deps("core").unwrap(), Vec::<&str>::new());
        let engine = allowed_deps("engine").unwrap();
        // index pulls in quant, so engine's closure includes it.
        for dep in ["core", "obs", "ssdsim", "index", "quant"] {
            assert!(engine.contains(&dep), "engine closure missing {dep}");
        }
        assert!(!engine.contains(&"vdb"));
        assert!(!engine.contains(&"bench"));
    }

    #[test]
    fn bench_sits_on_top() {
        let bench = allowed_deps("bench").unwrap();
        assert_eq!(bench.len(), 8, "{bench:?}");
    }

    #[test]
    fn unknown_crates_are_outside_the_dag() {
        assert!(allowed_deps("xtask").is_none());
        assert!(allowed_deps("sann").is_none());
    }
}
