//! Panic-path audit: `unwrap`/`expect` calls, panicking macros, and slice
//! indexing inside hot functions.
//!
//! A panic in the executor's I/O completion path or the ssdsim scheduler
//! doesn't just crash: under `catch_unwind`-free batch sweeps it aborts a
//! multi-hour characterization run, and a *near*-panic (an unwrap "that can
//! never fail" becoming reachable after a refactor) is how silent wrong
//! figures happen. The rule is ratcheted: the existing audited sites are
//! baselined, new ones need a typed error or a documented
//! `sann-lint: allow(panic-path) -- <invariant>` marker.
//!
//! Test trees and `#[cfg(test)]` modules are exempt — tests *should* unwrap.

use super::{Finding, RuleCtx};
use crate::lexer::TokKind;

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the panic-path rule over one file.
pub fn check(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.tree.ratcheted_rules_apply() {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.test_mask[i] {
            continue;
        }
        match t.kind {
            TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                // Only method calls: `.unwrap(` / `.expect(`. Idents like
                // `unwrap_or` are distinct tokens and never match.
                let is_method = i > 0
                    && ctx.toks[i - 1].is_punct('.')
                    && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_method {
                    out.push(ctx.finding(
                        i,
                        "panic-path",
                        format!("`.{}()` panics when the value is absent", t.text),
                    ));
                }
            }
            TokKind::Ident
                if PANIC_MACROS.contains(&t.text)
                    && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                out.push(ctx.finding(
                    i,
                    "panic-path",
                    format!("`{}!` aborts the simulation when reached", t.text),
                ));
            }
            TokKind::Punct if t.text == "[" && ctx.in_hot(i) => {
                // Indexing in a hot function: `expr[i]` panics on an
                // out-of-range index. Heuristic: `[` directly after a value
                // token (ident, `)`, `]`) is an index or slice expression;
                // after `#`, `=`, `(`, `,`, `&`, … it is an attribute,
                // array literal, or type, which cannot panic.
                let indexes_value = i > 0
                    && (ctx.toks[i - 1].kind == TokKind::Ident
                        || ctx.toks[i - 1].is_punct(')')
                        || ctx.toks[i - 1].is_punct(']'))
                    && !ctx.toks[i - 1].is_ident("mut")
                    && !ctx.toks[i - 1].is_ident("return");
                if indexes_value {
                    out.push(
                        ctx.finding(
                            i,
                            "panic-path",
                            "slice indexing in a hot function panics out of range; \
                         use get()/iterators or document the bound invariant"
                                .to_string(),
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}
