//! Cast-safety audit: bare `as` numeric casts.
//!
//! An `as` cast between numeric types never fails — it truncates, wraps,
//! saturates, or rounds. In sim-time arithmetic (`f64` µs → `u64` ns),
//! byte-offset math (`u64` offsets → `u32` request lengths), and recall
//! accounting that is exactly the silent-wrong-figure class the paper's
//! methodology cannot tolerate: a >4 GiB layout whose offset gets squeezed
//! through `u32` produces plausible-looking but wrong I/O traces.
//!
//! The rule is ratcheted. New casts should use the checked helpers
//! (`sann_core::cast`, the engine's `us_to_ns` family), `try_into` with
//! context, or carry a `sann-lint: allow(cast-truncation) -- <why lossless>`
//! marker. Test trees and `#[cfg(test)]` modules are exempt.

use super::{Finding, RuleCtx};
use crate::lexer::TokKind;

/// Primitive numeric types an `as` cast can target.
const NUMERIC: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Runs the cast-safety rule over one file.
pub fn check(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.tree.ratcheted_rules_apply() {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.test_mask[i] || !t.is_ident("as") {
            continue;
        }
        let Some(target) = ctx.toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !NUMERIC.contains(&target.text) {
            continue; // `use x as y`, `as &dyn T`, `as char`, …
        }
        out.push(ctx.finding(
            i,
            "cast-truncation",
            format!(
                "bare `as {}` cast truncates/saturates silently; use a checked \
                 helper or try_into",
                target.text
            ),
        ));
    }
}
