//! A hand-rolled, std-only Rust lexer producing a token stream with spans.
//!
//! The analyzer's rules ([`crate::rules`]) all operate on this token stream
//! instead of the line-regex scanning the original `lint` used, which means
//! they are immune to the classic false-positive/negative classes:
//!
//! * prose in `//`/`/* */`/doc comments never produces tokens;
//! * string literals — including raw strings `r#"…"#` with any number of
//!   hashes, byte strings, and escapes — become single [`TokKind::Str`]
//!   tokens whose *contents* are never pattern-matched;
//! * nested block comments (`/* /* */ */`) are tracked with a depth counter;
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`), so a
//!   generic parameter never terminates a phantom "string";
//! * multi-line constructs keep exact line/column spans, so a finding
//!   points at the token, not at whatever line a regex happened to anchor.
//!
//! The lexer is deliberately *not* a parser: it has no grammar, only a
//! faithful tokenization. Rules that need structure (function extents, call
//! argument ranges, attribute targets) recover it from the token stream with
//! bracket matching — see [`crate::rules::RuleCtx`].

/// The coarse class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `as`, `HashMap`, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — the leading `'` is included in the
    /// token text.
    Lifetime,
    /// A numeric literal, including any suffix (`4096`, `1_000u64`, `0x1f`,
    /// `1e-3`, `2.5f32`).
    Num,
    /// A string literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`. The token text includes the delimiters.
    Str,
    /// A char or byte literal: `'x'`, `'\n'`, `b'a'`.
    Char,
    /// A single punctuation character (`.`, `:`, `(`, `[`, `!`, …).
    /// Multi-character operators appear as consecutive `Punct` tokens.
    Punct,
}

/// One token with its source span.
#[derive(Debug, Clone)]
pub struct Tok<'a> {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok<'_> {
    /// Whether this is an identifier with exactly the given text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Whether this is a punctuation token with exactly the given char.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// Tokenizes `source`, skipping whitespace and comments.
///
/// The lexer never fails: malformed input (an unterminated string, a stray
/// control character) degenerates to best-effort tokens so the analyzer can
/// still report on the rest of the file.
pub fn lex(source: &str) -> Vec<Tok<'_>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    /// Current byte offset.
    i: usize,
    line: u32,
    col: u32,
    out: Vec<Tok<'a>>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    /// Advances one char, maintaining line/col. Multi-byte UTF-8 chars
    /// advance the column by one.
    fn bump(&mut self) {
        let b = self.bytes[self.i];
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.i += 1;
        } else if b < 0x80 {
            self.col += 1;
            self.i += 1;
        } else {
            // Skip the remaining continuation bytes of this UTF-8 char.
            self.i += 1;
            while self.peek(0).is_some_and(|b| (b & 0xC0) == 0x80) {
                self.i += 1;
            }
            self.col += 1;
        }
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        self.out.push(Tok {
            kind,
            text: &self.src[start..self.i],
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Tok<'a>> {
        while let Some(b) = self.peek(0) {
            let (start, line, col) = (self.i, self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => self.skip_line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.skip_block_comment(),
                b'r' | b'b' if self.raw_or_byte_string(start, line, col) => {}
                b'b' if self.peek(1) == Some(b'\'') => {
                    // Byte literal b'x'.
                    self.bump();
                    self.char_literal();
                    self.push(TokKind::Char, start, line, col);
                }
                b'"' => {
                    self.string_literal();
                    self.push(TokKind::Str, start, line, col);
                }
                b'\'' => {
                    if self.lifetime_ahead() {
                        self.bump(); // '
                        while self.peek(0).is_some_and(is_ident_byte) {
                            self.bump();
                        }
                        self.push(TokKind::Lifetime, start, line, col);
                    } else {
                        self.char_literal();
                        self.push(TokKind::Char, start, line, col);
                    }
                }
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokKind::Num, start, line, col);
                }
                _ if is_ident_start(b) || b >= 0x80 => {
                    while self.peek(0).is_some_and(|b| is_ident_byte(b) || b >= 0x80) {
                        self.bump();
                    }
                    self.push(TokKind::Ident, start, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    fn skip_line_comment(&mut self) {
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.bump();
        }
    }

    fn skip_block_comment(&mut self) {
        // Nested: /* /* */ */ needs two closers.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => return,
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, and friends. Returns
    /// false (consuming nothing) when the `r`/`b` starts a plain identifier.
    fn raw_or_byte_string(&mut self, start: usize, line: u32, col: u32) -> bool {
        let mut j = self.i;
        // Optional b, optional r, optional hashes, then a quote.
        if self.bytes.get(j) == Some(&b'b') {
            j += 1;
        }
        let raw = self.bytes.get(j) == Some(&b'r');
        if raw {
            j += 1;
        }
        let mut hashes = 0usize;
        while self.bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if self.bytes.get(j) != Some(&b'"') || (!raw && (hashes > 0 || self.bytes[self.i] != b'b'))
        {
            return false;
        }
        // Consume the prefix and the opening quote.
        while self.i <= j {
            self.bump();
        }
        if raw {
            // Scan for `"` followed by `hashes` hashes; no escapes in raw.
            loop {
                match self.peek(0) {
                    None => break,
                    Some(b'"') => {
                        let mut seen = 0usize;
                        while seen < hashes && self.peek(1 + seen) == Some(b'#') {
                            seen += 1;
                        }
                        if seen == hashes {
                            for _ in 0..=hashes {
                                self.bump();
                            }
                            break;
                        }
                        self.bump();
                    }
                    Some(_) => self.bump(),
                }
            }
        } else {
            self.plain_string_body();
        }
        self.push(TokKind::Str, start, line, col);
        true
    }

    fn string_literal(&mut self) {
        self.bump(); // opening quote
        self.plain_string_body();
    }

    /// Consumes a non-raw string body up to and including the closing quote,
    /// honoring backslash escapes.
    fn plain_string_body(&mut self) {
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// After the cursor sits on `'`: is this a lifetime rather than a char
    /// literal? A lifetime is `'` + ident start, *not* followed by a closing
    /// quote (`'a'` is a char; `'a` is a lifetime; `'\n'` is a char).
    fn lifetime_ahead(&self) -> bool {
        let Some(first) = self.peek(1) else {
            return false;
        };
        if first == b'\\' || !is_ident_start(first) {
            return false;
        }
        // Scan the ident run; a quote right after means char literal.
        let mut j = 2;
        while self.peek(j).is_some_and(is_ident_byte) {
            j += 1;
        }
        self.peek(j) != Some(b'\'')
    }

    fn char_literal(&mut self) {
        self.bump(); // opening '
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some(b'\'') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
    }

    fn number(&mut self) {
        // Integer part (any radix prefix is just ident bytes plus digits).
        while self.peek(0).is_some_and(|b| is_ident_byte(b) || b == b'.') {
            // A second `.` or a `..` range operator ends the number.
            if self.peek(0) == Some(b'.') {
                if self.peek(1) == Some(b'.') {
                    break;
                }
                // `1.max(…)` — method call on an integer, not a float.
                if self.peek(1).is_some_and(is_ident_start) {
                    break;
                }
            }
            // Exponent sign: 1e-3 / 1E+5.
            if matches!(self.peek(0), Some(b'e') | Some(b'E'))
                && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                && self.peek(2).is_some_and(|b| b.is_ascii_digit())
            {
                self.bump();
                self.bump();
                continue;
            }
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_nums_and_puncts() {
        assert_eq!(
            kinds("let x2 = 42;"),
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x2"),
                (TokKind::Punct, "="),
                (TokKind::Num, "42"),
                (TokKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn numeric_literal_flavors_stay_single_tokens() {
        for n in ["1_000u64", "0x1f", "0b1010", "2.5f32", "1e6", "1e-3", "3."] {
            let toks = kinds(n);
            assert_eq!(toks, vec![(TokKind::Num, n)], "{n}");
        }
        // Range and method-call dots end the number.
        assert_eq!(
            kinds("0..10"),
            vec![
                (TokKind::Num, "0"),
                (TokKind::Punct, "."),
                (TokKind::Punct, "."),
                (TokKind::Num, "10"),
            ]
        );
        assert_eq!(kinds("1.max(2)").first().unwrap(), &(TokKind::Num, "1"));
    }

    #[test]
    fn line_and_block_comments_produce_no_tokens() {
        assert!(kinds("// HashMap Instant unwrap()").is_empty());
        assert!(kinds("/* thread_rng() */").is_empty());
        assert!(kinds("/// doc about HashMap\n//! inner doc").is_empty());
    }

    #[test]
    fn nested_block_comments() {
        // The old line scanner handled this; the lexer must too — and code
        // after the fully-closed comment must tokenize.
        let toks = kinds("/* outer /* inner */ still comment */ fn after() {}");
        assert_eq!(toks[0], (TokKind::Ident, "fn"));
        assert_eq!(toks[1], (TokKind::Ident, "after"));
    }

    #[test]
    fn unterminated_block_comment_swallows_rest() {
        assert!(kinds("/* /* never closed */ fn hidden() {}").is_empty());
    }

    #[test]
    fn plain_strings_are_one_token_with_escapes() {
        assert_eq!(
            kinds(r#"let s = "Instant \"quoted\" HashMap";"#)[3],
            (TokKind::Str, r#""Instant \"quoted\" HashMap""#)
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        // The killer case for the line scanner: a raw string containing an
        // unescaped quote. The lexer counts hashes instead.
        let src = r##"let s = r#"contains " a quote and unwrap()"#; let x = 1;"##;
        let toks = kinds(src);
        let s = toks.iter().find(|t| t.0 == TokKind::Str).unwrap();
        assert!(s.1.starts_with("r#\"") && s.1.ends_with("\"#"), "{}", s.1);
        // Code after the raw string still tokenizes.
        assert!(toks.iter().any(|t| t.1 == "x"));
        assert!(!toks.iter().any(|t| t.1 == "unwrap"));
    }

    #[test]
    fn raw_strings_more_hashes() {
        let src = "r##\"inner \"# not the end\"##";
        let toks = kinds(src);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[0].1, src);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(kinds(r#"b"bytes""#), vec![(TokKind::Str, r#"b"bytes""#)]);
        assert_eq!(
            kinds(r##"br#"raw "bytes"#"##),
            vec![(TokKind::Str, r##"br#"raw "bytes"#"##)]
        );
        assert_eq!(kinds("b'x'"), vec![(TokKind::Char, "b'x'")]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        // 'a> is a lifetime; 'a' is a char; '\'' is an escaped char.
        assert_eq!(
            kinds("fn f<'a>(x: &'a str) {}")[3],
            (TokKind::Lifetime, "'a")
        );
        assert_eq!(kinds("let c = 'a';")[3], (TokKind::Char, "'a'"));
        assert_eq!(kinds(r"let c = '\'';")[3], (TokKind::Char, r"'\''"));
        assert_eq!(kinds(r"let c = '\n';")[3], (TokKind::Char, r"'\n'"));
        assert_eq!(kinds("'static")[0], (TokKind::Lifetime, "'static"));
    }

    #[test]
    fn lifetime_does_not_eat_following_code() {
        // The old scanner's worst case: a lifetime followed later by a char
        // literal must not pair up as one phantom string.
        let toks = kinds("struct S<'a> { x: &'a u8 } let c = 'q'; let bad = Instant::now();");
        assert!(toks.iter().any(|t| t.1 == "Instant"), "{toks:?}");
    }

    #[test]
    fn spans_are_one_based_and_track_lines() {
        let toks = lex("fn a() {\n    unwrap\n}");
        let u = toks.iter().find(|t| t.text == "unwrap").unwrap();
        assert_eq!((u.line, u.col), (2, 5));
        let f = &toks[0];
        assert_eq!((f.line, f.col), (1, 1));
    }

    #[test]
    fn multibyte_chars_count_one_column() {
        let toks = lex("let s = \"héllo\"; bad");
        let b = toks.iter().find(|t| t.text == "bad").unwrap();
        assert_eq!(b.line, 1);
        assert_eq!(b.col, 18);
    }

    #[test]
    fn r_and_b_prefixed_idents_are_not_strings() {
        let toks = kinds("let r = 1; let b = 2; let raw = r; fn br2() {}");
        assert!(toks.iter().all(|t| t.0 != TokKind::Str));
        assert!(toks.iter().any(|t| t.1 == "raw"));
        assert!(toks.iter().any(|t| t.1 == "br2"));
    }
}
