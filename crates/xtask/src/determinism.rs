//! The runtime determinism audit: run a small sweep twice, demand
//! byte-identical metrics.
//!
//! The audit builds two completely fresh [`BenchContext`]s (nothing shared,
//! not even caches), prepares the same storage-based and memory-based setups
//! on the same seeded dataset, validates every query trace against the
//! structural invariants ([`sann_index::QueryTrace::validate`]), and then
//! compares [`RunMetrics::canonical_bytes`] of every (setup × concurrency)
//! cell byte for byte. Any drift — a stray wall-clock read, an unordered
//! iteration, a NaN-order flip — shows up as a byte diff long before it
//! would be visible in rounded report tables.
//!
//! The audit also replays one fully-traced run per setup and byte-diffs
//! the observability outputs across the two passes: the Chrome/Perfetto
//! `trace.json`, the JSONL stream, and the counter/histogram registry's
//! canonical encoding. Exported traces are part of the determinism
//! contract — a timeline that changes between identical-seed runs is as
//! much a bug as a drifting QPS number.
//!
//! Each pass also renders the `vdbbench iostat` report (per-provenance
//! breakdown, queue-depth/utilization timelines, $/query ledger under
//! healthy and aging devices) and the `vdbbench explore` report (the I/O
//! design-space sweep over layout × prefetch × pipelining) and byte-diffs
//! the report texts plus every CSV export across passes.
//!
//! Finally the audit sweeps twice more with the persistent artifact cache
//! enabled against a scratch directory — once cold (populating it) and once
//! warm (replaying prep from disk) — and demands both match the uncached
//! baseline byte for byte. A cache that changes any simulated number is a
//! correctness bug, not an optimization.

use sann_bench::BenchContext;
use sann_engine::{FaultProfile, RunMetrics};
use sann_obs::export::{chrome_trace, jsonl};
use sann_obs::TraceLevel;
use sann_vdb::SetupKind;

/// Dataset the audit sweeps (smallest in the catalog).
const DATASET: &str = "cohere-s";

/// Scale factor: tiny, the audit is about determinism, not fidelity.
const SCALE: f64 = 0.001;

/// Simulated duration per cell, µs.
const DURATION_US: f64 = 0.2e6;

/// Fig. 2-style concurrency sweep points.
const CONCURRENCIES: &[usize] = &[1, 8];

/// Setups exercised: one storage-based (DiskANN beams through the SSD
/// model) and one memory-based (IVF through the CPU path).
const KINDS: &[SetupKind] = &[SetupKind::MilvusDiskann, SetupKind::MilvusIvf];

/// One measured cell of the sweep.
struct Cell {
    label: String,
    bytes: Vec<u8>,
}

/// Runs the audit.
///
/// # Errors
///
/// Returns a description of the first trace-invariant violation or metric
/// byte-divergence found.
pub fn run() -> Result<String, String> {
    analyzer_self_check()?;
    let first = sweep(None, FaultProfile::none())?;
    let second = sweep(None, FaultProfile::none())?;
    let mut audited = compare_passes("second run", &first, &second)?;
    // Artifact-cache invariance: a cold cached pass (populating a scratch
    // directory) and a warm pass (replaying prep from it) must both match
    // the uncached baseline exactly.
    let cache_dir =
        std::env::temp_dir().join(format!("sann-determinism-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cold = sweep(Some(&cache_dir), FaultProfile::none())?;
    let warm = sweep(Some(&cache_dir), FaultProfile::none())?;
    let _ = std::fs::remove_dir_all(&cache_dir);
    audited += compare_passes("cache-cold run", &first, &cold)?;
    audited += compare_passes("cache-warm run", &first, &warm)?;
    // Fault injection is part of the determinism contract: a faulted run is
    // byte-reproducible under a fixed seed, and it must actually perturb
    // the storage-based cells (a flaky sweep identical to the clean one
    // means injection silently turned itself off).
    let flaky_a = sweep(None, FaultProfile::flaky())?;
    let flaky_b = sweep(None, FaultProfile::flaky())?;
    audited += compare_passes("flaky fault-profile replay", &flaky_a, &flaky_b)?;
    if flaky_a.iter().zip(&first).all(|(f, c)| f.bytes == c.bytes) {
        return Err("flaky fault profile left every cell untouched".into());
    }
    Ok(format!(
        "determinism: PASS — {} cells byte-identical across two seeded runs plus cold/warm artifact-cache replays, a flaky fault-profile sweep replayed byte-for-byte ({audited} metric bytes compared), and the static analyzer's text/SARIF/baseline outputs byte-stable across a double run",
        first.len()
    ))
}

/// Double-runs the static analyzer over the workspace and demands that its
/// own outputs — the text report, the SARIF export, and the rendered
/// baseline — are byte-identical. The tool that audits determinism is held
/// to the same contract as the code it audits.
fn analyzer_self_check() -> Result<(), String> {
    let opts = crate::analyze::Options::new(crate::analyze::workspace_root());
    let first = crate::analyze::run(&opts)?;
    let second = crate::analyze::run(&opts)?;
    for (what, a, b) in [
        ("text report", first.render_text(), second.render_text()),
        ("SARIF export", first.render_sarif(), second.render_sarif()),
        (
            "baseline render",
            crate::baseline::Baseline::from_counts(&first.counts).render(),
            crate::baseline::Baseline::from_counts(&second.counts).render(),
        ),
    ] {
        if a != b {
            let byte = a.bytes().zip(b.bytes()).position(|(x, y)| x != y);
            return Err(format!(
                "analyzer {what} diverged across a double run: first difference at byte {byte:?}"
            ));
        }
    }
    Ok(())
}

/// Byte-diffs one pass against the baseline; returns bytes compared.
fn compare_passes(what: &str, baseline: &[Cell], pass: &[Cell]) -> Result<usize, String> {
    if baseline.len() != pass.len() {
        return Err(format!(
            "sweep shape diverged on {what}: {} cells vs {}",
            baseline.len(),
            pass.len()
        ));
    }
    let mut audited = 0usize;
    for (a, b) in baseline.iter().zip(pass) {
        if a.label != b.label {
            return Err(format!(
                "cell order diverged on {what}: {} vs {}",
                a.label, b.label
            ));
        }
        if a.bytes != b.bytes {
            let byte = a.bytes.iter().zip(&b.bytes).position(|(x, y)| x != y);
            return Err(format!(
                "metrics diverged on {what} at {}: first difference at byte {:?} of {}",
                a.label,
                byte,
                a.bytes.len()
            ));
        }
        audited += a.bytes.len();
    }
    Ok(audited)
}

/// One full pass: fresh context, validated traces, canonical metrics.
/// `cache_dir` enables the persistent artifact cache for the pass;
/// `fault_profile` injects SSD faults for the pass (the plans and traces
/// are fault-agnostic, only the simulated runs react).
fn sweep(
    cache_dir: Option<&std::path::Path>,
    fault_profile: FaultProfile,
) -> Result<Vec<Cell>, String> {
    let mut ctx = BenchContext::new(SCALE);
    ctx.only_dataset = Some(DATASET.to_string());
    ctx.duration_us = DURATION_US;
    ctx.fault_profile = fault_profile;
    if let Some(dir) = cache_dir {
        ctx.enable_cache(dir);
    }
    let spec = ctx
        .dataset_specs()
        .into_iter()
        .next()
        .ok_or_else(|| format!("dataset {DATASET} missing from catalog"))?;

    let mut cells = Vec::new();
    for &kind in KINDS {
        let (data, prepared) = ctx
            .dataset_and_setup(&spec, kind)
            .map_err(|e| format!("prepare {kind:?}: {e}"))?;
        let params = prepared.setup.params.search_params();
        // DiskANN promises one beam of at most `beam_width` sector reads per
        // hop; memory-based setups have no beam bound.
        let max_beam = if kind.is_storage_based() {
            params.beam_width
        } else {
            0
        };
        let traces = prepared
            .setup
            .traces(
                prepared.index.as_ref(),
                &data.queries,
                sann_bench::context::K,
            )
            .map_err(|e| format!("trace {kind:?}: {e}"))?;
        for (qi, trace) in traces.iter().enumerate() {
            trace
                .validate(max_beam)
                .map_err(|e| format!("{} query {qi}: invalid trace: {e}", kind.name()))?;
        }
        for &concurrency in CONCURRENCIES {
            let metrics: Option<RunMetrics> = ctx
                .run_tuned(&spec, kind, concurrency)
                .map_err(|e| format!("run {kind:?} c{concurrency}: {e}"))?;
            let Some(metrics) = metrics else {
                continue; // profile rejects this concurrency; fine, both passes skip it
            };
            cells.push(Cell {
                label: format!("{}/{}/c{}", spec.name, kind.name(), concurrency),
                bytes: metrics.canonical_bytes(),
            });
        }
        // One fully-traced run per setup: both exporters plus the
        // registry must be byte-identical across the two passes.
        let plans = ctx
            .plans(&spec, kind)
            .map_err(|e| format!("plans {kind:?}: {e}"))?;
        let concurrency = *CONCURRENCIES.last().expect("sweep non-empty");
        let Some(traced) = ctx.run_traced(kind, &plans, concurrency, TraceLevel::Io) else {
            continue;
        };
        traced
            .trace
            .validate()
            .map_err(|e| format!("{} traced run: invalid trace: {e}", kind.name()))?;
        let label = |what: &str| format!("{}/{}/trace-{}", spec.name, kind.name(), what);
        cells.push(Cell {
            label: label("json"),
            bytes: chrome_trace(&traced.trace).into_bytes(),
        });
        cells.push(Cell {
            label: label("jsonl"),
            bytes: jsonl(&traced.trace).into_bytes(),
        });
        cells.push(Cell {
            label: label("registry"),
            bytes: traced.registry.canonical_bytes(),
        });
    }
    // The iostat report — provenance breakdown, device telemetry, and the
    // $/query ledger under healthy + aging devices — is part of the
    // determinism contract too: the rendered text and every CSV export
    // must replay byte-for-byte across passes.
    let results_dir =
        std::env::temp_dir().join(format!("sann-determinism-iostat-{}", std::process::id()));
    ctx.results_dir.clone_from(&results_dir);
    let args: Vec<String> = ["iostat", "--clients", "4"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let report = sann_bench::iostat::run(&mut ctx, &args).map_err(|e| format!("iostat: {e}"))?;
    cells.push(Cell {
        label: format!("{}/iostat/report", spec.name),
        bytes: report.into_bytes(),
    });
    for name in [
        "iostat_provenance.csv",
        "iostat_characterization.csv",
        "iostat_cost.csv",
        "iostat_timeline.csv",
    ] {
        let bytes = std::fs::read(results_dir.join(name))
            .map_err(|e| format!("iostat export {name}: {e}"))?;
        cells.push(Cell {
            label: format!("{}/iostat/{name}", spec.name),
            bytes,
        });
    }
    // The explore report — the I/O design-space sweep over layout ×
    // prefetch × pipelining — folds in the same way: eight strategies'
    // traces, plans, and simulated runs, all replayed byte-for-byte.
    let args: Vec<String> = ["explore", "--clients", "4"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let report = sann_bench::explore::run(&mut ctx, &args).map_err(|e| format!("explore: {e}"))?;
    cells.push(Cell {
        label: format!("{}/explore/report", spec.name),
        bytes: report.into_bytes(),
    });
    for name in ["explore_sweep.csv", "explore_phases.csv"] {
        let bytes = std::fs::read(results_dir.join(name))
            .map_err(|e| format!("explore export {name}: {e}"))?;
        cells.push(Cell {
            label: format!("{}/explore/{name}", spec.name),
            bytes,
        });
    }
    let _ = std::fs::remove_dir_all(&results_dir);
    Ok(cells)
}
