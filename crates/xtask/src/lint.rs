//! The legacy `sann-xtask lint` surface, now a thin adapter over the
//! token-level analyzer.
//!
//! `lint` is an alias of `analyze --rules determinism`: the four original
//! rules run on [`crate::lexer`]'s token stream (see
//! [`crate::rules::determinism`]), so string literals, raw strings, nested
//! comments, and lifetimes can no longer trip them. The report shape,
//! rendering, and allow-marker semantics are unchanged:
//!
//! ```text
//! // sann-lint: allow(wall-clock) -- reason the exception is sound
//! ```
//!
//! Markers without a rule name, with an unknown rule name, or without a
//! `-- reason` are themselves reported as errors — an exception nobody can
//! audit is a violation with extra steps.

use crate::analyze::{self, Options};
use crate::rules::{Family, Tree};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A lint rule: a name (used in `allow(...)` markers), the reason it exists,
/// and the identifier patterns that trigger it.
///
/// Kept for API compatibility; the analyzer matches tokens, not line
/// patterns, so `patterns` is documentation of what fires the rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Marker-facing rule name.
    pub name: &'static str,
    /// Why the pattern is banned in simulation code.
    pub why: &'static str,
    /// Identifier patterns (matched as whole tokens).
    pub patterns: &'static [&'static str],
}

/// The determinism deny-set enforced across every product crate.
///
/// `nan-unsafe-sort` needs three co-occurring patterns, not one, so its
/// `patterns` list is empty here. The full rule registry (layering,
/// panic-path, cast-safety, hot-loop) lives in [`crate::rules::REGISTRY`].
pub const RULES: &[Rule] = &[
    Rule {
        name: "wall-clock",
        why: "wall-clock time varies run to run; simulated time must come from the DES clock",
        patterns: &["Instant", "SystemTime"],
    },
    Rule {
        name: "unseeded-rng",
        why: "entropy-seeded randomness breaks replay; use sann_core::rng::SplitMix64",
        patterns: &["thread_rng", "OsRng", "from_entropy", "rand::random"],
    },
    Rule {
        name: "unordered-container",
        why: "HashMap/HashSet iteration order is randomized; use BTreeMap/BTreeSet",
        patterns: &["HashMap", "HashSet"],
    },
    Rule {
        name: "nan-unsafe-sort",
        why: "sort_by(partial_cmp().unwrap()) panics on NaN; use total_cmp",
        patterns: &[],
    },
];

/// Product crates scanned under `crates/` (the checker itself is exempt: it
/// must name the banned patterns to ban them).
pub const SCANNED_CRATES: &[&str] = &[
    "core", "datagen", "quant", "index", "ssdsim", "engine", "obs", "vdb", "bench",
];

/// One rule hit, suppressed or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// File the hit is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// The marker reason when suppressed.
    pub allowed: Option<String>,
}

/// Everything one scan produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned.
    pub files: usize,
    /// Unsuppressed rule hits (any ⇒ failure).
    pub violations: Vec<Finding>,
    /// Hits suppressed by a valid marker.
    pub allowed: Vec<Finding>,
    /// Malformed or unknown-rule markers (any ⇒ failure).
    pub marker_errors: Vec<String>,
}

impl Report {
    /// Whether the scan passed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.marker_errors.is_empty()
    }

    /// Allow-markers used inside a given crate directory name.
    pub fn markers_in_crate(&self, krate: &str) -> usize {
        let needle = format!("crates/{krate}/");
        self.allowed
            .iter()
            .filter(|f| {
                f.file
                    .to_string_lossy()
                    .replace('\\', "/")
                    .contains(&needle)
            })
            .count()
    }

    /// Human-readable per-rule summary plus every violation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "sann-lint: scanned {} files", self.files);
        for rule in RULES {
            let viol = self
                .violations
                .iter()
                .filter(|f| f.rule == rule.name)
                .count();
            let allow = self.allowed.iter().filter(|f| f.rule == rule.name).count();
            let _ = writeln!(
                out,
                "  {:<20} {} violation(s), {} allow-marker(s)",
                rule.name, viol, allow
            );
        }
        for f in &self.violations {
            let _ = writeln!(
                out,
                "error[{}]: {}:{}: {}",
                f.rule,
                f.file.display(),
                f.line,
                f.excerpt
            );
            if let Some(rule) = RULES.iter().find(|r| r.name == f.rule) {
                let _ = writeln!(out, "  note: {}", rule.why);
            }
        }
        for e in &self.marker_errors {
            let _ = writeln!(out, "error[bad-marker]: {e}");
        }
        let _ = writeln!(
            out,
            "{}",
            if self.ok() {
                "lint: PASS"
            } else {
                "lint: FAIL"
            }
        );
        out
    }
}

fn determinism_options(root: &Path) -> Options {
    let mut opts = Options::new(root);
    opts.families = vec![Family::Determinism];
    opts
}

fn to_report(analysis: analyze::Analysis) -> Report {
    let convert = |f: crate::rules::Finding| Finding {
        rule: f.rule,
        file: f.file,
        line: f.line as usize,
        excerpt: f.excerpt,
        allowed: f.allowed,
    };
    Report {
        files: analysis.files,
        violations: analysis.violations.into_iter().map(convert).collect(),
        allowed: analysis.allowed.into_iter().map(convert).collect(),
        marker_errors: analysis.marker_errors,
    }
}

/// Scans the product crates under `root/crates/` (the normal mode).
///
/// # Errors
///
/// Returns a message when `root` has no `crates/` directory or a file is
/// unreadable.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    if !root.join("crates").is_dir() {
        return Err(format!("{} has no crates/ directory", root.display()));
    }
    analyze::run(&determinism_options(root)).map(to_report)
}

/// Scans every `.rs` file under an arbitrary directory (fixture mode,
/// `--root`).
///
/// # Errors
///
/// Returns a message when the directory walk or a read fails.
pub fn scan_tree(root: &Path) -> Result<Report, String> {
    analyze::run(&determinism_options(root)).map(to_report)
}

/// Scans one file's source into `report` (determinism rules only).
pub fn scan_source(file: &Path, source: &str, report: &mut Report) {
    let opts = determinism_options(Path::new("."));
    let mut analysis = analyze::Analysis::default();
    let rel = file.to_string_lossy().replace('\\', "/");
    analyze::scan_source_inner(
        &opts,
        file,
        &rel,
        "fixture",
        Tree::Src,
        source,
        &[],
        &mut analysis,
    );
    let converted = to_report(analysis);
    report.violations.extend(converted.violations);
    report.allowed.extend(converted.allowed);
    report.marker_errors.extend(converted.marker_errors);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(source: &str) -> Report {
        let mut report = Report::default();
        scan_source(Path::new("test.rs"), source, &mut report);
        report.files = 1;
        report
    }

    #[test]
    fn flags_each_rule_by_name() {
        let cases = [
            ("let t = std::time::Instant::now();", "wall-clock"),
            ("let t = SystemTime::now();", "wall-clock"),
            ("let mut rng = thread_rng();", "unseeded-rng"),
            ("let x: f64 = rand::random();", "unseeded-rng"),
            (
                "let m: HashMap<u32, u32> = HashMap::new();",
                "unordered-container",
            ),
            ("use std::collections::HashSet;", "unordered-container"),
            (
                "v.sort_by(|a, b| a.partial_cmp(b).unwrap());",
                "nan-unsafe-sort",
            ),
        ];
        for (source, rule) in cases {
            let report = scan_str(source);
            assert_eq!(report.violations.len(), 1, "{source}");
            assert_eq!(report.violations[0].rule, rule, "{source}");
            assert!(!report.ok());
        }
    }

    #[test]
    fn multiline_nan_sort_is_caught() {
        let source = "v.sort_by(|a, b| {\n    a.partial_cmp(b)\n        .unwrap()\n});\n";
        let report = scan_str(source);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "nan-unsafe-sort");
        assert_eq!(report.violations[0].line, 1);
    }

    #[test]
    fn total_cmp_sort_is_clean() {
        let report = scan_str("v.sort_by(f32::total_cmp);\nv.sort_by(|a, b| a.0.cmp(&b.0));\n");
        assert!(report.ok());
    }

    #[test]
    fn comments_and_strings_do_not_trip_rules() {
        let source = r##"
// A doc mention of HashMap and Instant::now is fine.
/* block comment: thread_rng() */
/// Uses a `HashMap` internally? No: BTreeMap.
fn f() {
    let s = "HashMap::new() SystemTime thread_rng";
    let raw = r"Instant::now()";
    let raw2 = r#"OsRng "quoted" HashSet"#;
    let c = 'H';
    let _ = (s, raw, raw2, c);
}
"##;
        let report = scan_str(source);
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn one_finding_per_rule_per_line() {
        // Legacy accounting: two hits of one rule on one line count once.
        let report = scan_str("let m: HashMap<u32, u32> = HashMap::new();");
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn marker_on_same_line_suppresses() {
        let source =
            "let t = Instant::now(); // sann-lint: allow(wall-clock) -- progress timer only\n";
        let report = scan_str(source);
        assert!(report.ok());
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(
            report.allowed[0].allowed.as_deref(),
            Some("progress timer only")
        );
    }

    #[test]
    fn marker_on_line_above_suppresses() {
        let source = "// sann-lint: allow(unordered-container) -- test-only scratch map\nlet m = HashMap::new();\n";
        let report = scan_str(source);
        assert!(report.ok());
        assert_eq!(report.allowed.len(), 1);
    }

    #[test]
    fn marker_for_wrong_rule_does_not_suppress() {
        let source = "// sann-lint: allow(wall-clock) -- mismatched\nlet m = HashMap::new();\n";
        let report = scan_str(source);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "unordered-container");
    }

    #[test]
    fn markers_for_analyzer_rules_are_recognized() {
        // The marker namespace is the full registry: a cast-safety marker in
        // product code must not be a bad-marker error under `lint`.
        let source =
            "// sann-lint: allow(cast-truncation) -- lossless by construction\nlet x = y as u64;\n";
        let report = scan_str(source);
        assert!(report.ok(), "{:?}", report.marker_errors);
    }

    #[test]
    fn malformed_markers_are_errors() {
        for bad in [
            "// sann-lint: allow(wall-clock)\nlet t = 1;\n", // missing reason
            "// sann-lint: allow(no-such-rule) -- why\n",
            "// sann-lint: deny(wall-clock) -- why\n",
        ] {
            let report = scan_str(bad);
            assert!(!report.marker_errors.is_empty(), "{bad}");
            assert!(!report.ok());
        }
    }

    #[test]
    fn render_reports_counts_per_rule() {
        let source = "let t = Instant::now();\nlet m = HashMap::new(); // sann-lint: allow(unordered-container) -- scratch\n";
        let rendered = scan_str(source).render();
        assert!(rendered.contains("wall-clock"));
        assert!(rendered.contains("1 violation(s)"));
        assert!(rendered.contains("1 allow-marker(s)"));
        assert!(rendered.contains("lint: FAIL"));
    }
}
