//! The static determinism lint: a hand-rolled line scanner over the
//! workspace's Rust sources.
//!
//! The scanner strips comments and string/char literals first, so prose
//! mentioning `HashMap` never trips a rule, then matches each [`Rule`]'s
//! patterns with identifier-boundary awareness. A finding is suppressed only
//! by an explicit marker on the same line or the line directly above:
//!
//! ```text
//! // sann-lint: allow(wall-clock) -- reason the exception is sound
//! ```
//!
//! Markers without a rule name, with an unknown rule name, or without a
//! `-- reason` are themselves reported as errors — an exception nobody can
//! audit is a violation with extra steps.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A lint rule: a name (used in `allow(...)` markers), the reason it exists,
/// and the identifier patterns that trigger it.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Marker-facing rule name.
    pub name: &'static str,
    /// Why the pattern is banned in simulation code.
    pub why: &'static str,
    /// Identifier patterns (matched with identifier boundaries).
    pub patterns: &'static [&'static str],
}

/// The deny-set enforced across every product crate.
///
/// `nan-unsafe-sort` is special-cased in the scanner (it needs three
/// co-occurring patterns, not one), so its `patterns` list is empty here.
pub const RULES: &[Rule] = &[
    Rule {
        name: "wall-clock",
        why: "wall-clock time varies run to run; simulated time must come from the DES clock",
        patterns: &["Instant", "SystemTime"],
    },
    Rule {
        name: "unseeded-rng",
        why: "entropy-seeded randomness breaks replay; use sann_core::rng::SplitMix64",
        patterns: &["thread_rng", "OsRng", "from_entropy", "rand::random"],
    },
    Rule {
        name: "unordered-container",
        why: "HashMap/HashSet iteration order is randomized; use BTreeMap/BTreeSet",
        patterns: &["HashMap", "HashSet"],
    },
    Rule {
        name: "nan-unsafe-sort",
        why: "sort_by(partial_cmp().unwrap()) panics on NaN; use total_cmp",
        patterns: &[],
    },
];

/// Product crates scanned under `crates/` (the checker itself is exempt: it
/// must name the banned patterns to ban them).
pub const SCANNED_CRATES: &[&str] = &[
    "core", "datagen", "quant", "index", "ssdsim", "engine", "obs", "vdb", "bench",
];

/// One rule hit, suppressed or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// File the hit is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// The marker reason when suppressed.
    pub allowed: Option<String>,
}

/// Everything one scan produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned.
    pub files: usize,
    /// Unsuppressed rule hits (any ⇒ failure).
    pub violations: Vec<Finding>,
    /// Hits suppressed by a valid marker.
    pub allowed: Vec<Finding>,
    /// Malformed or unknown-rule markers (any ⇒ failure).
    pub marker_errors: Vec<String>,
}

impl Report {
    /// Whether the scan passed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.marker_errors.is_empty()
    }

    /// Allow-markers used inside a given crate directory name.
    pub fn markers_in_crate(&self, krate: &str) -> usize {
        let needle = format!("crates/{krate}/");
        self.allowed
            .iter()
            .filter(|f| {
                f.file
                    .to_string_lossy()
                    .replace('\\', "/")
                    .contains(&needle)
            })
            .count()
    }

    /// Human-readable per-rule summary plus every violation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "sann-lint: scanned {} files", self.files);
        for rule in RULES {
            let viol = self
                .violations
                .iter()
                .filter(|f| f.rule == rule.name)
                .count();
            let allow = self.allowed.iter().filter(|f| f.rule == rule.name).count();
            let _ = writeln!(
                out,
                "  {:<20} {} violation(s), {} allow-marker(s)",
                rule.name, viol, allow
            );
        }
        for f in &self.violations {
            let _ = writeln!(
                out,
                "error[{}]: {}:{}: {}",
                f.rule,
                f.file.display(),
                f.line,
                f.excerpt
            );
            if let Some(rule) = RULES.iter().find(|r| r.name == f.rule) {
                let _ = writeln!(out, "  note: {}", rule.why);
            }
        }
        for e in &self.marker_errors {
            let _ = writeln!(out, "error[bad-marker]: {e}");
        }
        let _ = writeln!(
            out,
            "{}",
            if self.ok() {
                "lint: PASS"
            } else {
                "lint: FAIL"
            }
        );
        out
    }
}

/// Scans the product crates under `root/crates/` (the normal mode).
///
/// # Errors
///
/// Returns a message when `root` has no `crates/` directory or a file is
/// unreadable.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(format!("{} has no crates/ directory", root.display()));
    }
    let mut files = Vec::new();
    for name in SCANNED_CRATES {
        let src = crates.join(name).join("src");
        collect_rs(&src, &mut files)?;
        // Benches and integration tests of product crates follow the same
        // rules (the bench harness carries its own markers).
        for extra in ["benches", "tests"] {
            let dir = crates.join(name).join(extra);
            if dir.is_dir() {
                collect_rs(&dir, &mut files)?;
            }
        }
    }
    // Workspace-level integration tests too.
    let root_tests = root.join("tests");
    if root_tests.is_dir() {
        collect_rs(&root_tests, &mut files)?;
    }
    scan_files(files)
}

/// Scans every `.rs` file under an arbitrary directory (fixture mode,
/// `--root`).
///
/// # Errors
///
/// Returns a message when the directory walk or a read fails.
pub fn scan_tree(root: &Path) -> Result<Report, String> {
    if !root.is_dir() {
        return Err(format!("--root {}: not a directory", root.display()));
    }
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    scan_files(files)
}

fn scan_files(files: Vec<PathBuf>) -> Result<Report, String> {
    let mut report = Report::default();
    for file in files {
        let source =
            std::fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
        scan_source(&file, &source, &mut report);
        report.files += 1;
    }
    // Deterministic output order regardless of directory walk order.
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
        .allowed
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A parsed `// sann-lint: allow(rule) -- reason` marker.
struct Marker {
    rule: String,
    reason: String,
}

/// Scans one file's source into `report`.
pub fn scan_source(file: &Path, source: &str, report: &mut Report) {
    let raw_lines: Vec<&str> = source.lines().collect();
    let stripped = strip_non_code(source);
    let stripped_lines: Vec<&str> = stripped.lines().collect();

    // Parse markers per line (from the raw text: they live in comments).
    let mut markers: Vec<Option<Marker>> = Vec::with_capacity(raw_lines.len());
    for (i, line) in raw_lines.iter().enumerate() {
        match parse_marker(line) {
            Ok(m) => markers.push(m),
            Err(e) => {
                report
                    .marker_errors
                    .push(format!("{}:{}: {e}", file.display(), i + 1));
                markers.push(None);
            }
        }
    }

    let allowed_for = |idx: usize, rule: &str| -> Option<String> {
        for look in [Some(idx), idx.checked_sub(1)] {
            if let Some(Some(m)) = look.map(|i| &markers[i]) {
                if m.rule == rule {
                    return Some(m.reason.clone());
                }
            }
        }
        None
    };

    let mut push = |idx: usize, rule: &'static str| {
        let finding = Finding {
            rule,
            file: file.to_path_buf(),
            line: idx + 1,
            excerpt: raw_lines[idx].trim().to_string(),
            allowed: allowed_for(idx, rule),
        };
        if finding.allowed.is_some() {
            report.allowed.push(finding);
        } else {
            report.violations.push(finding);
        }
    };

    for (idx, line) in stripped_lines.iter().enumerate() {
        for rule in RULES {
            if rule.patterns.iter().any(|p| contains_ident(line, p)) {
                push(idx, rule.name);
            }
        }
        // NaN-unsafe sort: a sort_by whose comparator goes through
        // partial_cmp(..).unwrap(). Comparators often span lines, so look
        // at a short window starting at the sort call.
        if contains_ident(line, "sort_by") || contains_ident(line, "sort_unstable_by") {
            let window: String =
                stripped_lines[idx..(idx + 3).min(stripped_lines.len())].join("\n");
            if window.contains("partial_cmp") && window.contains("unwrap") {
                push(idx, "nan-unsafe-sort");
            }
        }
    }
}

/// Parses a marker out of a raw source line.
///
/// Returns `Ok(None)` for lines without a marker, `Err` for malformed ones.
fn parse_marker(line: &str) -> Result<Option<Marker>, String> {
    let Some(pos) = line.find("sann-lint:") else {
        return Ok(None);
    };
    let rest = line[pos + "sann-lint:".len()..].trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err("marker must be `sann-lint: allow(<rule>) -- <reason>`".into());
    };
    let Some(close) = args.find(')') else {
        return Err("unclosed allow( in lint marker".into());
    };
    let rule = args[..close].trim();
    if !RULES.iter().any(|r| r.name == rule) {
        return Err(format!("unknown lint rule `{rule}` in allow marker"));
    }
    let tail = args[close + 1..].trim_start();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(format!("allow({rule}) marker is missing a `-- <reason>`"));
    }
    Ok(Some(Marker {
        rule: rule.to_string(),
        reason: reason.to_string(),
    }))
}

/// Whether `pattern` occurs in `line` with no identifier character on
/// either side (so `Instant` does not match `InstantLike`). Patterns may
/// contain `::`.
fn contains_ident(line: &str, pattern: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(found) = line[from..].find(pattern) {
        let start = from + found;
        let end = start + pattern.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Replaces comments, string literals, and char literals with spaces,
/// preserving line structure so line numbers survive.
fn strip_non_code(source: &str) -> String {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' {
                        out.push_str("  ");
                        i += 2;
                    } else if chars[i] == '"' {
                        out.push(' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            'r' if next == Some('"')
                || (next == Some('#') && chars.get(i + 2) == Some(&'"'))
                || (next == Some('#') && chars.get(i + 2) == Some(&'#')) =>
            {
                // Raw string r"..." / r#"..."# / r##"..."## — count hashes.
                let mut j = i + 1;
                let mut hashes = 0;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    for _ in i..=j {
                        out.push(' ');
                    }
                    i = j + 1;
                    // Scan to closing quote followed by `hashes` hashes.
                    'outer: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut k = i + 1;
                            let mut seen = 0;
                            while seen < hashes && chars.get(k) == Some(&'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                for _ in i..k {
                                    out.push(' ');
                                }
                                i = k;
                                break 'outer;
                            }
                        }
                        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime: 'x' or '\..' is a literal; 'ident
                // (no closing quote right after) is a lifetime.
                if next == Some('\\') {
                    out.push_str("  ");
                    i += 2;
                    while i < chars.len() && chars[i] != '\'' {
                        out.push(' ');
                        i += 1;
                    }
                    if i < chars.len() {
                        out.push(' ');
                        i += 1;
                    }
                } else if chars.get(i + 2) == Some(&'\'') && next.is_some() {
                    out.push_str("   ");
                    i += 3;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(source: &str) -> Report {
        let mut report = Report::default();
        scan_source(Path::new("test.rs"), source, &mut report);
        report.files = 1;
        report
    }

    #[test]
    fn flags_each_rule_by_name() {
        let cases = [
            ("let t = std::time::Instant::now();", "wall-clock"),
            ("let t = SystemTime::now();", "wall-clock"),
            ("let mut rng = thread_rng();", "unseeded-rng"),
            ("let x: f64 = rand::random();", "unseeded-rng"),
            (
                "let m: HashMap<u32, u32> = HashMap::new();",
                "unordered-container",
            ),
            ("use std::collections::HashSet;", "unordered-container"),
            (
                "v.sort_by(|a, b| a.partial_cmp(b).unwrap());",
                "nan-unsafe-sort",
            ),
        ];
        for (source, rule) in cases {
            let report = scan_str(source);
            assert_eq!(report.violations.len(), 1, "{source}");
            assert_eq!(report.violations[0].rule, rule, "{source}");
            assert!(!report.ok());
        }
    }

    #[test]
    fn multiline_nan_sort_is_caught() {
        let source = "v.sort_by(|a, b| {\n    a.partial_cmp(b)\n        .unwrap()\n});\n";
        let report = scan_str(source);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "nan-unsafe-sort");
        assert_eq!(report.violations[0].line, 1);
    }

    #[test]
    fn total_cmp_sort_is_clean() {
        let report = scan_str("v.sort_by(f32::total_cmp);\nv.sort_by(|a, b| a.0.cmp(&b.0));\n");
        assert!(report.ok());
    }

    #[test]
    fn comments_and_strings_do_not_trip_rules() {
        let source = r#"
// A doc mention of HashMap and Instant::now is fine.
/* block comment: thread_rng() */
/// Uses a `HashMap` internally? No: BTreeMap.
let s = "HashMap::new() SystemTime thread_rng";
let raw = r"Instant::now()";
let c = 'H';
"#;
        let report = scan_str(source);
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn ident_boundaries_respected() {
        assert!(contains_ident("let x = Instant::now();", "Instant"));
        assert!(!contains_ident("struct InstantLike;", "Instant"));
        assert!(!contains_ident("let my_thread_rngx = 1;", "thread_rng"));
        assert!(contains_ident("rand::random::<f64>()", "rand::random"));
    }

    #[test]
    fn marker_on_same_line_suppresses() {
        let source =
            "let t = Instant::now(); // sann-lint: allow(wall-clock) -- progress timer only\n";
        let report = scan_str(source);
        assert!(report.ok());
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(
            report.allowed[0].allowed.as_deref(),
            Some("progress timer only")
        );
    }

    #[test]
    fn marker_on_line_above_suppresses() {
        let source = "// sann-lint: allow(unordered-container) -- test-only scratch map\nlet m = HashMap::new();\n";
        let report = scan_str(source);
        assert!(report.ok());
        assert_eq!(report.allowed.len(), 1);
    }

    #[test]
    fn marker_for_wrong_rule_does_not_suppress() {
        let source = "// sann-lint: allow(wall-clock) -- mismatched\nlet m = HashMap::new();\n";
        let report = scan_str(source);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "unordered-container");
    }

    #[test]
    fn malformed_markers_are_errors() {
        for bad in [
            "// sann-lint: allow(wall-clock)\nlet t = 1;\n", // missing reason
            "// sann-lint: allow(no-such-rule) -- why\n",
            "// sann-lint: deny(wall-clock) -- why\n",
        ] {
            let report = scan_str(bad);
            assert!(!report.marker_errors.is_empty(), "{bad}");
            assert!(!report.ok());
        }
    }

    #[test]
    fn render_reports_counts_per_rule() {
        let source = "let t = Instant::now();\nlet m = HashMap::new(); // sann-lint: allow(unordered-container) -- scratch\n";
        let rendered = scan_str(source).render();
        assert!(rendered.contains("wall-clock"));
        assert!(rendered.contains("1 violation(s)"));
        assert!(rendered.contains("1 allow-marker(s)"));
        assert!(rendered.contains("lint: FAIL"));
    }
}
