//! `sann-xtask` — the workspace invariant checker.
//!
//! The simulation stack promises *bit-determinism*: identical inputs produce
//! identical metrics, byte for byte. That promise is easy to break with one
//! careless `Instant::now()` or an iteration over a `HashMap`. This crate
//! enforces it from two directions:
//!
//! * **statically** — [`lint`] scans every product crate's sources for
//!   wall-clock calls, unseeded randomness, order-nondeterministic
//!   containers, and NaN-unsafe sorts (see [`lint::RULES`]), with explicit
//!   per-site suppression markers;
//! * **dynamically** — [`determinism`] runs a small end-to-end sweep twice
//!   with the same seed and diffs the canonical metric encodings byte for
//!   byte, validating every query trace on the way.
//!
//! Run it as `cargo run -p sann-xtask -- lint [--determinism]`.

pub mod determinism;
pub mod lint;
