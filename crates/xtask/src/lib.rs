//! `sann-xtask` — the workspace invariant checker.
//!
//! The simulation stack promises *bit-determinism*: identical inputs produce
//! identical metrics, byte for byte. That promise is easy to break with one
//! careless `Instant::now()` or an iteration over a `HashMap`. This crate
//! enforces it — and a wider set of workspace invariants — from two
//! directions:
//!
//! * **statically** — [`analyze`] drives a hand-rolled Rust [`lexer`] over
//!   every product crate and applies the [`rules`] registry: the determinism
//!   deny-set, crate-layering against the declared dependency DAG,
//!   panic-path and cast-safety audits ratcheted against
//!   [`baseline`]-recorded counts, and hot-loop hygiene for functions marked
//!   `#[sann::hot]` or listed in the hot-path manifest. Results render as a
//!   human table or SARIF 2.1 ([`sarif`]). The legacy [`lint`] surface is an
//!   alias for the determinism family;
//! * **dynamically** — [`determinism`] runs a small end-to-end sweep twice
//!   with the same seed and diffs the canonical metric encodings byte for
//!   byte, validating every query trace on the way — and double-runs the
//!   analyzer itself, demanding byte-stable output.
//!
//! Run it as `cargo run -p sann-xtask -- analyze` (or `-- lint
//! [--determinism]`).

pub mod analyze;
pub mod baseline;
pub mod determinism;
pub mod lexer;
pub mod lint;
pub mod rules;
pub mod sarif;
