//! End-to-end tests of `sann-xtask analyze`: every rule family fires on its
//! positive fixture, markers suppress with a reason, the ratcheted baseline
//! gates regressions, layering fails on an inverted dependency, SARIF is
//! byte-stable, and the real workspace passes against the committed
//! baseline.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn xtask() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sann-xtask"))
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("analyze_fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

/// A scratch dir holding a copy of one fixture file (flat mode).
fn scratch_with(name: &str, tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sann-analyze-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::copy(fixtures_dir().join(name), dir.join(name)).unwrap();
    dir
}

fn run_analyze(dir: &Path, extra: &[&str]) -> Output {
    xtask()
        .args(["analyze", "--root"])
        .arg(dir)
        .args(extra)
        .output()
        .unwrap()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn determinism_positive_fixture_fires_all_four_rules() {
    let dir = scratch_with("determinism_positive.rs", "det-pos");
    let out = run_analyze(&dir, &["--rules", "determinism"]);
    assert!(!out.status.success(), "positive fixture must fail");
    let text = stdout(&out);
    for rule in [
        "wall-clock",
        "unseeded-rng",
        "unordered-container",
        "nan-unsafe-sort",
    ] {
        assert!(text.contains(&format!("error[{rule}]")), "{rule}\n{text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn determinism_allowed_and_clean_fixtures_pass() {
    for name in ["determinism_allowed.rs", "determinism_clean.rs"] {
        let dir = scratch_with(name, name.trim_end_matches(".rs"));
        let out = run_analyze(&dir, &["--rules", "determinism"]);
        let text = stdout(&out);
        assert!(out.status.success(), "{name} must pass:\n{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn panic_path_fixture_is_a_ratchet_regression() {
    let dir = scratch_with("panic_positive.rs", "panic-pos");
    let out = run_analyze(&dir, &["--rules", "panic-path"]);
    assert!(!out.status.success(), "fresh panic paths must regress");
    let text = stdout(&out);
    assert!(text.contains("error[ratchet]: panic-path/"), "{text}");
    // unwrap, expect, panic!, unreachable!, todo! — all five sites.
    assert!(text.contains("5 finding(s), baseline allows 0"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn panic_path_allowed_and_clean_fixtures_pass() {
    for name in ["panic_allowed.rs", "panic_clean.rs"] {
        let dir = scratch_with(name, name.trim_end_matches(".rs"));
        let out = run_analyze(&dir, &["--rules", "panic-path"]);
        let text = stdout(&out);
        assert!(out.status.success(), "{name} must pass:\n{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn cast_fixtures_fire_suppress_and_pass() {
    let dir = scratch_with("cast_positive.rs", "cast-pos");
    let out = run_analyze(&dir, &["--rules", "cast-safety"]);
    assert!(!out.status.success());
    assert!(
        stdout(&out).contains("error[ratchet]: cast-truncation/"),
        "{}",
        stdout(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
    for name in ["cast_allowed.rs", "cast_clean.rs"] {
        let dir = scratch_with(name, name.trim_end_matches(".rs"));
        let out = run_analyze(&dir, &["--rules", "cast-safety"]);
        let text = stdout(&out);
        assert!(out.status.success(), "{name} must pass:\n{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn hot_loop_fixture_fires_both_rules_via_the_attribute() {
    let dir = scratch_with("hot_positive.rs", "hot-pos");
    let out = run_analyze(&dir, &["--rules", "hot-loop"]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("error[ratchet]: hot-alloc/"), "{text}");
    assert!(text.contains("error[ratchet]: hot-float/"), "{text}");
    // The identical allocation in the cold function must NOT be flagged:
    // only the hot kernel's sites (to_vec, vec!) count.
    assert!(!text.contains("cold"), "cold fn was flagged:\n{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_loop_allowed_and_clean_fixtures_pass() {
    for name in ["hot_allowed.rs", "hot_clean.rs"] {
        let dir = scratch_with(name, name.trim_end_matches(".rs"));
        let out = run_analyze(&dir, &["--rules", "hot-loop"]);
        let text = stdout(&out);
        assert!(out.status.success(), "{name} must pass:\n{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn hot_loop_manifest_marks_functions_without_the_attribute() {
    let dir = scratch_with("hot_clean.rs", "hot-manifest");
    // A second file with a manifest-listed (not attributed) allocating fn.
    std::fs::write(
        dir.join("listed.rs"),
        "fn listed_kernel(xs: &[f32]) -> Vec<f32> { xs.to_vec() }\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("hotpaths.toml"),
        "[hot]\n\"listed.rs\" = \"listed_kernel\"\n",
    )
    .unwrap();
    let manifest = dir.join("hotpaths.toml");
    let out = xtask()
        .args(["analyze", "--root"])
        .arg(&dir)
        .args(["--rules", "hot-loop", "--hotpaths"])
        .arg(&manifest)
        .output()
        .unwrap();
    let text = stdout(&out);
    assert!(!out.status.success(), "{text}");
    assert!(text.contains("hot-alloc"), "{text}");
    assert!(text.contains("listed.rs"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds a synthetic workspace where `ssdsim` (a bottom layer) imports
/// `sann_engine` (an upper layer) — the inverted-dependency fixture.
#[test]
fn layering_fails_on_an_inverted_dependency() {
    let root = std::env::temp_dir().join(format!("sann-analyze-{}-layering", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let src = root.join("crates").join("ssdsim").join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        src.join("inverted.rs"),
        "use sann_engine::RunConfig;\n\nfn peek(_c: &RunConfig) {}\n",
    )
    .unwrap();
    let out = run_analyze(&root, &["--rules", "layering"]);
    let text = stdout(&out);
    assert!(!out.status.success(), "inverted edge must fail:\n{text}");
    assert!(text.contains("error[layering]"), "{text}");
    assert!(
        text.contains("`ssdsim` must not depend on `engine`"),
        "{text}"
    );
    // The same import in the crate's tests tree is still a violation —
    // only datagen gets the dev-dependency exemption.
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn layering_allows_datagen_in_test_trees_only() {
    let root = std::env::temp_dir().join(format!("sann-analyze-{}-devdep", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let krate = root.join("crates").join("quant");
    std::fs::create_dir_all(krate.join("src")).unwrap();
    std::fs::create_dir_all(krate.join("tests")).unwrap();
    let import = "use sann_datagen::EmbeddingModel;\n";
    std::fs::write(krate.join("src").join("bad.rs"), import).unwrap();
    std::fs::write(krate.join("tests").join("ok.rs"), import).unwrap();
    let out = run_analyze(&root, &["--rules", "layering"]);
    let text = stdout(&out);
    assert!(!out.status.success(), "{text}");
    assert!(text.contains("src/bad.rs"), "{text}");
    assert!(!text.contains("tests/ok.rs"), "{text}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sarif_export_is_byte_stable_and_carries_suppressions() {
    let dir = scratch_with("determinism_positive.rs", "sarif");
    std::fs::copy(
        fixtures_dir().join("determinism_allowed.rs"),
        dir.join("determinism_allowed.rs"),
    )
    .unwrap();
    let a = run_analyze(&dir, &["--format", "sarif"]);
    let b = run_analyze(&dir, &["--format", "sarif"]);
    assert_eq!(a.stdout, b.stdout, "SARIF must be byte-stable");
    let text = stdout(&a);
    assert!(text.contains("\"version\":\"2.1.0\""), "{text}");
    assert!(text.contains("\"suppressions\""), "{text}");
    assert!(
        text.contains("progress display only, not simulated time"),
        "suppression must carry the marker reason:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn update_baseline_ratchets_and_gates_regressions() {
    let dir = scratch_with("panic_positive.rs", "ratchet");
    let baseline = dir.join("baseline.toml");
    // Fresh findings with no baseline: fail.
    let out = run_analyze(&dir, &["--rules", "panic-path", "--baseline"]);
    drop(out); // missing value for --baseline is a usage error
    let out = xtask()
        .args(["analyze", "--root"])
        .arg(&dir)
        .args(["--rules", "panic-path", "--baseline"])
        .arg(&baseline)
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Record the baseline; the same tree now passes.
    let out = xtask()
        .args(["analyze", "--root"])
        .arg(&dir)
        .args(["--rules", "panic-path", "--update-baseline", "--baseline"])
        .arg(&baseline)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stdout(&out));
    let out = xtask()
        .args(["analyze", "--root"])
        .arg(&dir)
        .args(["--rules", "panic-path", "--baseline"])
        .arg(&baseline)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "baselined tree must pass:\n{}",
        stdout(&out)
    );
    // One new unwrap: regression against the recorded baseline.
    std::fs::write(
        dir.join("new_code.rs"),
        "fn fresh(v: &[u32]) -> u32 { *v.first().unwrap() }\n",
    )
    .unwrap();
    let out = xtask()
        .args(["analyze", "--root"])
        .arg(&dir)
        .args(["--rules", "panic-path", "--baseline"])
        .arg(&baseline)
        .output()
        .unwrap();
    let text = stdout(&out);
    assert!(!out.status.success(), "regression must fail:\n{text}");
    assert!(text.contains("error[ratchet]"), "{text}");
    assert!(text.contains("new_code.rs"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn workspace_analyze_is_clean_against_the_committed_baseline() {
    let out = xtask()
        .args(["analyze", "--root"])
        .arg(workspace_root())
        .output()
        .unwrap();
    let text = stdout(&out);
    assert!(
        out.status.success(),
        "workspace must pass analyze against the committed baseline:\n{text}"
    );
    assert!(text.contains("analyze: PASS"), "{text}");
    // Zero regressions also means zero unaudited allows: every allowed
    // finding carried a parseable reason, or it would be a marker error.
    assert!(!text.contains("error["), "{text}");
}

#[test]
fn analyze_usage_errors_exit_nonzero() {
    for args in [
        &["analyze", "--rules", "bogus-family"][..],
        &["analyze", "--format", "yaml"][..],
        &["analyze", "--baseline"][..],
        &["bogus-subcommand"][..],
    ] {
        let out = xtask().args(args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must fail");
    }
}
