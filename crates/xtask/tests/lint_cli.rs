//! End-to-end tests of the `sann-xtask lint` binary: a seeded-violation
//! fixture tree must fail with the right rule names, and the real workspace
//! must pass.

use std::path::{Path, PathBuf};
use std::process::Command;

fn xtask() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sann-xtask"))
}

fn fixture_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sann-xtask-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

#[test]
fn seeded_violations_fail_with_rule_names() {
    let dir = fixture_dir("bad");
    std::fs::write(
        dir.join("bad.rs"),
        r#"
fn naughty() {
    let t = std::time::Instant::now();
    let mut rng = thread_rng();
    let m: HashMap<u32, u32> = HashMap::new();
    let mut v = vec![0.3f32, f32::NAN];
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
"#,
    )
    .unwrap();
    let out = xtask().args(["lint", "--root"]).arg(&dir).output().unwrap();
    assert!(
        !out.status.success(),
        "seeded violations must fail the lint"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "wall-clock",
        "unseeded-rng",
        "unordered-container",
        "nan-unsafe-sort",
    ] {
        assert!(
            stdout.contains(&format!("error[{rule}]")),
            "missing {rule} in:\n{stdout}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_fixture_passes_and_counts_markers() {
    let dir = fixture_dir("clean");
    std::fs::write(
        dir.join("ok.rs"),
        r#"
//! Prose may mention HashMap and Instant::now freely.
fn tidy() {
    let m: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    // sann-lint: allow(wall-clock) -- fixture exercising the marker path
    let t = std::time::Instant::now();
    let _ = (m, t);
}
"#,
    )
    .unwrap();
    let out = xtask().args(["lint", "--root"]).arg(&dir).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "clean fixture must pass:\n{stdout}");
    assert!(
        stdout.contains("1 allow-marker(s)"),
        "marker must be counted:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_marker_fails() {
    let dir = fixture_dir("marker");
    std::fs::write(
        dir.join("bad_marker.rs"),
        "// sann-lint: allow(wall-clock)\nfn f() { let t = std::time::Instant::now(); }\n",
    )
    .unwrap();
    let out = xtask().args(["lint", "--root"]).arg(&dir).output().unwrap();
    assert!(!out.status.success(), "reason-less marker must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bad-marker"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn workspace_is_lint_clean() {
    let report = sann_xtask::lint::scan_workspace(&workspace_root()).unwrap();
    assert!(
        report.ok(),
        "workspace must be lint-clean:\n{}",
        report.render()
    );
    assert!(
        report.files > 50,
        "expected the whole workspace, got {} files",
        report.files
    );
    // The simulation-core crates carry no exceptions at all.
    for strict in [
        "ssdsim", "index", "core", "engine", "vdb", "quant", "datagen",
    ] {
        assert_eq!(
            report.markers_in_crate(strict),
            0,
            "crate {strict} must not need allow-markers"
        );
    }
    // The bench harness carries the documented wall-clock exceptions.
    assert!(report.markers_in_crate("bench") >= 4);
}

#[test]
fn binary_rejects_unknown_usage() {
    let out = xtask().output().unwrap();
    assert!(!out.status.success(), "missing subcommand must fail");
    let out = xtask().args(["lint", "--bogus"]).output().unwrap();
    assert!(!out.status.success(), "unknown flag must fail");
}
