//! Fixture: checked conversions only — `use x as y` renames and trait
//! casts must not trip the numeric-cast rule.

use std::collections::BTreeMap as Map;

fn checked(offset: u64) -> Option<u32> {
    let small: u32 = offset.try_into().ok()?;
    let m: Map<u32, u32> = Map::new();
    let _ = &m as &dyn std::fmt::Debug;
    Some(small)
}
