//! Fixture: panic-path findings — method panics and panic macros.

fn panicky(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    let second = v.get(1).expect("fixture");
    if *first > 100 {
        panic!("too big");
    }
    match second {
        0 => unreachable!("zero filtered earlier"),
        n => *n + todo!(),
    }
}
