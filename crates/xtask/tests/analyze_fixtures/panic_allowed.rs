//! Fixture: panic-path hits carrying documented-invariant markers.

fn audited(v: &[u32]) -> u32 {
    // sann-lint: allow(panic-path) -- caller guarantees non-empty by construction
    let first = v.first().unwrap();
    *first
}
