//! Fixture: a bare cast with an audited lossless-ness argument.

fn documented(len: usize) -> u64 {
    // sann-lint: allow(cast-truncation) -- usize is at most 64 bits on all supported targets
    len as u64
}
