//! Fixture: a hot kernel with no allocation and total float ordering.

#[sann::hot]
fn kernel(xs: &[f32], scratch: &mut [f32]) -> f32 {
    let mut acc = 0.0f32;
    for (s, x) in scratch.iter_mut().zip(xs) {
        *s = x * x;
        if s.total_cmp(&acc).is_gt() {
            acc = *s;
        }
    }
    acc
}
