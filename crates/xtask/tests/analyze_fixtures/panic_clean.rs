//! Fixture: fallible code on typed errors — no panic paths.

fn careful(v: &[u32]) -> Option<u32> {
    let first = v.first()?;
    let second = v.get(1).copied().unwrap_or_default();
    Some(first + second)
}

#[cfg(test)]
mod tests {
    // Tests may unwrap freely: the ratcheted rules skip #[cfg(test)].
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
