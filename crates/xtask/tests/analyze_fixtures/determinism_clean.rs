//! Fixture: clean code that *mentions* banned patterns only in prose,
//! strings, raw strings, and char literals — the lexer must not trip.
//!
//! A doc mention of HashMap, Instant::now, and thread_rng is fine.

fn tidy<'a>(name: &'a str) -> &'a str {
    /* block comment: /* nested */ SystemTime::now() */
    let s = "HashMap::new() thread_rng SystemTime";
    let raw = r#"Instant::now() "quoted" OsRng"#;
    let c = 'H';
    let mut v = vec![0.3f32, 0.1];
    v.sort_by(f32::total_cmp);
    let _ = (s, raw, c, v);
    name
}
