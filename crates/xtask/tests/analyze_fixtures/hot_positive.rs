//! Fixture: allocation and NaN-order hazards inside a `#[sann::hot]`
//! function — both hot-loop rules must fire.

#[sann::hot]
fn kernel(xs: &[f32]) -> f32 {
    let scratch = xs.to_vec();
    let copy = vec![0.0f32; xs.len()];
    let best = scratch
        .iter()
        .zip(&copy)
        .map(|(a, b)| a + b)
        .fold(f32::MIN, f32::max);
    let _ = xs.first().partial_cmp(&xs.last());
    best
}

fn cold(xs: &[f32]) -> Vec<f32> {
    // Outside a hot function, allocation is fine.
    xs.to_vec()
}
