//! Fixture: every determinism rule fires once.

fn naughty() {
    let t = std::time::Instant::now();
    let w = SystemTime::now();
    let mut rng = thread_rng();
    let r: f64 = rand::random();
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    let mut v = vec![0.3f32, f32::NAN];
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let _ = (t, w, rng, r, m, s, v);
}
