//! Fixture: determinism hits suppressed by audited markers.

fn tolerated() {
    // sann-lint: allow(wall-clock) -- progress display only, not simulated time
    let t = std::time::Instant::now();
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    // sann-lint: allow(unordered-container) -- scratch set, order never observed
    let s: HashSet<u32> = HashSet::new();
    let _ = (t, m, s);
}
