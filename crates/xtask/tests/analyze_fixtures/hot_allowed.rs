//! Fixture: a hot-function allocation with an audited justification.

#[sann::hot]
fn kernel_with_setup(xs: &[f32]) -> f32 {
    // sann-lint: allow(hot-alloc) -- one-time setup before the inner loop
    let scratch = xs.to_vec();
    scratch.iter().sum()
}
