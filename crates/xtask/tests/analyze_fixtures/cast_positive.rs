//! Fixture: bare numeric casts the cast-safety rule must flag.

fn lossy(offset: u64, len: usize) -> (u32, u64, f64) {
    let small = offset as u32;
    let wide = len as u64;
    let approx = offset as f64;
    (small, wide, approx)
}
