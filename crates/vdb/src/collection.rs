//! Collections: vectors + payloads + an optional index.

use crate::payload::{Filter, Payload};
use sann_core::{Dataset, Error, Metric, Neighbor, Result};
use sann_index::{
    DiskAnnConfig, DiskAnnIndex, FlatIndex, HnswConfig, HnswIndex, HnswSqIndex, IvfConfig,
    IvfIndex, IvfPqIndex, QueryTrace, SearchParams, VectorIndex,
};

/// Which index to build over a collection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexSpec {
    /// Exact scan (no approximate index).
    Flat,
    /// Memory-based IVF-Flat.
    Ivf(IvfConfig),
    /// Storage-based IVF with product quantization (`m` sub-spaces of
    /// `ksub` centroids).
    IvfPq {
        /// Clustering configuration.
        config: IvfConfig,
        /// PQ sub-spaces.
        m: usize,
        /// PQ centroids per sub-space.
        ksub: usize,
    },
    /// Memory-based HNSW.
    Hnsw(HnswConfig),
    /// Memory-based HNSW over scalar-quantized vectors (smaller memory
    /// footprint, slightly lower recall at equal `efSearch`).
    HnswSq(HnswConfig),
    /// Storage-based DiskANN.
    DiskAnn(DiskAnnConfig),
}

/// One result of a collection search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Vector id within the collection.
    pub id: u32,
    /// Distance to the query.
    pub dist: f32,
    /// The vector's payload (cloned).
    pub payload: Payload,
}

/// A named set of vectors with payloads, deletions, and an optional index.
///
/// Deletes are tombstones: the index keeps the vector until the next
/// [`Collection::build_index`], but search results exclude it immediately
/// (the strategy Milvus/Qdrant use between compactions).
pub struct Collection {
    name: String,
    metric: Metric,
    vectors: Dataset,
    payloads: Vec<Payload>,
    deleted: Vec<bool>,
    index: Option<Box<dyn VectorIndex>>,
    index_spec: Option<IndexSpec>,
}

impl std::fmt::Debug for Collection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collection")
            .field("name", &self.name)
            .field("len", &self.vectors.len())
            .field("dim", &self.vectors.dim())
            .field("indexed", &self.index.is_some())
            .finish()
    }
}

impl Collection {
    /// Creates an empty collection.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `dim` is zero.
    pub fn new(name: impl Into<String>, dim: usize, metric: Metric) -> Result<Collection> {
        if dim == 0 {
            return Err(Error::invalid_parameter("dim", "must be positive"));
        }
        Ok(Collection {
            name: name.into(),
            metric,
            vectors: Dataset::with_dim(dim),
            payloads: Vec::new(),
            deleted: Vec::new(),
            index: None,
            index_spec: None,
        })
    }

    /// Creates a collection pre-populated from a dataset (payloads empty).
    pub fn from_dataset(name: impl Into<String>, data: &Dataset, metric: Metric) -> Collection {
        let n = data.len();
        Collection {
            name: name.into(),
            metric,
            vectors: data.clone(),
            payloads: vec![Payload::default(); n],
            deleted: vec![false; n],
            index: None,
            index_spec: None,
        }
    }

    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.vectors.dim()
    }

    /// The search metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Total vectors ever inserted (including tombstoned ones).
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the collection has no vectors at all.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Number of live (non-deleted) vectors.
    pub fn live_len(&self) -> usize {
        self.deleted.iter().filter(|&&d| !d).count()
    }

    /// The index spec currently built, if any.
    pub fn index_spec(&self) -> Option<&IndexSpec> {
        self.index_spec.as_ref()
    }

    /// Read-only access to the built index.
    pub fn index(&self) -> Option<&dyn VectorIndex> {
        self.index.as_deref()
    }

    /// Borrow of the raw vectors.
    pub fn vectors(&self) -> &Dataset {
        &self.vectors
    }

    /// Inserts a vector with its payload; returns the assigned id.
    ///
    /// Inserting invalidates a previously built index (it must be rebuilt to
    /// cover the new vector; searches fall back to the stale index plus a
    /// brute-force scan of the tail — see [`Collection::search`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on a wrong-sized vector.
    pub fn insert(&mut self, vector: &[f32], payload: Payload) -> Result<u32> {
        self.vectors.push(vector)?;
        self.payloads.push(payload);
        self.deleted.push(false);
        Ok((self.vectors.len() - 1) as u32)
    }

    /// Tombstones a vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IdOutOfBounds`] for unknown ids.
    pub fn delete(&mut self, id: u32) -> Result<()> {
        let slot = self
            .deleted
            .get_mut(id as usize)
            .ok_or(Error::IdOutOfBounds {
                id: id as u64,
                len: self.vectors.len() as u64,
            })?;
        *slot = true;
        Ok(())
    }

    /// Whether `id` exists and is not tombstoned.
    pub fn is_live(&self, id: u32) -> bool {
        self.deleted.get(id as usize).map(|&d| !d).unwrap_or(false)
    }

    /// Reads a vector and its payload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IdOutOfBounds`] for unknown ids and
    /// [`Error::NotFound`] for tombstoned ones.
    pub fn get(&self, id: u32) -> Result<(&[f32], &Payload)> {
        let i = id as usize;
        if i >= self.vectors.len() {
            return Err(Error::IdOutOfBounds {
                id: id as u64,
                len: self.vectors.len() as u64,
            });
        }
        if self.deleted[i] {
            return Err(Error::NotFound(format!("vector {id} is deleted")));
        }
        Ok((self.vectors.row(i), &self.payloads[i]))
    }

    /// Builds (or rebuilds) the index over all live vectors currently in the
    /// collection. Tombstoned vectors are still indexed but filtered from
    /// results; rebuilding after heavy deletion is the caller's compaction
    /// policy.
    ///
    /// # Errors
    ///
    /// Propagates index construction errors; fails on an empty collection.
    pub fn build_index(&mut self, spec: IndexSpec) -> Result<()> {
        if self.vectors.is_empty() {
            return Err(Error::Empty("collection"));
        }
        let index: Box<dyn VectorIndex> = match spec {
            IndexSpec::Flat => Box::new(FlatIndex::build(&self.vectors, self.metric)),
            IndexSpec::Ivf(config) => {
                Box::new(IvfIndex::build(&self.vectors, self.metric, config)?)
            }
            IndexSpec::IvfPq { config, m, ksub } => {
                Box::new(IvfPqIndex::build(&self.vectors, config, m, ksub)?)
            }
            IndexSpec::Hnsw(config) => {
                Box::new(HnswIndex::build(&self.vectors, self.metric, config)?)
            }
            IndexSpec::HnswSq(config) => {
                Box::new(HnswSqIndex::build(&self.vectors, self.metric, config)?)
            }
            IndexSpec::DiskAnn(config) => {
                Box::new(DiskAnnIndex::build(&self.vectors, self.metric, config)?)
            }
        };
        self.index = Some(index);
        self.index_spec = Some(spec);
        Ok(())
    }

    /// Searches the collection, honoring tombstones and an optional payload
    /// filter. Returns up to `k` hits with payloads, closest first, plus the
    /// I/O trace of the underlying index search.
    ///
    /// Filtered searches over-fetch from the index (4× `k`, growing if
    /// needed) and post-filter — the strategy the benchmarked databases use
    /// for low-selectivity filters. Vectors inserted after the last
    /// [`Collection::build_index`] are covered by a brute-force scan of the
    /// tail, merged with index results.
    ///
    /// # Errors
    ///
    /// Propagates index errors; fails on an empty collection.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Filter>,
    ) -> Result<Vec<SearchHit>> {
        Ok(self.search_traced(query, k, params, filter)?.0)
    }

    /// Like [`Collection::search`] but also returns the query trace.
    ///
    /// # Errors
    ///
    /// See [`Collection::search`].
    pub fn search_traced(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Filter>,
    ) -> Result<(Vec<SearchHit>, QueryTrace)> {
        if self.vectors.is_empty() {
            return Err(Error::Empty("collection"));
        }
        if k == 0 {
            return Err(Error::invalid_parameter("k", "must be positive"));
        }
        let accepts = |id: u32| -> bool {
            !self.deleted[id as usize]
                && filter
                    .map(|f| f.matches(&self.payloads[id as usize]))
                    .unwrap_or(true)
        };

        let (mut pool, trace) = match &self.index {
            None => (
                self.bruteforce(query, 0, self.vectors.len())?,
                QueryTrace::new(),
            ),
            Some(index) => {
                // Over-fetch for post-filtering, growing until enough hits
                // survive or the whole collection was requested. The trace
                // accumulates across retries — a selective filter costs real
                // work, and the caller should see it.
                let mut full_trace = QueryTrace::new();
                let mut fetch = if filter.is_some() { 4 * k } else { k };
                loop {
                    let out = index.search(query, fetch.min(index.len()), params)?;
                    full_trace.steps.extend(out.trace.steps);
                    let mut pool: Vec<Neighbor> = out
                        .neighbors
                        .iter()
                        .copied()
                        .filter(|n| accepts(n.id))
                        .collect();
                    let exhausted = fetch >= index.len();
                    if pool.len() >= k || exhausted {
                        // Cover vectors appended after the index was built.
                        if index.len() < self.vectors.len() {
                            pool.extend(self.bruteforce(query, index.len(), self.vectors.len())?);
                        }
                        break (pool, full_trace);
                    }
                    fetch *= 2;
                }
            }
        };

        pool.retain(|n| accepts(n.id));
        pool.sort_unstable();
        pool.dedup_by_key(|n| n.id);
        pool.truncate(k);
        let hits = pool
            .into_iter()
            .map(|n| SearchHit {
                id: n.id,
                dist: n.dist,
                payload: self.payloads[n.id as usize].clone(),
            })
            .collect();
        Ok((hits, trace))
    }

    /// Exact scan over id range `[from, to)`.
    fn bruteforce(&self, query: &[f32], from: usize, to: usize) -> Result<Vec<Neighbor>> {
        if query.len() != self.vectors.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.vectors.dim(),
                actual: query.len(),
            });
        }
        Ok((from..to)
            .map(|i| Neighbor::new(i as u32, self.metric.distance(query, self.vectors.row(i))))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Value;
    use sann_datagen::EmbeddingModel;

    fn filled(n: usize) -> Collection {
        let data = EmbeddingModel::new(16, 4, 3).generate(n);
        let mut c = Collection::new("test", 16, Metric::L2).unwrap();
        for (i, row) in data.iter().enumerate() {
            let p = Payload::new().with("parity", Value::Int((i % 2) as i64));
            c.insert(row, p).unwrap();
        }
        c
    }

    #[test]
    fn insert_get_delete_round_trip() {
        let mut c = Collection::new("t", 2, Metric::L2).unwrap();
        let id = c
            .insert(&[1.0, 2.0], Payload::new().with("x", 1i64))
            .unwrap();
        assert_eq!(c.get(id).unwrap().0, &[1.0, 2.0]);
        assert_eq!(c.live_len(), 1);
        c.delete(id).unwrap();
        assert!(matches!(c.get(id), Err(Error::NotFound(_))));
        assert_eq!(c.live_len(), 0);
        assert_eq!(c.len(), 1);
        assert!(matches!(c.delete(99), Err(Error::IdOutOfBounds { .. })));
    }

    #[test]
    fn unindexed_search_is_exact() {
        let c = filled(200);
        let q = c.vectors().row(42).to_vec();
        let hits = c.search(&q, 1, &SearchParams::default(), None).unwrap();
        assert_eq!(hits[0].id, 42);
    }

    #[test]
    fn deleted_vectors_vanish_from_results() {
        let mut c = filled(100);
        let q = c.vectors().row(7).to_vec();
        c.delete(7).unwrap();
        let hits = c.search(&q, 5, &SearchParams::default(), None).unwrap();
        assert!(hits.iter().all(|h| h.id != 7));
    }

    #[test]
    fn filtered_search_respects_predicate() {
        let mut c = filled(300);
        c.build_index(IndexSpec::Hnsw(HnswConfig::default()))
            .unwrap();
        let q = c.vectors().row(0).to_vec();
        let filter = Filter::eq("parity", Value::Int(1));
        let hits = c
            .search(&q, 10, &SearchParams::default(), Some(&filter))
            .unwrap();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|h| h.id % 2 == 1));
    }

    #[test]
    fn highly_selective_filter_overfetches_until_satisfied() {
        let mut c = filled(256);
        // Mark a single vector with a unique field.
        c.insert(&[9.0; 16], Payload::new().with("rare", true))
            .unwrap();
        c.build_index(IndexSpec::Flat).unwrap();
        let hits = c
            .search(
                &[0.0; 16],
                1,
                &SearchParams::default(),
                Some(&Filter::eq("rare", true)),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].payload.get("rare").is_some());
    }

    #[test]
    fn inserts_after_index_build_are_found() {
        let mut c = filled(200);
        c.build_index(IndexSpec::Hnsw(HnswConfig::default()))
            .unwrap();
        let id = c.insert(&[5.0; 16], Payload::new()).unwrap();
        let hits = c
            .search(&[5.0; 16], 1, &SearchParams::default(), None)
            .unwrap();
        assert_eq!(hits[0].id, id);
    }

    #[test]
    fn all_index_kinds_build_and_search() {
        let specs = [
            IndexSpec::Flat,
            IndexSpec::Ivf(IvfConfig::default().with_nlist(16)),
            IndexSpec::IvfPq {
                config: IvfConfig::default().with_nlist(16),
                m: 8,
                ksub: 16,
            },
            IndexSpec::Hnsw(HnswConfig::default()),
            IndexSpec::DiskAnn(DiskAnnConfig {
                graph: sann_index::VamanaConfig {
                    r: 16,
                    l_build: 40,
                    ..Default::default()
                },
                pq_m: 8,
                pq_ksub: 16,
                base_offset: 0,
            }),
        ];
        for spec in specs {
            let mut c = filled(400);
            c.build_index(spec).unwrap();
            let q = c.vectors().row(11).to_vec();
            let hits = c
                .search(&q, 1, &SearchParams::default().with_search_list(20), None)
                .unwrap();
            assert_eq!(hits[0].id, 11, "spec {spec:?}");
        }
    }

    #[test]
    fn traced_search_reports_io_for_storage_index() {
        let mut c = filled(400);
        c.build_index(IndexSpec::DiskAnn(DiskAnnConfig {
            graph: sann_index::VamanaConfig {
                r: 16,
                l_build: 40,
                ..Default::default()
            },
            pq_m: 8,
            pq_ksub: 16,
            base_offset: 0,
        }))
        .unwrap();
        let q = c.vectors().row(0).to_vec();
        let (_, trace) = c
            .search_traced(&q, 5, &SearchParams::default(), None)
            .unwrap();
        assert!(trace.io_count() > 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Collection::new("x", 0, Metric::L2).is_err());
        let c = Collection::new("x", 4, Metric::L2).unwrap();
        assert!(
            c.search(&[0.0; 4], 1, &SearchParams::default(), None)
                .is_err(),
            "empty"
        );
        let c = filled(10);
        assert!(c
            .search(&[0.0; 3], 1, &SearchParams::default(), None)
            .is_err());
        assert!(c
            .search(&[0.0; 16], 0, &SearchParams::default(), None)
            .is_err());
    }

    #[test]
    fn from_dataset_populates() {
        let data = EmbeddingModel::new(8, 2, 9).generate(50);
        let c = Collection::from_dataset("d", &data, Metric::L2);
        assert_eq!(c.len(), 50);
        assert_eq!(c.live_len(), 50);
        assert_eq!(c.dim(), 8);
    }
}
