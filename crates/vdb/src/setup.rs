//! The paper's seven benchmark setups (§III-C / §IV):
//! five memory-based — Milvus-IVF, Milvus-HNSW, Qdrant-HNSW, Weaviate-HNSW,
//! LanceDB-HNSW — and two storage-based — Milvus-DiskANN and LanceDB-IVF(PQ).

use crate::profiles::DbProfile;
use sann_core::{Dataset, Metric, Result};
use sann_datagen::{DatasetSpec, GroundTruth};
use sann_index::{
    DiskAnnConfig, DiskAnnIndex, HnswConfig, HnswIndex, HnswSqIndex, IoStrategy, IvfConfig,
    IvfIndex, IvfPqIndex, SearchParams, VamanaConfig, VectorIndex,
};

/// One of the paper's seven (database × index) configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SetupKind {
    /// Milvus with memory-based IVF-Flat.
    MilvusIvf,
    /// Milvus with memory-based HNSW.
    MilvusHnsw,
    /// Milvus with storage-based DiskANN.
    MilvusDiskann,
    /// Qdrant with memory-based HNSW.
    QdrantHnsw,
    /// Weaviate with memory-based HNSW.
    WeaviateHnsw,
    /// LanceDB with memory-based HNSW (scalar-quantized).
    LancedbHnsw,
    /// LanceDB with storage-based IVF + product quantization.
    LancedbIvf,
}

impl SetupKind {
    /// All seven setups in the paper's presentation order.
    pub fn all() -> [SetupKind; 7] {
        [
            SetupKind::MilvusIvf,
            SetupKind::MilvusHnsw,
            SetupKind::MilvusDiskann,
            SetupKind::QdrantHnsw,
            SetupKind::WeaviateHnsw,
            SetupKind::LancedbHnsw,
            SetupKind::LancedbIvf,
        ]
    }

    /// The figure-legend name.
    pub fn name(&self) -> &'static str {
        match self {
            SetupKind::MilvusIvf => "milvus-ivf",
            SetupKind::MilvusHnsw => "milvus-hnsw",
            SetupKind::MilvusDiskann => "milvus-diskann",
            SetupKind::QdrantHnsw => "qdrant-hnsw",
            SetupKind::WeaviateHnsw => "weaviate-hnsw",
            SetupKind::LancedbHnsw => "lancedb-hnsw",
            SetupKind::LancedbIvf => "lancedb-ivf",
        }
    }

    /// Parses a setup from its [`name`](SetupKind::name).
    pub fn parse(name: &str) -> Option<SetupKind> {
        SetupKind::all().into_iter().find(|k| k.name() == name)
    }

    /// The database profile behind the setup.
    pub fn profile(&self) -> DbProfile {
        match self {
            SetupKind::MilvusIvf | SetupKind::MilvusHnsw | SetupKind::MilvusDiskann => {
                DbProfile::milvus()
            }
            SetupKind::QdrantHnsw => DbProfile::qdrant(),
            SetupKind::WeaviateHnsw => DbProfile::weaviate(),
            SetupKind::LancedbHnsw | SetupKind::LancedbIvf => DbProfile::lancedb(),
        }
    }

    /// Whether the index reads from storage during search (dashed lines in
    /// the paper's figures).
    pub fn is_storage_based(&self) -> bool {
        matches!(self, SetupKind::MilvusDiskann | SetupKind::LancedbIvf)
    }
}

impl std::fmt::Display for SetupKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build- and search-time parameters for one (setup × dataset) cell of the
/// paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedParams {
    /// IVF: number of clusters (`4√n`, the faiss guideline).
    pub nlist: usize,
    /// IVF: clusters probed per query.
    pub nprobe: usize,
    /// HNSW: degree parameter `M`.
    pub m: usize,
    /// HNSW: `efConstruction`.
    pub ef_construction: usize,
    /// HNSW: `efSearch`.
    pub ef_search: usize,
    /// DiskANN: graph degree bound `R`.
    pub r: usize,
    /// DiskANN: `search_list`.
    pub search_list: usize,
    /// DiskANN: `beam_width`.
    pub beam_width: usize,
}

impl TunedParams {
    /// Starting parameters for a dataset of `n` vectors, following the
    /// paper's §III-C rules (`nlist = 4√n`, `M = 16`, `efConstruction = 200`,
    /// `search_list = 10`). Search-time values are starting points for
    /// [`Setup::tune`].
    pub fn for_dataset(n: usize) -> TunedParams {
        TunedParams {
            nlist: IvfConfig::nlist_for(n),
            nprobe: 16,
            m: 16,
            ef_construction: 200,
            ef_search: 27,
            r: 64,
            search_list: 10,
            beam_width: 4,
        }
    }

    /// The [`SearchParams`] view of the tuned values.
    pub fn search_params(&self) -> SearchParams {
        SearchParams {
            nprobe: self.nprobe,
            ef_search: self.ef_search,
            search_list: self.search_list,
            beam_width: self.beam_width,
            io: IoStrategy::default(),
        }
    }
}

/// A runnable (database × index) setup bound to tuned parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Setup {
    /// Which of the seven configurations this is.
    pub kind: SetupKind,
    /// Tuned parameters.
    pub params: TunedParams,
    /// Build seed (varied for repeat-run error bars).
    pub seed: u64,
}

impl Setup {
    /// Creates a setup with parameters initialized from the dataset size.
    pub fn new(kind: SetupKind, n: usize) -> Setup {
        Setup {
            kind,
            params: TunedParams::for_dataset(n),
            seed: 0xBE7C4,
        }
    }

    /// Builds the setup's index over `base`.
    ///
    /// # Errors
    ///
    /// Propagates index build errors.
    pub fn build_index(&self, base: &Dataset, metric: Metric) -> Result<Box<dyn VectorIndex>> {
        let p = &self.params;
        Ok(match self.kind {
            SetupKind::MilvusIvf => Box::new(IvfIndex::build(
                base,
                metric,
                IvfConfig {
                    nlist: p.nlist,
                    seed: self.seed,
                    ..IvfConfig::default()
                },
            )?),
            // Graph builds run single-threaded: multi-threaded insertion
            // orders race, and byte-identical artifacts across runs (and
            // across prep-thread counts) are what make the artifact cache
            // and the determinism audit sound. Parallelism is recovered one
            // level up, across whole (dataset × index) builds.
            SetupKind::MilvusHnsw | SetupKind::QdrantHnsw | SetupKind::WeaviateHnsw => {
                Box::new(HnswIndex::build(
                    base,
                    metric,
                    HnswConfig {
                        m: p.m,
                        ef_construction: p.ef_construction,
                        seed: self.seed,
                        threads: 1,
                    },
                )?)
            }
            // LanceDB's HNSW is scalar-quantized (paper §III-C), which is
            // why its efSearch tunes higher than the other databases'.
            SetupKind::LancedbHnsw => Box::new(HnswSqIndex::build(
                base,
                metric,
                HnswConfig {
                    m: p.m,
                    ef_construction: p.ef_construction,
                    seed: self.seed,
                    threads: 1,
                },
            )?),
            SetupKind::MilvusDiskann => Box::new(DiskAnnIndex::build(
                base,
                metric,
                DiskAnnConfig {
                    graph: VamanaConfig {
                        r: p.r,
                        seed: self.seed,
                        threads: 1,
                        ..VamanaConfig::default()
                    },
                    ..DiskAnnConfig::default()
                },
            )?),
            SetupKind::LancedbIvf => Box::new(IvfPqIndex::build(
                base,
                IvfConfig {
                    nlist: p.nlist,
                    seed: self.seed,
                    ..IvfConfig::default()
                },
                pq_m_for(base.dim()),
                256.min(base.len().saturating_sub(1)).max(2),
            )?),
        })
    }

    /// Tunes the setup's search-time parameter upward until mean recall@10
    /// reaches `target` on the query set (or the parameter ladder is
    /// exhausted — LanceDB-IVF stops early exactly as in the paper, which
    /// reports its sub-target accuracy in parentheses). Returns the achieved
    /// recall.
    ///
    /// # Errors
    ///
    /// Propagates search errors.
    pub fn tune(
        &mut self,
        index: &dyn VectorIndex,
        queries: &Dataset,
        truth: &GroundTruth,
        target: f64,
    ) -> Result<f64> {
        let k = truth.k();
        let ladder: Vec<usize> = match self.kind {
            SetupKind::MilvusIvf => vec![4, 8, 12, 16, 20, 25, 32, 40, 48, 64, 96, 128],
            SetupKind::LancedbIvf => vec![4, 8, 12, 16, 20, 25],
            SetupKind::MilvusDiskann => vec![10, 15, 20, 30, 40, 60, 80, 100],
            _ => vec![10, 14, 20, 27, 34, 41, 48, 56, 64, 80, 100, 128],
        };
        let mut achieved = 0.0;
        for &value in &ladder {
            self.apply_knob(value);
            achieved = self.recall(index, queries, truth, k)?;
            if achieved >= target {
                break;
            }
        }
        Ok(achieved)
    }

    /// Sets the setup's primary search knob (`nprobe`, `efSearch`, or
    /// `search_list`).
    pub fn apply_knob(&mut self, value: usize) {
        match self.kind {
            SetupKind::MilvusIvf | SetupKind::LancedbIvf => self.params.nprobe = value,
            SetupKind::MilvusDiskann => self.params.search_list = value,
            _ => self.params.ef_search = value,
        }
    }

    /// The current value of the primary search knob.
    pub fn knob(&self) -> usize {
        match self.kind {
            SetupKind::MilvusIvf | SetupKind::LancedbIvf => self.params.nprobe,
            SetupKind::MilvusDiskann => self.params.search_list,
            _ => self.params.ef_search,
        }
    }

    /// Mean recall@`k` of the setup on a query set.
    ///
    /// # Errors
    ///
    /// Propagates search errors.
    pub fn recall(
        &self,
        index: &dyn VectorIndex,
        queries: &Dataset,
        truth: &GroundTruth,
        k: usize,
    ) -> Result<f64> {
        self.recall_with(index, queries, truth, k, &self.params.search_params())
    }

    /// Like [`Setup::recall`] but with explicit [`SearchParams`] — the
    /// I/O design-space explorer varies [`IoStrategy`] while keeping the
    /// tuned knobs fixed.
    ///
    /// # Errors
    ///
    /// Propagates search errors.
    pub fn recall_with(
        &self,
        index: &dyn VectorIndex,
        queries: &Dataset,
        truth: &GroundTruth,
        k: usize,
        params: &SearchParams,
    ) -> Result<f64> {
        let ids = sann_index::search_ids(index, queries, k, params)?;
        Ok(truth.mean_recall(&ids))
    }

    /// Collects the query traces of the whole query set at the current
    /// parameters (the input to the execution engine).
    ///
    /// # Errors
    ///
    /// Propagates search errors.
    pub fn traces(
        &self,
        index: &dyn VectorIndex,
        queries: &Dataset,
        k: usize,
    ) -> Result<Vec<sann_index::QueryTrace>> {
        self.traces_with(index, queries, k, &self.params.search_params())
    }

    /// Like [`Setup::traces`] but with explicit [`SearchParams`] — the
    /// I/O design-space explorer collects traces per [`IoStrategy`].
    ///
    /// # Errors
    ///
    /// Propagates search errors.
    pub fn traces_with(
        &self,
        index: &dyn VectorIndex,
        queries: &Dataset,
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<sann_index::QueryTrace>> {
        let mut traces = Vec::with_capacity(queries.len());
        for q in queries.iter() {
            traces.push(index.search(q, k, params)?.trace);
        }
        Ok(traces)
    }

    /// The dataset-size ratio fed to
    /// [`DbProfile::plan_builder`]: 1.0 for the family's small variant,
    /// 10.0 for the large one.
    pub fn size_ratio(spec: &DatasetSpec) -> f64 {
        if spec.name.ends_with("-l") {
            10.0
        } else {
            1.0
        }
    }
}

/// The plan compiler for a setup: the DB profile's architecture model
/// composed with the **scale-extrapolation** model.
///
/// Traces are collected on datasets `scale`× smaller than the paper's, but
/// per-query work in the measured systems does not shrink linearly with the
/// dataset. The compiled plans therefore multiply the data-dependent work by
/// `(1/scale)^γ` with a per-index-family exponent (IVF scans shrink slowest,
/// graph searches fastest), and LanceDB's on-disk posting lists replicate
/// reads by `(1/scale)^0.5` (list length ∝ n/nlist ∝ √n). Exponents are
/// fitted once against the paper's reported throughput/latency ratios (see
/// EXPERIMENTS.md) and are not re-tuned per figure.
///
/// `size_ratio` is 1.0 for a family's small dataset and 10.0 for the large
/// one; `scale` is the dataset scale relative to the paper (1.0 = paper
/// size, at which the extrapolation is the identity).
pub fn calibrated_plan_builder(
    kind: SetupKind,
    size_ratio: f64,
    scale: f64,
) -> sann_engine::PlanBuilder {
    let mut builder = kind.profile().plan_builder(size_ratio);
    let inv = (1.0 / scale.max(1e-12)).max(1.0);
    let (work, io) = match kind {
        SetupKind::MilvusIvf => (inv.powf(0.8), 1.0),
        SetupKind::LancedbIvf => (inv.powf(0.75), inv.powf(0.5)),
        SetupKind::MilvusDiskann => (inv.powf(0.5), 1.0),
        _ => (inv.powf(0.69), 1.0), // the HNSW setups
    };
    if kind == SetupKind::MilvusIvf {
        // Milvus parallelizes IVF scans more coarsely than graph searches;
        // modeled as a smaller fan-out (fitted so IVF tail latency sits
        // above DiskANN's, as in Fig. 3).
        builder = builder.with_intra_parallelism(2);
    }
    let fanout = builder.io_fanout() * (io.round().max(1.0) as usize);
    builder.with_work_multiplier(work).with_io_fanout(fanout)
}

/// PQ sub-space count used by the LanceDB-IVF setup: one byte per 8 dims.
fn pq_m_for(dim: usize) -> usize {
    let target = (dim / 8).max(1);
    (1..=target)
        .rev()
        .find(|&m| dim.is_multiple_of(m))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_datagen::EmbeddingModel;

    fn small_world() -> (Dataset, Dataset, GroundTruth) {
        let model = EmbeddingModel::new(32, 8, 123);
        let base = model.generate(2_000);
        let queries = model.generate_queries(25);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);
        (base, queries, gt)
    }

    #[test]
    fn names_round_trip() {
        for kind in SetupKind::all() {
            assert_eq!(SetupKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SetupKind::parse("pinecone"), None);
    }

    #[test]
    fn exactly_two_setups_are_storage_based() {
        let n = SetupKind::all()
            .iter()
            .filter(|k| k.is_storage_based())
            .count();
        assert_eq!(n, 2);
        assert!(SetupKind::MilvusDiskann.is_storage_based());
        assert!(SetupKind::LancedbIvf.is_storage_based());
    }

    #[test]
    fn memory_setups_tune_to_target() {
        let (base, queries, gt) = small_world();
        for kind in [
            SetupKind::MilvusIvf,
            SetupKind::MilvusHnsw,
            SetupKind::MilvusDiskann,
        ] {
            let mut setup = Setup::new(kind, base.len());
            let index = setup.build_index(&base, Metric::L2).unwrap();
            let recall = setup.tune(index.as_ref(), &queries, &gt, 0.9).unwrap();
            assert!(recall >= 0.9, "{kind} reached only {recall}");
        }
    }

    #[test]
    fn lancedb_ivf_stops_below_target() {
        // The paper reports LanceDB-IVF below the 0.9 target (0.64–0.73)
        // because its ladder is cut short for cost reasons.
        let (base, queries, gt) = small_world();
        let mut setup = Setup::new(SetupKind::LancedbIvf, base.len());
        let index = setup.build_index(&base, Metric::L2).unwrap();
        let recall = setup.tune(index.as_ref(), &queries, &gt, 0.9).unwrap();
        assert!(
            recall < 0.95,
            "PQ-without-rerank should not be near-perfect: {recall}"
        );
        assert!(recall > 0.2, "but should be usable: {recall}");
    }

    #[test]
    fn traces_cover_every_query() {
        let (base, queries, _) = small_world();
        let setup = Setup::new(SetupKind::MilvusDiskann, base.len());
        let index = setup.build_index(&base, Metric::L2).unwrap();
        let traces = setup.traces(index.as_ref(), &queries, 10).unwrap();
        assert_eq!(traces.len(), queries.len());
        assert!(
            traces.iter().all(|t| t.io_count() > 0),
            "DiskANN queries must read"
        );
    }

    #[test]
    fn knob_maps_to_the_right_parameter() {
        let mut ivf = Setup::new(SetupKind::MilvusIvf, 1000);
        ivf.apply_knob(42);
        assert_eq!(ivf.params.nprobe, 42);
        assert_eq!(ivf.knob(), 42);
        let mut hnsw = Setup::new(SetupKind::QdrantHnsw, 1000);
        hnsw.apply_knob(77);
        assert_eq!(hnsw.params.ef_search, 77);
        let mut dann = Setup::new(SetupKind::MilvusDiskann, 1000);
        dann.apply_knob(55);
        assert_eq!(dann.params.search_list, 55);
    }

    #[test]
    fn size_ratio_distinguishes_families() {
        assert_eq!(Setup::size_ratio(&sann_datagen::catalog::cohere_s()), 1.0);
        assert_eq!(Setup::size_ratio(&sann_datagen::catalog::cohere_l()), 10.0);
    }

    #[test]
    fn nlist_follows_faiss_rule() {
        let p = TunedParams::for_dataset(1_000_000);
        assert_eq!(p.nlist, 4_000);
    }

    #[test]
    fn build_index_is_deterministic_and_persistable() {
        // Every setup's index must build byte-identically run over run —
        // the invariant the artifact cache and determinism audit rest on.
        let model = EmbeddingModel::new(16, 4, 321);
        let base = model.generate(600);
        for kind in SetupKind::all() {
            let setup = Setup::new(kind, base.len());
            let a = setup.build_index(&base, Metric::L2).unwrap();
            let b = setup.build_index(&base, Metric::L2).unwrap();
            let (ab, bb) = (a.persist_encode(), b.persist_encode());
            assert!(ab.is_some(), "{kind} must be persistable");
            assert_eq!(ab, bb, "{kind} build is not deterministic");
        }
    }
}
