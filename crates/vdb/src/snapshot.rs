//! Snapshot persistence for collections.
//!
//! Snapshots capture vectors, payloads, and tombstones in a small
//! hand-rolled binary format (magic `SANN`, version byte). Indexes are *not*
//! serialized — they are rebuilt from the spec on load, which is what the
//! benchmarked databases do on segment reload.

use crate::collection::Collection;
use crate::payload::{Payload, Value};
use sann_core::buf::{ByteReader, ByteWriter};
use sann_core::{Error, Metric, Result};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SANN";
const VERSION: u8 = 1;

/// Serializes a collection (vectors + payloads + tombstones) to bytes.
pub fn encode(collection: &Collection) -> Vec<u8> {
    let mut buf = ByteWriter::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_str(collection.name());
    buf.put_u8(match collection.metric() {
        Metric::L2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    });
    buf.put_u32_le(collection.dim() as u32);
    buf.put_u64_le(collection.len() as u64);
    for row in collection.vectors().iter() {
        for &x in row {
            buf.put_f32_le(x);
        }
    }
    for id in 0..collection.len() as u32 {
        buf.put_u8(if collection.is_live(id) { 0 } else { 1 });
    }
    for id in 0..collection.len() as u32 {
        // Tombstoned payloads still round-trip (get() rejects them, so peek
        // via search paths is unaffected).
        let payload = collection_payload(collection, id);
        put_payload(&mut buf, &payload);
    }
    buf.into_bytes()
}

/// Deserializes a collection from bytes.
///
/// # Errors
///
/// Returns [`Error::Corrupt`] on any structural problem.
pub fn decode(data: &[u8]) -> Result<Collection> {
    let corrupt = |what: &str| Error::Corrupt(format!("snapshot: {what}"));
    let mut data = ByteReader::new(data, "snapshot");
    if data.remaining() < 5 || &data.rest()[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    data.take(4)?;
    let version = data.get_u8()?;
    if version != VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let name = data.get_str()?;
    let metric = match data.get_u8()? {
        0 => Metric::L2,
        1 => Metric::InnerProduct,
        2 => Metric::Cosine,
        other => return Err(corrupt(&format!("unknown metric {other}"))),
    };
    let dim = data.get_u32_le()? as usize;
    let n = data.get_u64_le()? as usize;
    if dim == 0 {
        return Err(corrupt("zero dimension"));
    }
    if data.remaining() < n * dim * 4 {
        return Err(corrupt("truncated vectors"));
    }
    let mut collection = Collection::new(name, dim, metric)?;
    let mut row = vec![0.0f32; dim];
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        for slot in row.iter_mut() {
            *slot = data.get_f32_le()?;
        }
        rows.push(row.clone());
    }
    if data.remaining() < n {
        return Err(corrupt("truncated tombstones"));
    }
    let mut tombstones = Vec::with_capacity(n);
    for _ in 0..n {
        tombstones.push(data.get_u8()? == 1);
    }
    for vec_row in &rows {
        let payload = get_payload(&mut data)?;
        collection.insert(vec_row, payload)?;
    }
    for (id, &dead) in tombstones.iter().enumerate() {
        if dead {
            collection.delete(id as u32)?;
        }
    }
    Ok(collection)
}

/// Writes a snapshot file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(collection: &Collection, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, encode(collection))?;
    Ok(())
}

/// Reads a snapshot file.
///
/// # Errors
///
/// Propagates filesystem errors and [`Error::Corrupt`] on bad content.
pub fn load(path: impl AsRef<Path>) -> Result<Collection> {
    let data = std::fs::read(path)?;
    decode(&data)
}

fn collection_payload(collection: &Collection, id: u32) -> Payload {
    // `get` refuses tombstoned rows; resurrect via a temporary live check.
    if collection.is_live(id) {
        collection
            .get(id)
            .map(|(_, p)| p.clone())
            .unwrap_or_default()
    } else {
        Payload::default()
    }
}

fn put_payload(buf: &mut ByteWriter, payload: &Payload) {
    buf.put_u32_le(payload.len() as u32);
    for (field, value) in payload.iter() {
        buf.put_str(field);
        match value {
            Value::Str(s) => {
                buf.put_u8(0);
                buf.put_str(s);
            }
            Value::Int(i) => {
                buf.put_u8(1);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(2);
                buf.put_f64_le(*f);
            }
            Value::Bool(b) => {
                buf.put_u8(3);
                buf.put_u8(*b as u8);
            }
        }
    }
}

fn get_payload(data: &mut ByteReader<'_>) -> Result<Payload> {
    let n = data.get_u32_le()? as usize;
    let mut payload = Payload::new();
    for _ in 0..n {
        let field = data.get_str()?;
        let tag = data.get_u8()?;
        let value = match tag {
            0 => Value::Str(data.get_str()?),
            1 => Value::Int(data.get_i64_le()?),
            2 => Value::Float(data.get_f64_le()?),
            3 => Value::Bool(data.get_u8()? == 1),
            other => {
                return Err(Error::Corrupt(format!(
                    "snapshot: unknown value tag {other}"
                )))
            }
        };
        payload.set(field, value);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::Metric;

    fn sample() -> Collection {
        let mut c = Collection::new("docs", 3, Metric::Cosine).unwrap();
        c.insert(
            &[1.0, 0.0, 0.0],
            Payload::new().with("lang", "en").with("n", 1i64),
        )
        .unwrap();
        c.insert(
            &[0.0, 1.0, 0.0],
            Payload::new().with("score", 0.5).with("hot", true),
        )
        .unwrap();
        c.insert(&[0.0, 0.0, 1.0], Payload::new()).unwrap();
        c.delete(2).unwrap();
        c
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample();
        let decoded = decode(&encode(&original)).unwrap();
        assert_eq!(decoded.name(), "docs");
        assert_eq!(decoded.metric(), Metric::Cosine);
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded.live_len(), 2);
        let (v, p) = decoded.get(0).unwrap();
        assert_eq!(v, &[1.0, 0.0, 0.0]);
        assert_eq!(p.get("lang"), Some(&Value::Str("en".into())));
        assert_eq!(p.get("n"), Some(&Value::Int(1)));
        let (_, p1) = decoded.get(1).unwrap();
        assert_eq!(p1.get("score"), Some(&Value::Float(0.5)));
        assert_eq!(p1.get("hot"), Some(&Value::Bool(true)));
        assert!(!decoded.is_live(2));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sann-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("docs.sann");
        save(&sample(), &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corruption() {
        let good = encode(&sample());
        assert!(matches!(decode(b"JUNK"), Err(Error::Corrupt(_))));
        assert!(matches!(decode(&good[..10]), Err(Error::Corrupt(_))));
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(matches!(decode(&bad_version), Err(Error::Corrupt(_))));
        let mut bad_metric = good.clone();
        // metric byte sits after magic+version+name(len 4 + "docs")
        bad_metric[4 + 1 + 4 + 4] = 7;
        assert!(matches!(decode(&bad_metric), Err(Error::Corrupt(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(load("/nonexistent/sann.snap"), Err(Error::Io(_))));
    }
}
