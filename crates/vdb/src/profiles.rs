//! Engine profiles of the four benchmarked databases.
//!
//! The paper's central observation (O-2, O-8, KF-*) is that databases using
//! the *same index* differ by up to 7.1× in throughput and 96.1% in latency:
//! the database architecture — not just the index — determines performance.
//! A [`DbProfile`] captures the architectural properties responsible, as a
//! small set of parameters applied on top of the real index traces:
//!
//! | Parameter | Models |
//! |---|---|
//! | `cpu_factor` | engine efficiency: SIMD kernels, language runtime (C++ Milvus vs Rust Qdrant vs Go Weaviate vs embedded-Python LanceDB) |
//! | `overhead_us` | per-query fixed cost: RPC/HTTP handling, planning, result assembly |
//! | `intra_fanout` | intra-query parallelism (Milvus executes one query across segments on multiple cores; the others are one-core-per-query) |
//! | `scale_exponent` | how per-query cost grows with dataset size beyond the index's own growth (segment-per-query execution makes Milvus degrade ~linearly; Weaviate is nearly flat — paper O-6) |
//! | `max_clients` | client-side limits (LanceDB-HNSW runs out of memory above 128 query threads in the paper) |
//!
//! Values are calibrated so the *relative shapes* of Figs. 2–4 hold; see
//! EXPERIMENTS.md for the calibration notes.

use sann_engine::{
    CostModel, DeviceCostModel, FaultConfig, FaultProfile, PlanBuilder, QueryLedger, RetryPolicy,
    RunMetrics,
};

/// Execution-architecture model of one database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbProfile {
    /// Database name as used in the paper's figures.
    pub name: &'static str,
    /// Multiplier on all per-operation CPU costs.
    pub cpu_factor: f64,
    /// Fixed per-query CPU overhead, µs.
    pub overhead_us: f64,
    /// Number of cores one query's compute fans out over.
    pub intra_fanout: usize,
    /// Exponent γ: per-query cost gains an extra `size_ratio^γ` factor when
    /// the dataset grows by `size_ratio` (1.0 for the family's small
    /// dataset, 10.0 for the large one).
    pub scale_exponent: f64,
    /// Exponent for I/O growth with dataset size: read beams are replicated
    /// `size_ratio^io_scale_exponent` times. Milvus executes one beam per
    /// data segment and segment count grows with the dataset (which is how
    /// the paper's per-query read bytes grow 8.4–10.1× at 10× data, O-14).
    pub io_scale_exponent: f64,
    /// CPU charged per read beam beyond raw submission (storage-engine I/O
    /// path: async context switches, polling, result handling), µs.
    pub hop_overhead_us: f64,
    /// Core-free per-query latency floor (client RPC round trip and
    /// scheduler hand-offs), µs.
    pub latency_floor_us: f64,
    /// Admission cap on concurrently executing queries (0 = unlimited).
    pub max_concurrent: usize,
    /// Maximum supported client threads (0 = unlimited). Exceeding it fails
    /// the run (LanceDB's out-of-memory behaviour at high concurrency).
    pub max_clients: usize,
    /// Page-cache bytes available to storage reads (0 = direct I/O).
    pub cache_bytes: u64,
    /// Per-read retry budget when the device reports a transient error
    /// (storage-layer resilience; only observable under `--fault-profile`).
    pub max_retries: u32,
    /// Initial retry backoff, µs (doubles per attempt).
    pub retry_backoff_us: f64,
    /// Issue a hedged duplicate read after this many µs in flight
    /// (0 = never hedge).
    pub hedge_after_us: f64,
    /// Per-query I/O deadline, µs: reads still unresolved past it are
    /// abandoned and the query returns a partial top-k (0 = no deadline).
    pub io_deadline_us: f64,
}

impl DbProfile {
    /// Milvus: C++ engine with highly optimized (SIMD) kernels and
    /// segment-parallel query execution — fastest single-thread latency,
    /// early throughput plateau, and the steepest degradation as datasets
    /// grow (paper O-5/O-6: drops to 8–15% at 10× data).
    pub fn milvus() -> DbProfile {
        DbProfile {
            name: "milvus",
            cpu_factor: 1.0,
            overhead_us: 40.0,
            intra_fanout: 6,
            scale_exponent: 1.0,
            io_scale_exponent: 1.0,
            hop_overhead_us: 420.0,
            latency_floor_us: 400.0,
            max_concurrent: 0,
            max_clients: 0,
            cache_bytes: 0,
            max_retries: 3,
            retry_backoff_us: 100.0,
            hedge_after_us: 5_000.0,
            io_deadline_us: 0.0,
        }
    }

    /// Qdrant: Rust engine, inter-query parallelism only; moderate kernels,
    /// better scaling with dataset size (drops to ~30–60% at 10×).
    pub fn qdrant() -> DbProfile {
        DbProfile {
            name: "qdrant",
            cpu_factor: 2.6,
            overhead_us: 60.0,
            intra_fanout: 1,
            scale_exponent: 0.4,
            io_scale_exponent: 0.0,
            hop_overhead_us: 0.0,
            latency_floor_us: 500.0,
            max_concurrent: 0,
            max_clients: 0,
            cache_bytes: 0,
            max_retries: 2,
            retry_backoff_us: 200.0,
            hedge_after_us: 0.0,
            io_deadline_us: 0.0,
        }
    }

    /// Weaviate: Go engine — the slowest kernels of the three servers, but
    /// throughput that is nearly flat in dataset size (paper O-6 even shows
    /// small increases).
    pub fn weaviate() -> DbProfile {
        DbProfile {
            name: "weaviate",
            cpu_factor: 4.5,
            overhead_us: 80.0,
            intra_fanout: 1,
            scale_exponent: 0.0,
            io_scale_exponent: 0.0,
            hop_overhead_us: 0.0,
            latency_floor_us: 900.0,
            max_concurrent: 0,
            max_clients: 0,
            cache_bytes: 0,
            max_retries: 2,
            retry_backoff_us: 500.0,
            hedge_after_us: 0.0,
            io_deadline_us: 0.0,
        }
    }

    /// LanceDB: embedded Python library — large per-call overhead, quantized
    /// kernels, and an out-of-memory failure above 128 concurrent query
    /// threads (paper §IV-A).
    pub fn lancedb() -> DbProfile {
        DbProfile {
            name: "lancedb",
            cpu_factor: 5.0,
            overhead_us: 2_500.0,
            intra_fanout: 1,
            scale_exponent: 0.4,
            io_scale_exponent: 0.4,
            hop_overhead_us: 400.0,
            latency_floor_us: 3000.0,
            max_concurrent: 0,
            max_clients: 128,
            cache_bytes: 0,
            max_retries: 1,
            retry_backoff_us: 1_000.0,
            hedge_after_us: 0.0,
            io_deadline_us: 0.0,
        }
    }

    /// The plan compiler for this profile at a given dataset `size_ratio`
    /// (1.0 = the family's small dataset, 10.0 = the large one).
    pub fn plan_builder(&self, size_ratio: f64) -> PlanBuilder {
        let factor = self.cpu_factor * size_ratio.max(1e-9).powf(self.scale_exponent);
        let io_fanout = size_ratio.max(1.0).powf(self.io_scale_exponent).round() as usize;
        let cost = CostModel::default()
            .scaled(factor)
            .with_overhead_us(self.overhead_us);
        PlanBuilder::new(cost)
            .with_intra_parallelism(self.intra_fanout)
            .with_io_fanout(io_fanout)
            .with_read_overhead_us(self.hop_overhead_us * self.cpu_factor)
            .with_latency_floor_us(self.latency_floor_us)
    }

    /// Whether `concurrency` client threads are supported.
    pub fn supports_clients(&self, concurrency: usize) -> bool {
        self.max_clients == 0 || concurrency <= self.max_clients
    }

    /// The engine fault configuration for this database under an injected
    /// SSD fault profile: the profile decides *what the device does*, the
    /// database decides *how it reacts* (retry budget, backoff, hedging,
    /// deadline). With [`FaultProfile::none`] the result is inert and the
    /// engine keeps its fault-free fast path.
    pub fn fault_config(&self, profile: FaultProfile) -> FaultConfig {
        FaultConfig {
            profile,
            retry: RetryPolicy {
                max_retries: self.max_retries,
                backoff_us: self.retry_backoff_us,
                backoff_mult: 2.0,
            },
            hedge_after_us: self.hedge_after_us,
            io_deadline_us: self.io_deadline_us,
            ..FaultConfig::default()
        }
    }

    /// Prices a run of this database on `device`: the $/query ledger of
    /// [`DeviceCostModel::price`], surfaced at the profile layer so cost
    /// reporting flows through the same interface as every other run
    /// parameter. Fault profiles compose automatically — a degraded device
    /// completes fewer queries against the same amortized spend, so its
    /// $/query is strictly worse.
    pub fn ledger(
        &self,
        metrics: &RunMetrics,
        cores: usize,
        device: DeviceCostModel,
    ) -> QueryLedger {
        device.price(metrics, cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_index::QueryTrace;

    fn unit_trace() -> QueryTrace {
        let mut t = QueryTrace::new();
        t.push_compute(1000, 768);
        t
    }

    #[test]
    fn milvus_is_fastest_per_query_on_small_data() {
        let trace = unit_trace();
        let cpu = |p: DbProfile| p.plan_builder(1.0).build(&trace).cpu_us();
        let m = cpu(DbProfile::milvus());
        let q = cpu(DbProfile::qdrant());
        let w = cpu(DbProfile::weaviate());
        let l = cpu(DbProfile::lancedb());
        assert!(m < q && q < w, "milvus {m} < qdrant {q} < weaviate {w}");
        assert!(l > w, "lancedb {l} slowest");
    }

    #[test]
    fn milvus_degrades_most_with_dataset_size() {
        let trace = unit_trace();
        let ratio = |p: DbProfile| {
            let small = p.plan_builder(1.0).build(&trace).cpu_us();
            let large = p.plan_builder(10.0).build(&trace).cpu_us();
            large / small
        };
        let m = ratio(DbProfile::milvus());
        let q = ratio(DbProfile::qdrant());
        let w = ratio(DbProfile::weaviate());
        assert!(m > 8.0, "milvus 10x-data cost ratio {m}");
        assert!((1.5..5.0).contains(&q), "qdrant ratio {q}");
        assert!(w < 1.5, "weaviate ratio {w}");
    }

    #[test]
    fn only_milvus_fans_out() {
        assert!(DbProfile::milvus().intra_fanout > 1);
        assert_eq!(DbProfile::qdrant().intra_fanout, 1);
        assert_eq!(DbProfile::weaviate().intra_fanout, 1);
        assert_eq!(DbProfile::lancedb().intra_fanout, 1);
    }

    #[test]
    fn fault_config_carries_each_databases_policy() {
        let fc = DbProfile::milvus().fault_config(FaultProfile::flaky());
        assert_eq!(fc.profile, FaultProfile::flaky());
        assert_eq!(fc.retry.max_retries, 3);
        assert_eq!(fc.hedge_after_us, 5_000.0);
        assert_eq!(
            DbProfile::lancedb()
                .fault_config(FaultProfile::none())
                .retry
                .max_retries,
            1
        );
        // The none profile leaves every policy inert.
        assert!(!DbProfile::qdrant()
            .fault_config(FaultProfile::none())
            .profile
            .active());
    }

    #[test]
    fn aging_device_prices_worse_per_query() {
        use sann_engine::{Executor, QueryPlan, RunConfig, Segment};
        use sann_index::IoReq;
        let plan = QueryPlan::new(vec![
            Segment::cpu(20.0),
            Segment::io(vec![IoReq::new(0, 4096), IoReq::new(8192, 4096)]),
        ]);
        let profile = DbProfile::milvus();
        let run = |fp: FaultProfile| {
            let config = RunConfig {
                cores: 4,
                concurrency: 4,
                duration_us: 0.2e6,
                faults: profile.fault_config(fp),
                ..RunConfig::default()
            };
            Executor::new(config).run(std::slice::from_ref(&plan))
        };
        let healthy = run(FaultProfile::none());
        let aging = run(FaultProfile::aging());
        let device = DeviceCostModel::samsung_990_pro();
        let healthy_ledger = profile.ledger(&healthy, 4, device);
        let aging_ledger = profile.ledger(&aging, 4, device);
        assert!(aging.completed < healthy.completed, "aging throttles reads");
        assert!(
            aging_ledger.usd_per_query() > healthy_ledger.usd_per_query(),
            "fewer queries over the same amortized window must cost more \
             per query: {} vs {}",
            aging_ledger.usd_per_query(),
            healthy_ledger.usd_per_query()
        );
    }

    #[test]
    fn lancedb_rejects_256_clients() {
        assert!(!DbProfile::lancedb().supports_clients(256));
        assert!(DbProfile::lancedb().supports_clients(128));
        assert!(DbProfile::milvus().supports_clients(256));
    }
}
