//! A single-node vector database, plus the engine profiles and benchmark
//! setups of the paper's four databases.
//!
//! The paper (§II-C) distinguishes vector *databases* from bare ANNS
//! *indexes*: databases add payloads, filtered search, mutation, and
//! persistence on top of an index. This crate provides both halves:
//!
//! * the **database**: [`VectorDb`] → [`Collection`] with payload storage,
//!   insert/delete (tombstones), payload-[`Filter`]ed search, snapshot
//!   persistence, and pluggable indexes ([`IndexSpec`]);
//! * the **characterization setups**: [`DbProfile`] models each benchmarked
//!   database's execution architecture and [`Setup`] enumerates the paper's
//!   seven (database × index × placement) configurations used throughout
//!   Figs. 2–15.
//!
//! # Examples
//!
//! ```
//! use sann_vdb::{Collection, Filter, IndexSpec, Payload, Value};
//! use sann_core::Metric;
//! use sann_index::SearchParams;
//!
//! let mut docs = Collection::new("docs", 4, Metric::L2)?;
//! for i in 0..100u32 {
//!     let v = [i as f32, 0.0, 0.0, 0.0];
//!     let payload = Payload::new().with("category", Value::Int((i % 2) as i64));
//!     docs.insert(&v, payload)?;
//! }
//! docs.build_index(IndexSpec::Flat)?;
//! let filter = Filter::eq("category", Value::Int(0));
//! let hits = docs.search(&[5.0, 0.0, 0.0, 0.0], 3, &SearchParams::default(), Some(&filter))?;
//! assert!(hits.iter().all(|h| h.id % 2 == 0));
//! # Ok::<(), sann_core::Error>(())
//! ```

pub mod collection;
pub mod db;
pub mod payload;
pub mod profiles;
pub mod setup;
pub mod snapshot;

pub use collection::{Collection, IndexSpec, SearchHit};
pub use db::VectorDb;
pub use payload::{Filter, Payload, Value};
pub use profiles::DbProfile;
pub use setup::{Setup, SetupKind, TunedParams};
