//! The database facade: named collections with persistence.

use crate::collection::Collection;
use crate::snapshot;
use sann_core::{Error, Metric, Result};
use std::collections::BTreeMap;
use std::path::Path;

/// A single-node vector database: a set of named [`Collection`]s.
///
/// # Examples
///
/// ```
/// use sann_vdb::VectorDb;
/// use sann_core::Metric;
///
/// let mut db = VectorDb::new();
/// db.create_collection("docs", 8, Metric::L2)?;
/// db.collection_mut("docs")?.insert(&[0.0; 8], Default::default())?;
/// assert_eq!(db.collection("docs")?.len(), 1);
/// # Ok::<(), sann_core::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct VectorDb {
    collections: BTreeMap<String, Collection>,
}

impl VectorDb {
    /// Creates an empty database.
    pub fn new() -> VectorDb {
        VectorDb::default()
    }

    /// Creates a collection.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AlreadyExists`] for duplicate names and propagates
    /// collection construction errors.
    pub fn create_collection(
        &mut self,
        name: impl Into<String>,
        dim: usize,
        metric: Metric,
    ) -> Result<&mut Collection> {
        let name = name.into();
        if self.collections.contains_key(&name) {
            return Err(Error::AlreadyExists(format!("collection {name}")));
        }
        let collection = Collection::new(name.clone(), dim, metric)?;
        Ok(self.collections.entry(name).or_insert(collection))
    }

    /// Adds an already-built collection (e.g. loaded from a snapshot).
    ///
    /// # Errors
    ///
    /// Returns [`Error::AlreadyExists`] for duplicate names.
    pub fn add_collection(&mut self, collection: Collection) -> Result<()> {
        if self.collections.contains_key(collection.name()) {
            return Err(Error::AlreadyExists(format!(
                "collection {}",
                collection.name()
            )));
        }
        self.collections
            .insert(collection.name().to_owned(), collection);
        Ok(())
    }

    /// Drops a collection.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unknown names.
    pub fn drop_collection(&mut self, name: &str) -> Result<Collection> {
        self.collections
            .remove(name)
            .ok_or_else(|| Error::NotFound(format!("collection {name}")))
    }

    /// Borrows a collection.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unknown names.
    pub fn collection(&self, name: &str) -> Result<&Collection> {
        self.collections
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("collection {name}")))
    }

    /// Mutably borrows a collection.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unknown names.
    pub fn collection_mut(&mut self, name: &str) -> Result<&mut Collection> {
        self.collections
            .get_mut(name)
            .ok_or_else(|| Error::NotFound(format!("collection {name}")))
    }

    /// Collection names in sorted order.
    pub fn collection_names(&self) -> Vec<&str> {
        self.collections.keys().map(String::as_str).collect()
    }

    /// Number of collections.
    pub fn len(&self) -> usize {
        self.collections.len()
    }

    /// Whether the database has no collections.
    pub fn is_empty(&self) -> bool {
        self.collections.is_empty()
    }

    /// Persists every collection as `<dir>/<name>.sann`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_dir(&self, dir: impl AsRef<Path>) -> Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (name, collection) in &self.collections {
            snapshot::save(collection, dir.join(format!("{name}.sann")))?;
        }
        Ok(())
    }

    /// Loads every `*.sann` snapshot in a directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and corruption errors.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<VectorDb> {
        let mut db = VectorDb::new();
        for entry in std::fs::read_dir(dir.as_ref())? {
            let path = entry?.path();
            if path.extension().map(|e| e == "sann").unwrap_or(false) {
                db.add_collection(snapshot::load(&path)?)?;
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_drop() {
        let mut db = VectorDb::new();
        db.create_collection("a", 4, Metric::L2).unwrap();
        assert!(db.create_collection("a", 4, Metric::L2).is_err());
        assert_eq!(db.collection_names(), vec!["a"]);
        assert!(db.collection("b").is_err());
        db.drop_collection("a").unwrap();
        assert!(db.is_empty());
        assert!(db.drop_collection("a").is_err());
    }

    #[test]
    fn save_and_load_directory() {
        let mut db = VectorDb::new();
        db.create_collection("x", 2, Metric::L2).unwrap();
        db.collection_mut("x")
            .unwrap()
            .insert(&[1.0, 2.0], Default::default())
            .unwrap();
        db.create_collection("y", 3, Metric::Cosine).unwrap();
        db.collection_mut("y")
            .unwrap()
            .insert(&[1.0, 2.0, 3.0], Default::default())
            .unwrap();

        let dir = std::env::temp_dir().join(format!("sann-db-test-{}", std::process::id()));
        db.save_dir(&dir).unwrap();
        let loaded = VectorDb::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.collection("x").unwrap().len(), 1);
        assert_eq!(loaded.collection("y").unwrap().metric(), Metric::Cosine);
        std::fs::remove_dir_all(&dir).ok();
    }
}
