//! Payloads (per-vector auxiliary data) and payload filters.

use std::collections::BTreeMap;

/// A scalar payload value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// UTF-8 string.
    Str(String),
    /// Signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Numeric view (ints widen to f64); `None` for strings/bools.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

/// Auxiliary data attached to one vector (field → value).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Payload {
    fields: BTreeMap<String, Value>,
}

impl Payload {
    /// An empty payload.
    pub fn new() -> Payload {
        Payload::default()
    }

    /// Builder-style field insertion.
    pub fn with(mut self, field: impl Into<String>, value: impl Into<Value>) -> Payload {
        self.fields.insert(field.into(), value.into());
        self
    }

    /// Sets a field.
    pub fn set(&mut self, field: impl Into<String>, value: impl Into<Value>) {
        self.fields.insert(field.into(), value.into());
    }

    /// Reads a field.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.fields.get(field)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the payload has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates fields in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// A predicate over payloads, used for filtered search.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Field equals value.
    Eq(String, Value),
    /// Numeric field within `[min, max]` (inclusive).
    Range {
        /// Field name.
        field: String,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// All sub-filters match.
    And(Vec<Filter>),
    /// Any sub-filter matches.
    Or(Vec<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// Equality filter.
    pub fn eq(field: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Eq(field.into(), value.into())
    }

    /// Inclusive numeric range filter.
    pub fn range(field: impl Into<String>, min: f64, max: f64) -> Filter {
        Filter::Range {
            field: field.into(),
            min,
            max,
        }
    }

    /// Evaluates the filter against a payload. Missing fields never match
    /// (and make `Not` match).
    pub fn matches(&self, payload: &Payload) -> bool {
        match self {
            Filter::Eq(field, value) => payload.get(field) == Some(value),
            Filter::Range { field, min, max } => payload
                .get(field)
                .and_then(Value::as_f64)
                .map(|x| x >= *min && x <= *max)
                .unwrap_or(false),
            Filter::And(subs) => subs.iter().all(|f| f.matches(payload)),
            Filter::Or(subs) => subs.iter().any(|f| f.matches(payload)),
            Filter::Not(sub) => !sub.matches(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Payload {
        Payload::new()
            .with("lang", "en")
            .with("year", 2024i64)
            .with("score", 0.7)
            .with("hot", true)
    }

    #[test]
    fn eq_matches_exact_type_and_value() {
        assert!(Filter::eq("lang", "en").matches(&doc()));
        assert!(!Filter::eq("lang", "de").matches(&doc()));
        assert!(!Filter::eq("missing", "x").matches(&doc()));
        // Int 2024 != Float 2024.0 (typed equality).
        assert!(!Filter::eq("year", 2024.0).matches(&doc()));
    }

    #[test]
    fn range_covers_ints_and_floats() {
        assert!(Filter::range("year", 2020.0, 2030.0).matches(&doc()));
        assert!(Filter::range("score", 0.5, 0.9).matches(&doc()));
        assert!(!Filter::range("score", 0.8, 0.9).matches(&doc()));
        assert!(
            !Filter::range("lang", 0.0, 1.0).matches(&doc()),
            "strings are not numeric"
        );
    }

    #[test]
    fn boolean_combinators() {
        let f = Filter::And(vec![
            Filter::eq("lang", "en"),
            Filter::Or(vec![
                Filter::eq("hot", true),
                Filter::range("year", 0.0, 1.0),
            ]),
        ]);
        assert!(f.matches(&doc()));
        let not = Filter::Not(Box::new(Filter::eq("lang", "en")));
        assert!(!not.matches(&doc()));
        assert!(Filter::Not(Box::new(Filter::eq("missing", 1i64))).matches(&doc()));
    }

    #[test]
    fn payload_accessors() {
        let mut p = doc();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        p.set("year", 2025i64);
        assert_eq!(p.get("year"), Some(&Value::Int(2025)));
        let names: Vec<&str> = p.iter().map(|(k, _)| k).collect();
        assert_eq!(
            names,
            vec!["hot", "lang", "score", "year"],
            "sorted field order"
        );
    }

    #[test]
    fn value_as_f64() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Bool(true).as_f64(), None);
    }
}
