//! Dense vector storage.

use crate::error::{Error, Result};

/// A dense, row-major matrix of `f32` vectors.
///
/// `Dataset` is the universal carrier of base vectors and query vectors in the
/// workspace: generators produce it, indexes are built from it, and ground
/// truth is computed against it. Rows are contiguous so that distance kernels
/// operate on plain slices.
///
/// # Examples
///
/// ```
/// use sann_core::Dataset;
///
/// let mut d = Dataset::with_dim(3);
/// d.push(&[1.0, 2.0, 3.0]).unwrap();
/// d.push(&[4.0, 5.0, 6.0]).unwrap();
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.row(1), &[4.0, 5.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    data: Vec<f32>,
    dim: usize,
}

impl Dataset {
    /// Creates an empty dataset that will hold vectors of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn with_dim(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Dataset {
            data: Vec::new(),
            dim,
        }
    }

    /// Creates a dataset from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `data.len()` is not a multiple
    /// of `dim`, or if `dim` is zero.
    pub fn from_flat(data: Vec<f32>, dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(Error::invalid_parameter("dim", "must be positive"));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(Error::invalid_parameter(
                "data",
                format!("length {} is not a multiple of dim {}", data.len(), dim),
            ));
        }
        Ok(Dataset { data, dim })
    }

    /// Creates a dataset from a list of rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `rows` is empty and
    /// [`Error::DimensionMismatch`] when rows disagree on length.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Result<Self> {
        let first = rows.first().ok_or(Error::Empty("rows"))?;
        let dim = first.len();
        if dim == 0 {
            return Err(Error::invalid_parameter("rows", "rows must be non-empty"));
        }
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in &rows {
            if row.len() != dim {
                return Err(Error::DimensionMismatch {
                    expected: dim,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Dataset { data, dim })
    }

    /// Appends one vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `row.len() != self.dim()`.
    pub fn push(&mut self, row: &[f32]) -> Result<()> {
        if row.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        Ok(())
    }

    /// The dimensionality of every vector in the dataset.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors stored.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the dataset holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrow row `i`, or `None` when out of bounds.
    pub fn get(&self, i: usize) -> Option<&[f32]> {
        if i < self.len() {
            Some(self.row(i))
        } else {
            None
        }
    }

    /// Iterate over rows in id order.
    pub fn iter(&self) -> Rows<'_> {
        Rows {
            data: &self.data,
            dim: self.dim,
            front: 0,
            back: self.data.len() / self.dim,
        }
    }

    /// The underlying flat row-major buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the dataset and returns the flat buffer.
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }

    /// Returns a new dataset containing the first `n` rows (or all rows if
    /// `n >= self.len()`).
    pub fn truncated(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            data: self.data[..n * self.dim].to_vec(),
            dim: self.dim,
        }
    }

    /// Bytes needed to store one full-precision vector.
    pub fn row_bytes(&self) -> usize {
        self.dim * std::mem::size_of::<f32>()
    }

    /// Appends the canonical little-endian encoding (`dim`, `n`, then the
    /// flat row-major `f32` bit patterns) to `buf`. Two datasets encode to
    /// the same bytes iff they are bit-identical, so this doubles as a
    /// fingerprintable form for artifact-cache keys.
    pub fn encode_into(&self, buf: &mut crate::buf::ByteWriter) {
        buf.put_u32_le(self.dim as u32);
        buf.put_u64_le(self.len() as u64);
        for &x in &self.data {
            buf.put_f32_le(x);
        }
    }

    /// Reads a dataset previously written by [`Dataset::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation or a zero dimension.
    pub fn decode_from(r: &mut crate::buf::ByteReader<'_>) -> Result<Dataset> {
        let dim = r.get_u32_le()? as usize;
        let n = r.get_u64_le()? as usize;
        if dim == 0 {
            return Err(Error::Corrupt("dataset: zero dimension".into()));
        }
        let total = n
            .checked_mul(dim)
            .ok_or_else(|| Error::Corrupt("dataset: size overflow".into()))?;
        if r.remaining() < total * 4 {
            return Err(Error::Corrupt("dataset: truncated vectors".into()));
        }
        let mut data = Vec::with_capacity(total);
        for _ in 0..total {
            data.push(r.get_f32_le()?);
        }
        Ok(Dataset { data, dim })
    }
}

/// Iterator over the rows of a [`Dataset`].
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    data: &'a [f32],
    dim: usize,
    front: usize,
    back: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [f32];

    fn next(&mut self) -> Option<&'a [f32]> {
        if self.front == self.back {
            return None;
        }
        let row = &self.data[self.front * self.dim..(self.front + 1) * self.dim];
        self.front += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.back - self.front;
        (rem, Some(rem))
    }
}

impl DoubleEndedIterator for Rows<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        if self.front == self.back {
            return None;
        }
        self.back -= 1;
        Some(&self.data[self.back * self.dim..(self.back + 1) * self.dim])
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a [f32];
    type IntoIter = Rows<'a>;

    fn into_iter(self) -> Rows<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let d = Dataset::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(d.dim(), 2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(0), &[1.0, 2.0]);
        assert_eq!(d.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Dataset::from_rows(vec![vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert_eq!(
            err,
            Error::DimensionMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(Dataset::from_rows(vec![]), Err(Error::Empty(_))));
    }

    #[test]
    fn from_flat_validates_multiple() {
        assert!(Dataset::from_flat(vec![1.0, 2.0, 3.0], 2).is_err());
        let d = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn push_checks_dim() {
        let mut d = Dataset::with_dim(3);
        assert!(d.push(&[1.0, 2.0]).is_err());
        assert!(d.push(&[1.0, 2.0, 3.0]).is_ok());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn get_is_checked() {
        let d = Dataset::from_rows(vec![vec![1.0]]).unwrap();
        assert!(d.get(0).is_some());
        assert!(d.get(1).is_none());
    }

    #[test]
    fn iter_visits_all_rows_in_order() {
        let d = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let ids: Vec<f32> = d.iter().map(|r| r[0]).collect();
        assert_eq!(ids, vec![0.0, 1.0, 2.0]);
        assert_eq!(d.iter().len(), 3);
    }

    #[test]
    fn iter_double_ended() {
        let d = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let ids: Vec<f32> = d.iter().rev().map(|r| r[0]).collect();
        assert_eq!(ids, vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let d = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let t = d.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(1), &[1.0]);
        assert_eq!(d.truncated(99).len(), 3);
    }

    #[test]
    fn row_bytes_counts_f32() {
        let d = Dataset::with_dim(768);
        assert_eq!(d.row_bytes(), 3072);
    }

    #[test]
    fn codec_round_trips_bit_exact() {
        let d = Dataset::from_rows(vec![vec![1.5, -0.0], vec![f32::MIN_POSITIVE, 3e9]]).unwrap();
        let mut w = crate::buf::ByteWriter::new();
        d.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::buf::ByteReader::new(&bytes, "test");
        let back = Dataset::decode_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back.dim(), 2);
        assert_eq!(back.as_flat(), d.as_flat());
        // -0.0 survives as a bit pattern.
        assert!(back.row(0)[1].is_sign_negative());
    }

    #[test]
    fn codec_rejects_truncation() {
        let d = Dataset::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        let mut w = crate::buf::ByteWriter::new();
        d.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::buf::ByteReader::new(&bytes[..bytes.len() - 1], "test");
        assert!(matches!(
            Dataset::decode_from(&mut r),
            Err(Error::Corrupt(_))
        ));
    }
}
