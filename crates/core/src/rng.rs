//! A tiny deterministic RNG used across the workspace.
//!
//! Experiments must be reproducible bit-for-bit across crates and runs, so
//! the workspace seeds everything from [`SplitMix64`] (Steele et al.,
//! "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014) rather than
//! threading `rand` generics through every API. The `rand` crate is still
//! used where distributions are needed; this type is for cheap, portable
//! stream splitting.

/// SplitMix64 pseudorandom number generator.
///
/// # Examples
///
/// ```
/// use sann_core::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child stream. Streams derived with different
    /// `tag`s from the same parent are decorrelated.
    pub fn split(&self, tag: u64) -> SplitMix64 {
        let mut probe = SplitMix64 {
            state: self.state ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // Burn one output so adjacent tags diverge immediately.
        probe.next_u64();
        probe
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free variant is unnecessary here;
        // plain modulo bias is < 2^-40 for the bounds used in this workspace.
        self.next_u64() % bound
    }

    /// Standard normal sample via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        // Draw until u1 is nonzero so ln() is finite.
        let mut u1 = self.next_f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffles a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Samples `n` distinct indices from `[0, len)` (reservoir sampling).
    /// Returns fewer than `n` when `len < n`.
    pub fn sample_indices(&mut self, len: usize, n: usize) -> Vec<usize> {
        let mut reservoir: Vec<usize> = (0..len.min(n)).collect();
        for i in n..len {
            let j = self.next_bounded(i as u64 + 1) as usize;
            if j < n {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_diverge() {
        let root = SplitMix64::new(7);
        let mut a = root.split(1);
        let mut b = root.split(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_bounded(10) < 10);
        }
    }

    #[test]
    fn gaussian_has_sane_moments() {
        let mut r = SplitMix64::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<u32>>(),
            "shuffle left slice unchanged"
        );
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = SplitMix64::new(9);
        let s = r.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_small_universe() {
        let mut r = SplitMix64::new(9);
        let s = r.sample_indices(3, 10);
        assert_eq!(s, vec![0, 1, 2]);
    }
}
