//! Little-endian byte encoding and decoding.
//!
//! Used by the snapshot format in `sann-vdb` and by the canonical metric
//! fingerprints the determinism audit compares byte-for-byte. Everything is
//! explicit little-endian so encodings are identical across platforms.

use crate::error::{Error, Result};

/// Append-only little-endian encoder over a `Vec<u8>`.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    bytes: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32_le(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64_le(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64_le(&mut self, v: i64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32` bit pattern.
    pub fn put_f32_le(&mut self, v: f32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64` bit pattern.
    pub fn put_f64_le(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` length prefix followed by the UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32_le(s.len() as u32);
        self.put_slice(s.as_bytes());
    }
}

/// Cursor-style little-endian decoder over a byte slice.
///
/// Every getter checks bounds and returns [`Error::Corrupt`] on truncation,
/// tagged with the reader's `context` string.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `data`; `context` prefixes error messages.
    pub fn new(data: &'a [u8], context: &'static str) -> ByteReader<'a> {
        ByteReader { data, context }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// The unconsumed tail.
    pub fn rest(&self) -> &'a [u8] {
        self.data
    }

    fn corrupt(&self, what: &str) -> Error {
        Error::Corrupt(format!("{}: {what}", self.context))
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.data.len() < n {
            return Err(self.corrupt("truncated"));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation.
    pub fn get_u32_le(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation.
    pub fn get_u64_le(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation.
    pub fn get_i64_le(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation.
    pub fn get_f32_le(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation.
    pub fn get_f64_le(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u32_le()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid utf-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_i64_le(-42);
        w.put_f32_le(1.5);
        w.put_f64_le(-0.25);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32_le().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64_le().unwrap(), -42);
        assert_eq!(r.get_f32_le().unwrap(), 1.5);
        assert_eq!(r.get_f64_le().unwrap(), -0.25);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_corrupt_with_context() {
        let mut r = ByteReader::new(&[1, 2], "snapshot");
        match r.get_u32_le() {
            Err(Error::Corrupt(msg)) => assert!(msg.starts_with("snapshot:")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_utf8_is_corrupt() {
        let mut w = ByteWriter::new();
        w.put_u32_le(2);
        w.put_slice(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes, "t").get_str().is_err());
    }

    #[test]
    fn encodings_are_little_endian() {
        let mut w = ByteWriter::new();
        w.put_u32_le(1);
        assert_eq!(w.as_slice(), &[1, 0, 0, 0]);
    }
}
