//! Distance metrics and their kernels.
//!
//! All kernels operate on plain `&[f32]` slices and are written with 4-way
//! manual unrolling so that the compiler auto-vectorizes them; this is the
//! hot path of every index in the workspace.

/// A vector distance metric.
///
/// All three metrics are expressed as *distances* (lower is closer) so that
/// top-k collection logic is uniform:
///
/// * [`Metric::L2`] is the **squared** Euclidean distance (monotonic in the
///   true Euclidean distance, cheaper to compute — the convention used by
///   faiss and DiskANN),
/// * [`Metric::InnerProduct`] is the negated dot product,
/// * [`Metric::Cosine`] is `1 - cosine_similarity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Metric {
    /// Squared Euclidean distance.
    L2,
    /// Negated inner product (maximum inner product search).
    InnerProduct,
    /// Cosine distance, `1 - cos(a, b)`.
    Cosine,
}

impl Metric {
    /// Computes the distance between two vectors.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the slices have different lengths.
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "distance between mismatched dims");
        match self {
            Metric::L2 => l2_squared(a, b),
            Metric::InnerProduct => -dot(a, b),
            Metric::Cosine => cosine_distance(a, b),
        }
    }

    /// A short lowercase name, as used in configuration files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::L2 => "l2",
            Metric::InnerProduct => "ip",
            Metric::Cosine => "cosine",
        }
    }

    /// Parses a metric from its [`name`](Metric::name).
    pub fn parse(name: &str) -> Option<Metric> {
        match name {
            "l2" => Some(Metric::L2),
            "ip" => Some(Metric::InnerProduct),
            "cosine" => Some(Metric::Cosine),
            _ => None,
        }
    }

    /// The single-byte wire tag used by every binary codec in the workspace
    /// (collection snapshots, index artifacts, cache keys).
    pub fn tag(&self) -> u8 {
        match self {
            Metric::L2 => 0,
            Metric::InnerProduct => 1,
            Metric::Cosine => 2,
        }
    }

    /// Inverse of [`Metric::tag`].
    pub fn from_tag(tag: u8) -> Option<Metric> {
        match tag {
            0 => Some(Metric::L2),
            1 => Some(Metric::InnerProduct),
            2 => Some(Metric::Cosine),
            _ => None,
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Squared Euclidean distance between `a` and `b`.
///
/// # Examples
///
/// ```
/// let d = sann_core::distance::l2_squared(&[0.0, 0.0], &[3.0, 4.0]);
/// assert_eq!(d, 25.0);
/// ```
#[inline]
pub fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let chunks = n / 4;
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut tail = 0.0f32;
    for j in chunks * 4..n {
        let d = a[j] - b[j];
        tail += d * d;
    }
    s0 + s1 + s2 + s3 + tail
}

/// Dot product of `a` and `b`.
///
/// # Examples
///
/// ```
/// let d = sann_core::distance::dot(&[1.0, 2.0], &[3.0, 4.0]);
/// assert_eq!(d, 11.0);
/// ```
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let chunks = n / 4;
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0f32;
    for j in chunks * 4..n {
        tail += a[j] * b[j];
    }
    s0 + s1 + s2 + s3 + tail
}

/// Euclidean norm of `v`.
#[inline]
pub fn norm(v: &[f32]) -> f32 {
    dot(v, v).sqrt()
}

/// Cosine distance `1 - cos(a, b)`.
///
/// Returns `1.0` (orthogonal) when either vector has zero norm, so the
/// function is total.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

/// Normalizes `v` to unit length in place. Zero vectors are left unchanged.
pub fn normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_l2(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn l2_matches_naive_for_odd_lengths() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 13, 768] {
            let a: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
            let b: Vec<f32> = (0..n).map(|i| (n - i) as f32 * 0.25).collect();
            let fast = l2_squared(&a, &b);
            let naive = naive_l2(&a, &b);
            assert!(
                (fast - naive).abs() < 1e-3 * naive.max(1.0),
                "n={n}: {fast} vs {naive}"
            );
        }
    }

    #[test]
    fn dot_matches_naive_for_odd_lengths() {
        for n in [1usize, 3, 6, 9, 1536] {
            let a: Vec<f32> = (0..n).map(|i| (i % 7) as f32 - 3.0).collect();
            let b: Vec<f32> = (0..n).map(|i| (i % 5) as f32 - 2.0).collect();
            let fast = dot(&a, &b);
            let naive = naive_dot(&a, &b);
            assert!((fast - naive).abs() < 1e-3 * naive.abs().max(1.0));
        }
    }

    #[test]
    fn metric_l2_is_squared() {
        assert_eq!(Metric::L2.distance(&[0.0], &[2.0]), 4.0);
    }

    #[test]
    fn metric_ip_is_negated() {
        assert_eq!(
            Metric::InnerProduct.distance(&[1.0, 1.0], &[2.0, 3.0]),
            -5.0
        );
    }

    #[test]
    fn cosine_identity_and_orthogonal() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((Metric::Cosine.distance(&a, &a)).abs() < 1e-6);
        assert!((Metric::Cosine.distance(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_total() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn metric_name_round_trips() {
        for m in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            assert_eq!(Metric::parse(m.name()), Some(m));
            assert_eq!(m.to_string(), m.name());
        }
        assert_eq!(Metric::parse("hamming"), None);
    }
}
