//! Recall computation — the accuracy metric of approximate nearest neighbor
//! search (`recall@k = |K ∩ K'| / k` in the paper's §II-A).

use crate::topk::Neighbor;

/// Computes `recall@k` for one query: the fraction of the true `k` nearest
/// neighbors that appear in `found`.
///
/// Only the first `k` entries of each slice are considered; passing shorter
/// slices is allowed (the divisor is `k`, matching the paper's definition, so
/// returning fewer than `k` results is penalized).
///
/// # Examples
///
/// ```
/// let recall = sann_core::recall::recall_at_k(&[1, 2, 3, 4], &[2, 9, 4, 7], 4);
/// assert_eq!(recall, 0.5);
/// ```
pub fn recall_at_k(truth: &[u32], found: &[u32], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let truth = &truth[..truth.len().min(k)];
    let found = &found[..found.len().min(k)];
    let mut hits = 0usize;
    for id in found {
        if truth.contains(id) {
            hits += 1;
        }
    }
    hits as f64 / k as f64
}

/// Computes the mean `recall@k` over a batch of queries.
///
/// # Panics
///
/// Panics if `truth` and `found` have different lengths.
pub fn mean_recall_at_k(truth: &[Vec<u32>], found: &[Vec<u32>], k: usize) -> f64 {
    assert_eq!(truth.len(), found.len(), "query count mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let total: f64 = truth
        .iter()
        .zip(found)
        .map(|(t, f)| recall_at_k(t, f, k))
        .sum();
    total / truth.len() as f64
}

/// Extracts ids from a list of [`Neighbor`] hits (convenience for recall
/// computation on search results).
pub fn ids(neighbors: &[Neighbor]) -> Vec<u32> {
    neighbors.iter().map(|n| n.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recall() {
        assert_eq!(recall_at_k(&[5, 6, 7], &[7, 6, 5], 3), 1.0);
    }

    #[test]
    fn zero_recall() {
        assert_eq!(recall_at_k(&[1, 2], &[3, 4], 2), 0.0);
    }

    #[test]
    fn partial_results_are_penalized() {
        // Found only one of two true neighbors and returned only one result.
        assert_eq!(recall_at_k(&[1, 2], &[1], 2), 0.5);
    }

    #[test]
    fn k_zero_is_zero() {
        assert_eq!(recall_at_k(&[1], &[1], 0), 0.0);
    }

    #[test]
    fn only_first_k_found_count() {
        // The true neighbor appearing beyond position k must not count.
        assert_eq!(recall_at_k(&[1], &[9, 1], 1), 0.0);
    }

    #[test]
    fn mean_over_batch() {
        let truth = vec![vec![1, 2], vec![3, 4]];
        let found = vec![vec![1, 2], vec![4, 9]];
        assert_eq!(mean_recall_at_k(&truth, &found, 2), 0.75);
    }

    #[test]
    fn mean_of_empty_batch_is_zero() {
        assert_eq!(mean_recall_at_k(&[], &[], 10), 0.0);
    }

    #[test]
    fn ids_extracts_in_order() {
        let hits = vec![Neighbor::new(4, 0.1), Neighbor::new(2, 0.2)];
        assert_eq!(ids(&hits), vec![4, 2]);
    }
}
