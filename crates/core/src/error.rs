//! Error types shared across the `sann` workspace.

use std::fmt;

/// A specialized [`Result`](std::result::Result) with [`Error`] as the error type.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by `sann` crates.
///
/// The variants cover the failure classes of the whole workspace so that
/// downstream crates can wrap this single type instead of defining a ladder
/// of nearly identical enums.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Two vectors (or a vector and an index) disagree on dimensionality.
    DimensionMismatch {
        /// The dimensionality that was expected.
        expected: usize,
        /// The dimensionality that was provided.
        actual: usize,
    },
    /// A parameter was outside its legal range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable explanation of the constraint that was violated.
        message: String,
    },
    /// A vector id referenced a row that does not exist.
    IdOutOfBounds {
        /// The offending id.
        id: u64,
        /// Number of rows actually present.
        len: u64,
    },
    /// The operation requires a non-empty collection/dataset.
    Empty(&'static str),
    /// An index/snapshot on disk was malformed.
    Corrupt(String),
    /// Anything I/O-shaped (simulated device errors, snapshot files).
    Io(String),
    /// The named entity (collection, dataset, setup) does not exist.
    NotFound(String),
    /// The named entity already exists.
    AlreadyExists(String),
}

impl Error {
    /// Convenience constructor for [`Error::InvalidParameter`].
    pub fn invalid_parameter(name: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::IdOutOfBounds { id, len } => {
                write!(f, "vector id {id} out of bounds for length {len}")
            }
            Error::Empty(what) => write!(f, "{what} is empty"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::AlreadyExists(what) => write!(f, "already exists: {what}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = Error::DimensionMismatch {
            expected: 768,
            actual: 1536,
        };
        let text = err.to_string();
        assert!(text.contains("768"));
        assert!(text.contains("1536"));
        assert!(text.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: Error = io.into();
        assert!(matches!(err, Error::Io(_)));
    }

    #[test]
    fn invalid_parameter_ctor() {
        let err = Error::invalid_parameter("search_list", "must be >= k");
        assert_eq!(
            err.to_string(),
            "invalid parameter `search_list`: must be >= k"
        );
    }
}
