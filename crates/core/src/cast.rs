//! Checked numeric conversions for sim-time and byte-offset arithmetic.
//!
//! A bare `as` cast between numeric types never fails — it truncates,
//! wraps, saturates, or rounds, and a corrupted byte offset or nanosecond
//! clock surfaces as a plausible-looking wrong figure far from the bug that
//! produced it. The helpers here carry the intent in their names, assert
//! the lossless-ness contract in debug builds, and compile to exactly the
//! same `as` cast in release builds so golden traces and canonical metric
//! encodings stay bit-identical to the open-coded casts they replace.
//!
//! The static analyzer's `cast-truncation` rule ratchets bare casts across
//! the workspace; call sites that switch to these helpers shrink the
//! baseline for good.

/// Largest integer magnitude `f64` represents exactly (2^53).
const F64_EXACT: u64 = 1 << 53;

/// Widens a `usize` to `u64`.
///
/// Lossless on every target this workspace supports (`usize` is at most 64
/// bits); named so byte counters read as intent, not as a silent cast.
#[inline]
#[must_use]
pub fn u64_from_usize(x: usize) -> u64 {
    // sann-lint: allow(cast-truncation) -- usize is at most 64 bits on all supported targets
    x as u64
}

/// Narrows a `usize` to `u32` for values bounded by construction (sector
/// sizes, request lengths).
///
/// Debug builds assert the value fits; release builds keep the exact `as`
/// truncation semantics of the open-coded cast this replaces.
#[inline]
#[must_use]
pub fn u32_from_usize(x: usize) -> u32 {
    debug_assert!(
        u32::try_from(x).is_ok(),
        "value {x} does not fit in u32; the caller's bound is wrong"
    );
    // sann-lint: allow(cast-truncation) -- bound asserted above; `as` keeps release semantics
    x as u32
}

/// Narrows a `u64` to `u32` for values bounded by construction (sector
/// sizes, request lengths capped at `MAX_REQUEST_BYTES`).
///
/// Debug builds assert the value fits; release builds keep the exact `as`
/// truncation semantics of the open-coded cast this replaces.
#[inline]
#[must_use]
pub fn u32_from_u64(x: u64) -> u32 {
    debug_assert!(
        u32::try_from(x).is_ok(),
        "value {x} does not fit in u32; the caller's bound is wrong"
    );
    // sann-lint: allow(cast-truncation) -- bound asserted above; `as` keeps release semantics
    x as u32
}

/// Converts a `u64` counter to `f64` for rate/average arithmetic.
///
/// Debug builds assert the value is below 2^53, where every integer is
/// representable exactly — beyond that, averages silently lose ulps.
#[inline]
#[must_use]
pub fn f64_from_u64(x: u64) -> f64 {
    debug_assert!(
        x <= F64_EXACT,
        "{x} exceeds 2^53 and is not exactly representable as f64"
    );
    // sann-lint: allow(cast-truncation) -- exactness asserted above
    x as f64
}

/// Converts a `usize` count to `f64` for rate/average arithmetic.
///
/// Same exactness contract as [`f64_from_u64`].
#[inline]
#[must_use]
pub fn f64_from_usize(x: usize) -> f64 {
    f64_from_u64(u64_from_usize(x))
}

/// Converts a finite, non-negative `f64` to `u64` with `as` semantics
/// (truncation toward zero).
///
/// Debug builds reject NaN and negatives, which `as` would silently map to
/// 0 — corrupting an event clock far from the bug that produced them.
#[inline]
#[must_use]
pub fn u64_from_f64(x: f64) -> u64 {
    debug_assert!(
        x.is_finite() && x >= 0.0,
        "expected a finite non-negative value, got {x}"
    );
    // sann-lint: allow(cast-truncation) -- domain asserted above; `as` keeps release semantics
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_is_exact() {
        assert_eq!(u64_from_usize(0), 0);
        assert_eq!(u64_from_usize(usize::MAX), usize::MAX as u64);
    }

    #[test]
    fn narrowing_in_bounds() {
        assert_eq!(u32_from_usize(4096), 4096);
        assert_eq!(u32_from_usize(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "does not fit in u32")]
    #[cfg(debug_assertions)]
    fn narrowing_out_of_bounds_asserts() {
        let _ = u32_from_usize(u32::MAX as usize + 1);
    }

    #[test]
    fn float_conversions_match_open_coded_casts() {
        for x in [0u64, 1, 4096, (1 << 53) - 1, 1 << 53] {
            assert_eq!(f64_from_u64(x), x as f64);
        }
        for x in [0.0f64, 0.4, 1.0, 1e12, 4095.9999] {
            assert_eq!(u64_from_f64(x), x as u64, "x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    #[cfg(debug_assertions)]
    fn nan_rejected_in_debug() {
        let _ = u64_from_f64(f64::NAN);
    }
}
