//! FNV-1a content hashing for artifact-cache keys.
//!
//! The artifact cache (`sann-bench`) names every on-disk entry after a hash
//! of the inputs that produced it — dataset spec, build parameters, format
//! version — so a changed input can never be served a stale artifact. FNV-1a
//! is used because it is tiny, dependency-free, and fully deterministic
//! across platforms; it is **not** cryptographic, and the cache treats a key
//! collision like any other corruption: the self-describing entry fails
//! validation and the artifact is rebuilt.

/// FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte string with 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET_BASIS;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn single_byte_change_changes_hash() {
        assert_ne!(fnv1a64(b"spec v1"), fnv1a64(b"spec v2"));
    }

    #[test]
    fn deterministic_across_calls() {
        let payload: Vec<u8> = (0..=255).collect();
        assert_eq!(fnv1a64(&payload), fnv1a64(&payload));
    }
}
