//! Core primitives for storage-based approximate nearest neighbor search.
//!
//! This crate provides the foundation every other `sann` crate builds on:
//!
//! * [`Dataset`] — a dense, row-major matrix of `f32` vectors,
//! * [`Metric`] and the distance kernels in [`distance`],
//! * [`Neighbor`] and the [`TopK`] collector used by all index searches,
//! * [`recall::recall_at_k`] — the accuracy metric reported by the paper,
//! * [`stats`] — percentile/mean helpers shared by the benchmark harness,
//! * [`rng::SplitMix64`] — a tiny deterministic RNG so experiments are
//!   reproducible across crates without threading generator generics
//!   everywhere,
//! * [`sync`] — poison-free lock wrappers over [`std::sync`],
//! * [`buf`] — little-endian byte encoding/decoding for snapshots and
//!   canonical metric fingerprints,
//! * [`check`] — a seeded property-test harness used by the workspace's
//!   invariant tests.
//!
//! # Examples
//!
//! ```
//! use sann_core::{Dataset, Metric, TopK};
//!
//! let data = Dataset::from_rows(vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
//! let query = [0.1f32, 0.0];
//! let mut topk = TopK::new(2);
//! for (id, row) in data.iter().enumerate() {
//!     topk.push(id as u32, Metric::L2.distance(&query, row));
//! }
//! let hits = topk.into_sorted_vec();
//! assert_eq!(hits[0].id, 0);
//! assert_eq!(hits[1].id, 1);
//! ```

pub mod buf;
pub mod cast;
pub mod check;
pub mod distance;
pub mod error;
pub mod hash;
pub mod recall;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod topk;
pub mod vector;

pub use distance::Metric;
pub use error::{Error, Result};
pub use topk::{Neighbor, TopK};
pub use vector::Dataset;
