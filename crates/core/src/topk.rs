//! Top-k collection for nearest neighbor search.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One search hit: a vector id and its distance to the query.
///
/// Ordering is by distance (ties broken by id) so that `Neighbor`s sort from
/// closest to farthest. Distances are compared with [`f32::total_cmp`], which
/// makes the ordering total even in the presence of NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row id of the matched vector.
    pub id: u32,
    /// Distance to the query under the search metric (lower is closer).
    pub dist: f32,
}

impl Neighbor {
    /// Creates a neighbor.
    pub fn new(id: u32, dist: f32) -> Self {
        Neighbor { id, dist }
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// A bounded max-heap that retains the `k` smallest-distance entries pushed
/// into it.
///
/// This is the collector every index search uses to accumulate candidates.
///
/// # Examples
///
/// ```
/// use sann_core::TopK;
///
/// let mut topk = TopK::new(2);
/// topk.push(0, 5.0);
/// topk.push(1, 1.0);
/// topk.push(2, 3.0);
/// let hits = topk.into_sorted_vec();
/// assert_eq!(hits.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    heap: BinaryHeap<Neighbor>,
    k: usize,
}

impl TopK {
    /// Creates a collector that retains the `k` closest entries.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopK {
            heap: BinaryHeap::with_capacity(k + 1),
            k,
        }
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently held (`<= k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries have been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the collector holds `k` entries.
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Offers an entry; it is retained only if it is among the `k` closest
    /// seen so far. Returns `true` when the entry was retained.
    #[inline]
    pub fn push(&mut self, id: u32, dist: f32) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(Neighbor::new(id, dist));
            true
        } else if dist
            .total_cmp(&self.heap.peek().expect("non-empty").dist)
            .is_lt()
        {
            self.heap.pop();
            self.heap.push(Neighbor::new(id, dist));
            true
        } else {
            false
        }
    }

    /// The current k-th (worst retained) distance, or `f32::INFINITY` while
    /// fewer than `k` entries are held.
    ///
    /// Search loops use this as the pruning bound.
    #[inline]
    pub fn bound(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().expect("non-empty").dist
        }
    }

    /// Consumes the collector and returns hits sorted closest-first.
    pub fn into_sorted_vec(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (id, d) in [(0, 9.0), (1, 2.0), (2, 7.0), (3, 1.0), (4, 8.0)] {
            t.push(id, d);
        }
        let out = t.into_sorted_vec();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 1, 2]);
    }

    #[test]
    fn bound_is_infinite_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.bound(), f32::INFINITY);
        t.push(0, 1.0);
        assert_eq!(t.bound(), f32::INFINITY);
        t.push(1, 2.0);
        assert_eq!(t.bound(), 2.0);
        t.push(2, 0.5);
        assert_eq!(t.bound(), 1.0);
    }

    #[test]
    fn push_reports_retention() {
        let mut t = TopK::new(1);
        assert!(t.push(0, 5.0));
        assert!(!t.push(1, 6.0));
        assert!(t.push(2, 4.0));
    }

    #[test]
    fn neighbor_ordering_breaks_ties_by_id() {
        let a = Neighbor::new(1, 3.0);
        let b = Neighbor::new(2, 3.0);
        assert!(a < b);
    }

    #[test]
    fn nan_distances_do_not_panic() {
        let mut t = TopK::new(2);
        t.push(0, f32::NAN);
        t.push(1, 1.0);
        t.push(2, 2.0);
        let out = t.into_sorted_vec();
        // NaN compares greater than all numbers under total_cmp, so it is evicted.
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }

    #[test]
    fn len_and_full() {
        let mut t = TopK::new(2);
        assert!(t.is_empty());
        assert!(!t.is_full());
        t.push(0, 1.0);
        t.push(1, 2.0);
        assert_eq!(t.len(), 2);
        assert!(t.is_full());
        assert_eq!(t.k(), 2);
    }
}
