//! A tiny seeded property-test harness.
//!
//! The workspace's invariant tests are property-shaped ("for all request
//! streams, the device never beats the bus"), but they must also be
//! *deterministic* — a flaky CI failure in a determinism-audit suite would be
//! self-defeating. So instead of a shrinking fuzzer, [`run`] derives every
//! case from a seed fixed by the property name: failures reproduce exactly,
//! on every machine, every time. The failing case index and seed are printed
//! so a single case can be replayed in isolation with [`Gen::from_seed`].

use crate::rng::SplitMix64;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Number of cases [`run`] executes per property.
pub const DEFAULT_CASES: u64 = 128;

/// A source of random test values for one property case.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// Creates a generator from an explicit seed (for replaying one case).
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.next_bounded(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.rng.next_f32() * (hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.next_f64() < p
    }

    /// A vector of `len` values drawn from `f`, with `len` in `[lo, hi)`.
    pub fn vec_with<T>(
        &mut self,
        lo: usize,
        hi: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(lo, hi);
        (0..len).map(|_| f(self)).collect()
    }

    /// A vector of uniform `f32` values.
    pub fn vec_f32(&mut self, lo_len: usize, hi_len: usize, lo: f32, hi: f32) -> Vec<f32> {
        self.vec_with(lo_len, hi_len, |g| g.f32_in(lo, hi))
    }
}

/// Runs `cases` cases of the property `body`, panicking with the case index
/// and seed on the first failure. The case stream is fixed by `name`, so the
/// same property always sees the same inputs.
///
/// # Panics
///
/// Re-raises the first failing case's panic after printing its seed.
pub fn run(name: &str, cases: u64, mut body: impl FnMut(&mut Gen)) {
    let base = fnv1a(name.as_bytes());
    let root = SplitMix64::new(base);
    for case in 0..cases {
        let seed = root.split(case).next_u64();
        let mut gen = Gen::from_seed(seed);
        let result = catch_unwind(AssertUnwindSafe(|| {
            body(&mut gen);
        }));
        if let Err(panic) = result {
            eprintln!("property '{name}' failed at case {case}/{cases} (replay seed {seed:#x})");
            std::panic::resume_unwind(panic);
        }
    }
}

/// [`run`] with [`DEFAULT_CASES`] cases.
pub fn check(name: &str, body: impl FnMut(&mut Gen)) {
    run(name, DEFAULT_CASES, body);
}

/// FNV-1a over `bytes` — stable across platforms and compiler versions, so
/// property case streams never change out from under a failure report.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_streams_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        run("stream", 10, |g| first.push(g.u64_in(0, 1_000_000)));
        let mut second: Vec<u64> = Vec::new();
        run("stream", 10, |g| second.push(g.u64_in(0, 1_000_000)));
        assert_eq!(first, second);
    }

    #[test]
    fn different_names_see_different_streams() {
        let mut a: Vec<u64> = Vec::new();
        run("alpha", 10, |g| a.push(g.u64_in(0, 1_000_000)));
        let mut b: Vec<u64> = Vec::new();
        run("beta", 10, |g| b.push(g.u64_in(0, 1_000_000)));
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_are_respected() {
        check("ranges", |g| {
            let x = g.u64_in(10, 20);
            assert!((10..20).contains(&x));
            let f = g.f32_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let v = g.vec_f32(1, 5, 0.0, 1.0);
            assert!(!v.is_empty() && v.len() < 5);
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run("failing", 3, |_| panic!("boom"));
    }
}
