//! Poison-free lock wrappers over [`std::sync`].
//!
//! The workspace's parallel index builds only ever hold locks across pure
//! computation; a panic inside a critical section already aborts the build
//! via the scoped-thread join. Lock poisoning therefore carries no extra
//! information here, and propagating `PoisonError` through every build loop
//! would bury the algorithms in plumbing. These wrappers panic on poison
//! (mirroring the `parking_lot` API shape) so call sites stay `lock()`,
//! `read()`, `write()`.

use std::sync::{self, LockResult};

/// A mutual-exclusion lock that panics if a previous holder panicked.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A readers-writer lock that panics if a previous holder panicked.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

fn unpoison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(_) => panic!("lock poisoned: a previous holder panicked"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_scoped_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 400);
    }
}
