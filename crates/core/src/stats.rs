//! Summary statistics used by the benchmark harness (mean, standard
//! deviation, and the P99 tail latency the paper reports).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `0.0` for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `p`-th percentile (0.0–100.0) by linear interpolation between the
/// two closest ranks on a sorted copy, clamped at p0 (minimum) and p100
/// (maximum).
///
/// Returns `0.0` for an empty slice and the sample itself for a single
/// sample — never panics or produces NaN for well-formed inputs.
/// `percentile(xs, 99.0)` is the paper's P99 tail latency;
/// `percentile(xs, 50.0)` of an even-length slice is the midpoint of the
/// two middle samples.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let last = sorted.len() - 1;
    // Fractional rank over [0, last]; p0 clamps to the minimum and p100
    // to the maximum by construction.
    let rank = (p / 100.0) * last as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A streaming accumulator when keeping every sample is unnecessary.
///
/// # Examples
///
/// ```
/// use sann_core::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.add(x);
/// }
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    // Welford running mean and sum of squared deviations: a naive
    // sum-of-squares cancels catastrophically on near-constant samples
    // (e.g. an all-equal latency series reported a non-zero stddev).
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            sum: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples added.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation; `0.0` for fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        (self.m2 / self.count as f64).max(0.0).sqrt()
    }

    /// Smallest sample; `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // rank = p/100 * 99 over samples 1..=100, so value = 1 + rank.
        assert!((percentile(&xs, 99.0) - 99.01).abs() < 1e-9);
        assert!((percentile(&xs, 50.0) - 50.5).abs() < 1e-9);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
    }

    #[test]
    fn percentile_small_inputs_never_panic_or_nan() {
        // n = 0.
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(percentile(&[], p), 0.0);
        }
        // n = 1: every percentile is the sample itself.
        for p in [0.0, 37.5, 99.0, 100.0] {
            let v = percentile(&[42.0], p);
            assert_eq!(v, 42.0);
            assert!(!v.is_nan());
        }
        // n = 2: clamped at the ends, interpolated between.
        assert_eq!(percentile(&[10.0, 20.0], 0.0), 10.0);
        assert_eq!(percentile(&[10.0, 20.0], 100.0), 20.0);
        assert!((percentile(&[10.0, 20.0], 50.0) - 15.0).abs() < 1e-12);
        assert!((percentile(&[10.0, 20.0], 25.0) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_even_length_median_is_midpoint() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        let xs6 = [6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((percentile(&xs6, 50.0) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_p0_p100_clamp_to_extremes() {
        let xs = [9.0, -3.0, 7.0];
        assert_eq!(percentile(&xs, 0.0), -3.0);
        assert_eq!(percentile(&xs, 100.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn accumulator_tracks_extremes() {
        let mut acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), 0.0);
        for x in [3.0, 1.0, 4.0, 1.0, 5.0] {
            acc.add(x);
        }
        assert_eq!(acc.count(), 5);
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 5.0);
        assert!((acc.mean() - 2.8).abs() < 1e-12);
        assert!(acc.stddev() > 0.0);
    }

    #[test]
    fn accumulator_matches_batch_stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.stddev() - stddev(&xs)).abs() < 1e-9);
    }

    #[test]
    fn accumulator_all_equal_samples_have_exactly_zero_stddev() {
        // The former sum-of-squares formulation reported a spurious
        // non-zero spread here once the values were large enough for
        // `sum_sq/n - mean²` to cancel; Welford is exact.
        for v in [0.0, 1.0, 1e9 + 0.1, -7.25e12] {
            let mut acc = Accumulator::new();
            for _ in 0..1_000 {
                acc.add(v);
            }
            assert_eq!(acc.stddev(), 0.0, "all-equal samples at {v}");
            assert_eq!(acc.min(), v);
            assert_eq!(acc.max(), v);
            assert!((acc.mean() - v).abs() <= v.abs() * 1e-15);
        }
    }

    #[test]
    fn accumulator_single_sample_is_degenerate_but_sane() {
        let mut acc = Accumulator::new();
        acc.add(123.456);
        assert_eq!(acc.count(), 1);
        assert_eq!(acc.mean(), 123.456);
        assert_eq!(acc.stddev(), 0.0);
        assert_eq!(acc.min(), 123.456);
        assert_eq!(acc.max(), 123.456);
        assert_eq!(acc.sum(), 123.456);
    }

    #[test]
    fn accumulator_survives_large_offset_small_variance() {
        // Samples with a huge common offset and a tiny spread: the naive
        // sum_sq accumulator loses all significant digits here, while the
        // batch two-pass formula (and Welford) keep them.
        let offset = 1e9;
        let xs: Vec<f64> = (0..100).map(|i| offset + (i % 4) as f64).collect();
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        let expected = stddev(&xs);
        assert!(expected > 1.0, "sanity: the spread is ~1.1, not zero");
        assert!(
            (acc.stddev() - expected).abs() < 1e-6,
            "streaming stddev {} diverged from batch {}",
            acc.stddev(),
            expected
        );
    }
}
