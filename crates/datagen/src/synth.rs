//! Gaussian-mixture embedding generator.
//!
//! Real text-embedding corpora are far from uniform: vectors live near the
//! unit sphere and concentrate in topical clusters of very different sizes.
//! The generator models that as a mixture of anisotropic Gaussians centred at
//! random directions, with Zipf-distributed mixture weights, followed by
//! normalization onto the unit sphere.

use sann_core::distance::normalize;
use sann_core::rng::SplitMix64;
use sann_core::Dataset;

/// A generative model of embedding vectors.
///
/// The model is fully determined by its parameters plus a seed, so datasets
/// are reproducible. Base vectors and query vectors are drawn from the *same*
/// mixture (queries are in-distribution, as in VectorDBBench).
///
/// Within-cluster noise is **anisotropic**: most of its variance lies in a
/// low-rank subspace of `intrinsic_rank` decaying directions per cluster,
/// with a small isotropic floor. Real embedding corpora have low intrinsic
/// dimension; with purely isotropic noise in hundreds of dimensions, all
/// within-cluster distances concentrate to a single value, nearest neighbors
/// degenerate, and proximity-graph pruning (HNSW's heuristic, Vamana's
/// α-prune) stops working — unlike on any real corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingModel {
    /// Vector dimensionality.
    pub dim: usize,
    /// Number of mixture components ("topics").
    pub clusters: usize,
    /// Expected norm of the within-cluster noise vector. Smaller values
    /// produce tighter, easier-to-index clusters.
    pub cluster_std: f64,
    /// Zipf skew of cluster sizes; `0.0` gives equal-sized clusters.
    pub zipf_s: f64,
    /// Rank of the dominant noise subspace per cluster (clamped to `dim`).
    pub intrinsic_rank: usize,
    /// Fraction of noise variance in the low-rank subspace (0..1); the rest
    /// is isotropic.
    pub anisotropy: f64,
    /// RNG seed.
    pub seed: u64,
}

impl EmbeddingModel {
    /// A model with defaults resembling sentence-embedding corpora.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `clusters` is zero.
    pub fn new(dim: usize, clusters: usize, seed: u64) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(clusters > 0, "clusters must be positive");
        EmbeddingModel {
            dim,
            clusters,
            cluster_std: 0.35,
            zipf_s: 0.9,
            intrinsic_rank: 16,
            anisotropy: 0.85,
            seed,
        }
    }

    /// Generates `n` base vectors.
    pub fn generate(&self, n: usize) -> Dataset {
        self.generate_stream(n, 0)
    }

    /// Generates `n` query vectors, decorrelated from the base set.
    pub fn generate_queries(&self, n: usize) -> Dataset {
        self.generate_stream(n, 1)
    }

    /// Generates from an explicitly tagged sub-stream; `tag` 0 is the base
    /// set, 1 the query set, and further tags are free for callers (e.g.
    /// insert workloads).
    pub fn generate_stream(&self, n: usize, tag: u64) -> Dataset {
        let centers = self.centers();
        let weights = self.weights();
        let basis = self.noise_basis();
        let rank = self.intrinsic_rank.clamp(1, self.dim);
        let mut rng = SplitMix64::new(self.seed).split(0x5EED_0000 + tag);

        // Split the noise energy: `anisotropy` into the low-rank subspace
        // (direction j carries weight ∝ 1/sqrt(j+1)), the rest isotropic.
        let aniso = self.anisotropy.clamp(0.0, 1.0);
        let decay: Vec<f64> = (0..rank).map(|j| 1.0 / ((j + 1) as f64).sqrt()).collect();
        let decay_norm: f64 = decay.iter().map(|d| d * d).sum::<f64>().sqrt();
        let lowrank_scales: Vec<f64> = decay
            .iter()
            .map(|d| self.cluster_std * aniso.sqrt() * d / decay_norm)
            .collect();
        let iso_sigma = self.cluster_std * (1.0 - aniso).sqrt() / (self.dim as f64).sqrt();

        let mut data = Vec::with_capacity(n * self.dim);
        let mut buf = vec![0.0f32; self.dim];
        for _ in 0..n {
            let c = pick_weighted(&mut rng, &weights);
            let center = &centers[c * self.dim..(c + 1) * self.dim];
            for (out, &x) in buf.iter_mut().zip(center) {
                *out = x + (iso_sigma * rng.next_gaussian()) as f32;
            }
            let cluster_basis = &basis[c * rank * self.dim..(c + 1) * rank * self.dim];
            for (j, &scale) in lowrank_scales.iter().enumerate() {
                let z = (scale * rng.next_gaussian()) as f32;
                let dir = &cluster_basis[j * self.dim..(j + 1) * self.dim];
                for (out, &d) in buf.iter_mut().zip(dir) {
                    *out += z * d;
                }
            }
            normalize(&mut buf);
            data.extend_from_slice(&buf);
        }
        Dataset::from_flat(data, self.dim).expect("generated data is rectangular")
    }

    /// Per-cluster noise directions: `clusters × rank` unit vectors,
    /// flattened. Deterministic in the seed.
    fn noise_basis(&self) -> Vec<f32> {
        let rank = self.intrinsic_rank.clamp(1, self.dim);
        let mut rng = SplitMix64::new(self.seed).split(0xBA_515);
        let mut basis = Vec::with_capacity(self.clusters * rank * self.dim);
        for _ in 0..self.clusters * rank {
            let start = basis.len();
            for _ in 0..self.dim {
                basis.push(rng.next_gaussian() as f32);
            }
            normalize(&mut basis[start..]);
        }
        basis
    }

    /// The mixture component centres as a flat `clusters × dim` buffer
    /// (unit-normalized). Exposed for tests and for generators that need to
    /// place out-of-distribution queries.
    pub fn centers(&self) -> Vec<f32> {
        let mut rng = SplitMix64::new(self.seed).split(0xCE_17E2);
        let mut centers = Vec::with_capacity(self.clusters * self.dim);
        for _ in 0..self.clusters {
            let start = centers.len();
            for _ in 0..self.dim {
                centers.push(rng.next_gaussian() as f32);
            }
            normalize(&mut centers[start..]);
        }
        centers
    }

    /// Zipf mixture weights (normalized to sum to 1).
    pub fn weights(&self) -> Vec<f64> {
        let raw: Vec<f64> = (1..=self.clusters)
            .map(|rank| 1.0 / (rank as f64).powf(self.zipf_s))
            .collect();
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / total).collect()
    }
}

fn pick_weighted(rng: &mut SplitMix64, weights: &[f64]) -> usize {
    let mut x = rng.next_f64();
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::distance::norm;

    #[test]
    fn vectors_are_unit_norm() {
        let model = EmbeddingModel::new(64, 8, 42);
        let data = model.generate(100);
        for row in data.iter() {
            assert!((norm(row) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let model = EmbeddingModel::new(32, 4, 7);
        assert_eq!(model.generate(50), model.generate(50));
    }

    #[test]
    fn base_and_queries_differ() {
        let model = EmbeddingModel::new(32, 4, 7);
        assert_ne!(model.generate(10), model.generate_queries(10));
    }

    #[test]
    fn different_seeds_differ() {
        let a = EmbeddingModel::new(32, 4, 1).generate(10);
        let b = EmbeddingModel::new(32, 4, 2).generate(10);
        assert_ne!(a, b);
    }

    #[test]
    fn weights_sum_to_one_and_are_skewed() {
        let model = EmbeddingModel::new(8, 16, 1);
        let w = model.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[15], "Zipf weights must be decreasing");
    }

    #[test]
    fn data_is_clustered_not_uniform() {
        // Mean nearest-center distance must be far below the distance between
        // two random unit vectors (~sqrt(2) in high dim).
        let model = EmbeddingModel::new(128, 8, 3);
        let data = model.generate(200);
        let centers = model.centers();
        let mut total = 0.0f64;
        for row in data.iter() {
            let best = (0..8)
                .map(|c| sann_core::distance::l2_squared(row, &centers[c * 128..(c + 1) * 128]))
                .fold(f32::INFINITY, f32::min);
            total += best.sqrt() as f64;
        }
        let mean_dist = total / 200.0;
        assert!(
            mean_dist < 1.0,
            "mean nearest-center distance {mean_dist} too large"
        );
    }

    #[test]
    fn stream_tags_decorrelate() {
        let model = EmbeddingModel::new(16, 2, 5);
        assert_ne!(model.generate_stream(5, 2), model.generate_stream(5, 3));
    }
}
