//! Synthetic embedding datasets, query workloads, and ground truth.
//!
//! The paper benchmarks four embedding datasets shipped with VectorDBBench:
//! Cohere 1M / Cohere 10M (768-dimensional) and OpenAI 500K / OpenAI 5M
//! (1536-dimensional). Those corpora are proprietary, so this crate generates
//! *synthetic stand-ins* with the statistical properties the experiments
//! depend on:
//!
//! * the exact dimensionalities (768 and 1536 — "the two most widely used
//!   embedding dimensions in RAG"),
//! * the 10× size ratio between the small and large variant of each family,
//! * realistic cluster structure (embeddings of a document corpus concentrate
//!   around topical clusters on the unit sphere) with anisotropic spread and
//!   skewed cluster sizes.
//!
//! Everything is seeded and deterministic: the same [`DatasetSpec`] always
//! produces the same vectors, queries, and ground truth.
//!
//! # Examples
//!
//! ```
//! use sann_datagen::{catalog, GroundTruth};
//!
//! let spec = catalog::cohere_s().scaled(0.001); // tiny run for the doctest
//! let bundle = spec.generate();
//! assert_eq!(bundle.base.dim(), 768);
//! let queries = bundle.queries.truncated(5);
//! let gt = GroundTruth::bruteforce(&bundle.base, &queries, spec.metric, 10);
//! assert_eq!(gt.k(), 10);
//! ```

pub mod catalog;
pub mod groundtruth;
pub mod synth;
pub mod workload;

pub use catalog::{DatasetBundle, DatasetSpec};
pub use groundtruth::GroundTruth;
pub use synth::EmbeddingModel;
pub use workload::WorkloadSpec;
