//! Exact k-nearest-neighbor ground truth via parallel brute force.

use sann_core::{Dataset, Metric, TopK};

/// Exact nearest neighbors for a query set, used to score recall@k.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    k: usize,
    ids: Vec<Vec<u32>>,
}

impl GroundTruth {
    /// Computes exact top-`k` neighbors of every query by brute force,
    /// parallelized across all available cores.
    ///
    /// # Panics
    ///
    /// Panics if `base` and `queries` disagree on dimensionality or `k == 0`.
    pub fn bruteforce(base: &Dataset, queries: &Dataset, metric: Metric, k: usize) -> GroundTruth {
        assert_eq!(base.dim(), queries.dim(), "dimension mismatch");
        assert!(k > 0, "k must be positive");
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let n_queries = queries.len();
        let mut ids = vec![Vec::new(); n_queries];

        // Chunk query ids across worker threads; each worker scans the whole
        // base set for its chunk of queries.
        let chunk = n_queries.div_ceil(threads.max(1));
        std::thread::scope(|scope| {
            for (t, out_chunk) in ids.chunks_mut(chunk.max(1)).enumerate() {
                let base = &base;
                let queries = &queries;
                scope.spawn(move || {
                    for (i, out) in out_chunk.iter_mut().enumerate() {
                        let q = queries.row(t * chunk + i);
                        let mut topk = TopK::new(k);
                        for (id, row) in base.iter().enumerate() {
                            topk.push(id as u32, metric.distance(q, row));
                        }
                        *out = topk.into_sorted_vec().into_iter().map(|n| n.id).collect();
                    }
                });
            }
        });

        GroundTruth { k, ids }
    }

    /// The `k` this ground truth was computed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the ground truth covers no queries.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True neighbor ids of query `q`, closest first.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn neighbors(&self, q: usize) -> &[u32] {
        &self.ids[q]
    }

    /// Mean recall@k of a batch of result lists (one per query, in query
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `results.len() != self.len()`.
    pub fn mean_recall(&self, results: &[Vec<u32>]) -> f64 {
        sann_core::recall::mean_recall_at_k(&self.ids, results, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::rng::SplitMix64;

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.next_f32()).collect();
        Dataset::from_flat(data, dim).unwrap()
    }

    fn naive_truth(base: &Dataset, q: &[f32], k: usize) -> Vec<u32> {
        let mut dists: Vec<(f32, u32)> = base
            .iter()
            .enumerate()
            .map(|(i, row)| (Metric::L2.distance(q, row), i as u32))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        dists.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn matches_naive_single_threaded_scan() {
        let base = random_dataset(300, 16, 1);
        let queries = random_dataset(17, 16, 2);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 5);
        assert_eq!(gt.len(), 17);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                gt.neighbors(i),
                naive_truth(&base, q, 5).as_slice(),
                "query {i}"
            );
        }
    }

    #[test]
    fn perfect_results_have_recall_one() {
        let base = random_dataset(100, 8, 3);
        let queries = random_dataset(5, 8, 4);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 3);
        let results: Vec<Vec<u32>> = (0..5).map(|i| gt.neighbors(i).to_vec()).collect();
        assert_eq!(gt.mean_recall(&results), 1.0);
    }

    #[test]
    fn self_query_returns_self_first() {
        let base = random_dataset(50, 8, 5);
        // Use base vectors themselves as queries.
        let gt = GroundTruth::bruteforce(&base, &base, Metric::L2, 1);
        for i in 0..50 {
            assert_eq!(gt.neighbors(i)[0], i as u32);
        }
    }

    #[test]
    fn handles_k_larger_than_base() {
        let base = random_dataset(3, 4, 6);
        let queries = random_dataset(2, 4, 7);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);
        assert_eq!(gt.neighbors(0).len(), 3);
    }
}
