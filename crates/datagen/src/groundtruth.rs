//! Exact k-nearest-neighbor ground truth via parallel brute force.

use sann_core::buf::{ByteReader, ByteWriter};
use sann_core::{Dataset, Error, Metric, Result, TopK};

/// Exact nearest neighbors for a query set, used to score recall@k.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    k: usize,
    ids: Vec<Vec<u32>>,
}

impl GroundTruth {
    /// Computes exact top-`k` neighbors of every query by brute force,
    /// parallelized across all available cores.
    ///
    /// # Panics
    ///
    /// Panics if `base` and `queries` disagree on dimensionality or `k == 0`.
    pub fn bruteforce(base: &Dataset, queries: &Dataset, metric: Metric, k: usize) -> GroundTruth {
        assert_eq!(base.dim(), queries.dim(), "dimension mismatch");
        assert!(k > 0, "k must be positive");
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let n_queries = queries.len();
        let mut ids = vec![Vec::new(); n_queries];

        // Chunk query ids across worker threads; each worker scans the whole
        // base set for its chunk of queries.
        let chunk = n_queries.div_ceil(threads.max(1));
        std::thread::scope(|scope| {
            for (t, out_chunk) in ids.chunks_mut(chunk.max(1)).enumerate() {
                let base = &base;
                let queries = &queries;
                scope.spawn(move || {
                    for (i, out) in out_chunk.iter_mut().enumerate() {
                        let q = queries.row(t * chunk + i);
                        let mut topk = TopK::new(k);
                        for (id, row) in base.iter().enumerate() {
                            topk.push(id as u32, metric.distance(q, row));
                        }
                        *out = topk.into_sorted_vec().into_iter().map(|n| n.id).collect();
                    }
                });
            }
        });

        GroundTruth { k, ids }
    }

    /// The `k` this ground truth was computed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the ground truth covers no queries.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True neighbor ids of query `q`, closest first.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn neighbors(&self, q: usize) -> &[u32] {
        &self.ids[q]
    }

    /// Mean recall@k of a batch of result lists (one per query, in query
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `results.len() != self.len()`.
    pub fn mean_recall(&self, results: &[Vec<u32>]) -> f64 {
        sann_core::recall::mean_recall_at_k(&self.ids, results, self.k)
    }

    /// Appends the canonical little-endian encoding (`k`, query count, then
    /// each query's neighbor list with a length prefix) to `buf`.
    pub fn encode_into(&self, buf: &mut ByteWriter) {
        buf.put_u32_le(self.k as u32);
        buf.put_u64_le(self.ids.len() as u64);
        for list in &self.ids {
            buf.put_u32_le(list.len() as u32);
            for &id in list {
                buf.put_u32_le(id);
            }
        }
    }

    /// Reads a ground truth previously written by
    /// [`GroundTruth::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation, `k == 0`, or a neighbor
    /// list longer than `k`.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<GroundTruth> {
        let k = r.get_u32_le()? as usize;
        if k == 0 {
            return Err(Error::Corrupt("groundtruth: zero k".into()));
        }
        let n = r.get_u64_le()? as usize;
        if r.remaining() < n.saturating_mul(4) {
            return Err(Error::Corrupt("groundtruth: truncated lists".into()));
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.get_u32_le()? as usize;
            if len > k {
                return Err(Error::Corrupt("groundtruth: list longer than k".into()));
            }
            if r.remaining() < len * 4 {
                return Err(Error::Corrupt("groundtruth: truncated neighbors".into()));
            }
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                list.push(r.get_u32_le()?);
            }
            ids.push(list);
        }
        Ok(GroundTruth { k, ids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::rng::SplitMix64;

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.next_f32()).collect();
        Dataset::from_flat(data, dim).unwrap()
    }

    fn naive_truth(base: &Dataset, q: &[f32], k: usize) -> Vec<u32> {
        let mut dists: Vec<(f32, u32)> = base
            .iter()
            .enumerate()
            .map(|(i, row)| (Metric::L2.distance(q, row), i as u32))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        dists.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn matches_naive_single_threaded_scan() {
        let base = random_dataset(300, 16, 1);
        let queries = random_dataset(17, 16, 2);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 5);
        assert_eq!(gt.len(), 17);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                gt.neighbors(i),
                naive_truth(&base, q, 5).as_slice(),
                "query {i}"
            );
        }
    }

    #[test]
    fn perfect_results_have_recall_one() {
        let base = random_dataset(100, 8, 3);
        let queries = random_dataset(5, 8, 4);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 3);
        let results: Vec<Vec<u32>> = (0..5).map(|i| gt.neighbors(i).to_vec()).collect();
        assert_eq!(gt.mean_recall(&results), 1.0);
    }

    #[test]
    fn self_query_returns_self_first() {
        let base = random_dataset(50, 8, 5);
        // Use base vectors themselves as queries.
        let gt = GroundTruth::bruteforce(&base, &base, Metric::L2, 1);
        for i in 0..50 {
            assert_eq!(gt.neighbors(i)[0], i as u32);
        }
    }

    #[test]
    fn handles_k_larger_than_base() {
        let base = random_dataset(3, 4, 6);
        let queries = random_dataset(2, 4, 7);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);
        assert_eq!(gt.neighbors(0).len(), 3);
    }

    #[test]
    fn codec_round_trips_exactly() {
        let base = random_dataset(40, 8, 8);
        let queries = random_dataset(9, 8, 9);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 4);
        let mut w = ByteWriter::new();
        gt.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        let back = GroundTruth::decode_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back, gt);
    }

    #[test]
    fn codec_round_trips_short_lists() {
        // k larger than the base set leaves lists shorter than k.
        let base = random_dataset(3, 4, 10);
        let queries = random_dataset(2, 4, 11);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);
        let mut w = ByteWriter::new();
        gt.encode_into(&mut w);
        let bytes = w.into_bytes();
        let back = GroundTruth::decode_from(&mut ByteReader::new(&bytes, "test")).unwrap();
        assert_eq!(back, gt);
    }

    #[test]
    fn codec_rejects_truncation() {
        let base = random_dataset(20, 4, 12);
        let queries = random_dataset(5, 4, 13);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 3);
        let mut w = ByteWriter::new();
        gt.encode_into(&mut w);
        let bytes = w.into_bytes();
        for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut], "test");
            assert!(
                matches!(GroundTruth::decode_from(&mut r), Err(Error::Corrupt(_))),
                "cut={cut}"
            );
        }
    }
}
