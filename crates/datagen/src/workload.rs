//! Search workload specification, mirroring VectorDBBench's methodology.
//!
//! The paper's methodology (§III-B): each experiment runs for 30 seconds with
//! 1,000 query vectors; when the queries are exhausted the stream restarts
//! from the first query. Concurrency is closed-loop — each of N query
//! threads keeps exactly one query in flight.

/// A closed-loop vector-search workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of closed-loop client threads (each with one in-flight query).
    pub concurrency: usize,
    /// Experiment duration in simulated microseconds (paper: 30 s).
    pub duration_us: u64,
    /// Number of distinct query vectors; the stream wraps around.
    pub n_queries: usize,
    /// Results requested per query (`k` in recall@k; paper: 10).
    pub k: usize,
}

impl WorkloadSpec {
    /// The paper's default: 30-second run, 1,000 queries, k=10.
    pub fn paper_default(concurrency: usize) -> Self {
        WorkloadSpec {
            concurrency,
            duration_us: 30_000_000,
            n_queries: 1_000,
            k: 10,
        }
    }

    /// A shortened run for unit tests and smoke benchmarks.
    pub fn quick(concurrency: usize) -> Self {
        WorkloadSpec {
            concurrency,
            duration_us: 2_000_000,
            n_queries: 200,
            k: 10,
        }
    }

    /// Returns the query index the `i`-th issued query uses (wrapping).
    pub fn query_index(&self, i: u64) -> usize {
        (i % self.n_queries as u64) as usize
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.duration_us as f64 / 1e6
    }
}

/// The concurrency ladder used in Figs. 2–4 (1..256 query threads).
pub const CONCURRENCY_LADDER: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_methodology() {
        let w = WorkloadSpec::paper_default(8);
        assert_eq!(w.duration_secs(), 30.0);
        assert_eq!(w.n_queries, 1_000);
        assert_eq!(w.k, 10);
        assert_eq!(w.concurrency, 8);
    }

    #[test]
    fn query_stream_wraps() {
        let w = WorkloadSpec::paper_default(1);
        assert_eq!(w.query_index(0), 0);
        assert_eq!(w.query_index(999), 999);
        assert_eq!(w.query_index(1_000), 0);
        assert_eq!(w.query_index(2_500), 500);
    }

    #[test]
    fn ladder_spans_paper_range() {
        assert_eq!(*CONCURRENCY_LADDER.first().unwrap(), 1);
        assert_eq!(*CONCURRENCY_LADDER.last().unwrap(), 256);
    }
}
