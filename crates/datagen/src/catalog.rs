//! The dataset catalog mirroring the paper's four workloads.
//!
//! | Paper dataset | Here | dim | base vectors (scale=1.0) |
//! |---|---|---|---|
//! | Cohere 1M  | `cohere-s` | 768  | 1,000,000 |
//! | Cohere 10M | `cohere-l` | 768  | 10,000,000 |
//! | OpenAI 500K | `openai-s` | 1536 | 500,000 |
//! | OpenAI 5M  | `openai-l` | 1536 | 5,000,000 |
//!
//! Experiments default to `--scale 0.025` (25K / 250K / 12.5K / 125K vectors)
//! so the full suite runs on a laptop; the 10× ratio between the small and
//! large variant — which drives the paper's scalability observations — is
//! preserved at every scale.

use crate::synth::EmbeddingModel;
use sann_core::buf::ByteWriter;
use sann_core::{Dataset, Metric};

/// Number of query vectors per dataset (the paper uses 1,000).
pub const DEFAULT_QUERIES: usize = 1_000;

/// A fully specified, reproducible dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Short name (`cohere-s`, `cohere-l`, `openai-s`, `openai-l`).
    pub name: String,
    /// Vector dimensionality.
    pub dim: usize,
    /// Number of base vectors.
    pub n_base: usize,
    /// Number of query vectors.
    pub n_queries: usize,
    /// Metric used for search and ground truth (the paper uses cosine on
    /// normalized embeddings, which is rank-equivalent to L2; we use L2).
    pub metric: Metric,
    /// Number of topical clusters in the generator.
    pub clusters: usize,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Returns a copy scaled to `scale × n_base` vectors (minimum 1,000).
    /// Cluster count scales with the square root so density stays realistic.
    pub fn scaled(&self, scale: f64) -> DatasetSpec {
        let n_base = ((self.n_base as f64 * scale) as usize).max(1_000);
        let clusters = ((self.clusters as f64 * scale.sqrt()) as usize).clamp(8, self.clusters);
        DatasetSpec {
            n_base,
            clusters,
            ..self.clone()
        }
    }

    /// The generative model for this spec.
    pub fn model(&self) -> EmbeddingModel {
        EmbeddingModel::new(self.dim, self.clusters, self.seed)
    }

    /// Generates base and query vectors.
    pub fn generate(&self) -> DatasetBundle {
        let model = self.model();
        DatasetBundle {
            base: model.generate(self.n_base),
            queries: model.generate_queries(self.n_queries),
        }
    }

    /// Size in bytes of the full-precision base vectors (what would sit in
    /// memory or on disk before any index overhead).
    pub fn base_bytes(&self) -> u64 {
        self.n_base as u64 * self.dim as u64 * 4
    }

    /// Content hash of every generation-relevant field (name, shape, metric,
    /// cluster count, seed). Two specs share a key iff [`generate`]
    /// (DatasetSpec::generate) provably produces identical bytes, which is
    /// what makes the key safe to address cached artifacts with.
    pub fn content_key(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.put_str(&self.name);
        w.put_u64_le(self.dim as u64);
        w.put_u64_le(self.n_base as u64);
        w.put_u64_le(self.n_queries as u64);
        w.put_u8(self.metric.tag());
        w.put_u64_le(self.clusters as u64);
        w.put_u64_le(self.seed);
        sann_core::hash::fnv1a64(w.as_slice())
    }
}

/// The generated vectors for a [`DatasetSpec`].
#[derive(Debug, Clone)]
pub struct DatasetBundle {
    /// Base (indexed) vectors.
    pub base: Dataset,
    /// Query vectors.
    pub queries: Dataset,
}

/// Cohere-like small dataset: 1M × 768-d at scale 1.0.
pub fn cohere_s() -> DatasetSpec {
    DatasetSpec {
        name: "cohere-s".to_owned(),
        dim: 768,
        n_base: 1_000_000,
        n_queries: DEFAULT_QUERIES,
        metric: Metric::L2,
        clusters: 256,
        seed: 0xC0_4E_8E_01,
    }
}

/// Cohere-like large dataset: 10M × 768-d at scale 1.0 (10× `cohere-s`).
pub fn cohere_l() -> DatasetSpec {
    DatasetSpec {
        name: "cohere-l".to_owned(),
        n_base: 10_000_000,
        clusters: 512,
        ..cohere_s()
    }
}

/// OpenAI-like small dataset: 500K × 1536-d at scale 1.0.
pub fn openai_s() -> DatasetSpec {
    DatasetSpec {
        name: "openai-s".to_owned(),
        dim: 1536,
        n_base: 500_000,
        n_queries: DEFAULT_QUERIES,
        metric: Metric::L2,
        clusters: 192,
        seed: 0x00AE_4A02,
    }
}

/// OpenAI-like large dataset: 5M × 1536-d at scale 1.0 (10× `openai-s`).
pub fn openai_l() -> DatasetSpec {
    DatasetSpec {
        name: "openai-l".to_owned(),
        n_base: 5_000_000,
        clusters: 384,
        ..openai_s()
    }
}

/// All four paper datasets, in the paper's order.
pub fn all() -> Vec<DatasetSpec> {
    vec![cohere_s(), cohere_l(), openai_s(), openai_l()]
}

/// Looks a spec up by name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_shapes() {
        assert_eq!(cohere_s().dim, 768);
        assert_eq!(cohere_l().dim, 768);
        assert_eq!(openai_s().dim, 1536);
        assert_eq!(openai_l().dim, 1536);
        assert_eq!(cohere_l().n_base, 10 * cohere_s().n_base);
        assert_eq!(openai_l().n_base, 10 * openai_s().n_base);
    }

    #[test]
    fn scaling_preserves_ratio() {
        let s = cohere_s().scaled(0.01);
        let l = cohere_l().scaled(0.01);
        assert_eq!(l.n_base, 10 * s.n_base);
    }

    #[test]
    fn scaling_has_floor() {
        let tiny = cohere_s().scaled(1e-9);
        assert_eq!(tiny.n_base, 1_000);
        assert!(tiny.clusters >= 8);
    }

    #[test]
    fn by_name_finds_all() {
        for spec in all() {
            assert_eq!(by_name(&spec.name), Some(spec.clone()));
        }
        assert!(by_name("sift-1b").is_none());
    }

    #[test]
    fn generate_produces_requested_counts() {
        let spec = cohere_s().scaled(0.001);
        let bundle = spec.generate();
        assert_eq!(bundle.base.len(), spec.n_base);
        assert_eq!(bundle.queries.len(), spec.n_queries);
        assert_eq!(bundle.base.dim(), 768);
    }

    #[test]
    fn base_bytes_is_exact() {
        assert_eq!(cohere_s().base_bytes(), 1_000_000 * 768 * 4);
    }

    #[test]
    fn content_key_covers_every_generation_field() {
        let base = cohere_s().scaled(0.01);
        let key = base.content_key();
        assert_eq!(key, cohere_s().scaled(0.01).content_key(), "stable");
        let mut renamed = base.clone();
        renamed.name = "cohere-x".into();
        let mut reseeded = base.clone();
        reseeded.seed ^= 1;
        let mut reshaped = base.clone();
        reshaped.n_base += 1;
        let mut remetric = base.clone();
        remetric.metric = Metric::Cosine;
        let mut reclustered = base.clone();
        reclustered.clusters += 1;
        for other in [renamed, reseeded, reshaped, remetric, reclustered] {
            assert_ne!(key, other.content_key(), "{other:?}");
        }
        assert_ne!(key, base.scaled(0.5).content_key());
    }
}
