//! Recall invariants that must hold regardless of engine or fault-layer
//! changes: exact search is exact on every catalog dataset, and DiskANN
//! recall never degrades when the caller pays for a larger search list.

use sann_datagen::{catalog, GroundTruth};
use sann_index::{search_ids, DiskAnnConfig, DiskAnnIndex, FlatIndex, SearchParams};

const K: usize = 10;

/// Shrinks a catalog spec to a size where brute-force ground truth is
/// cheap while keeping the generator's cluster structure.
fn small(spec: &sann_datagen::DatasetSpec, n_queries: usize) -> sann_datagen::DatasetSpec {
    let mut s = spec.scaled(2_000.0 / spec.n_base as f64);
    s.n_queries = n_queries;
    s
}

#[test]
fn flat_index_recall_is_exactly_one_on_every_catalog_dataset() {
    for spec in catalog::all() {
        let spec = small(&spec, 50);
        let bundle = spec.generate();
        let index = FlatIndex::build(&bundle.base, spec.metric);
        let ids = search_ids(&index, &bundle.queries, K, &SearchParams::default())
            .expect("flat search cannot fail");
        let truth = GroundTruth::bruteforce(&bundle.base, &bundle.queries, spec.metric, K);
        let recall = truth.mean_recall(&ids);
        assert_eq!(
            recall, 1.0,
            "flat index is exact by construction, got {recall} on {}",
            spec.name
        );
    }
}

#[test]
fn diskann_recall_is_non_decreasing_in_search_list() {
    // The vdb tuner's search-list ladder: recall must be monotone in the
    // candidate-list size at fixed beam width, otherwise "pay more, get
    // less" tuning curves (fig. 7) would be meaningless.
    let spec = small(&catalog::all()[0], 100);
    let bundle = spec.generate();
    let index = DiskAnnIndex::build(&bundle.base, spec.metric, DiskAnnConfig::default())
        .expect("build must succeed");
    let truth = GroundTruth::bruteforce(&bundle.base, &bundle.queries, spec.metric, K);

    let ladder = [10usize, 15, 20, 30, 40, 60, 80, 100];
    let mut last = -1.0f64;
    for &l in &ladder {
        let params = SearchParams::default()
            .with_search_list(l)
            .with_beam_width(4);
        let ids = search_ids(&index, &bundle.queries, K, &params).expect("search must succeed");
        let recall = truth.mean_recall(&ids);
        assert!(
            recall >= last,
            "recall regressed along the ladder: {recall} at L={l} after {last}"
        );
        last = recall;
    }
    assert!(
        last > 0.9,
        "L=100 on a 2k-vector set must reach high recall, got {last}"
    );
}

#[test]
fn diskann_recall_is_deterministic_across_builds() {
    // Same spec, same config: two independent builds answer identically.
    let spec = small(&catalog::all()[0], 20);
    let bundle = spec.generate();
    let params = SearchParams::default()
        .with_search_list(40)
        .with_beam_width(4);
    let run = || {
        let index = DiskAnnIndex::build(&bundle.base, spec.metric, DiskAnnConfig::default())
            .expect("build must succeed");
        search_ids(&index, &bundle.queries, K, &params).expect("search must succeed")
    };
    assert_eq!(run(), run());
}
