//! The I/O design space changes *how* DiskANN reads, never *what* it
//! answers: every strategy in {naive, paged} x {no-prefetch, look-ahead} x
//! {phased, pipelined} must return identical top-k ids at equal
//! `search_list`/`beam_width`, and every strategy's traces must satisfy
//! the trace well-formedness invariants.

use sann_datagen::catalog;
use sann_index::{DiskAnnConfig, DiskAnnIndex, IoStrategy, SearchParams, TraceStep, VectorIndex};

const K: usize = 10;

/// Shrinks a catalog spec to a size where graph builds are cheap while
/// keeping the generator's cluster structure and true record shapes.
fn small(spec: &sann_datagen::DatasetSpec, n_queries: usize) -> sann_datagen::DatasetSpec {
    let mut s = spec.scaled(1_500.0 / spec.n_base as f64);
    s.n_queries = n_queries;
    s
}

#[test]
fn every_strategy_returns_identical_topk_on_every_catalog_dataset() {
    for spec in catalog::all() {
        let spec = small(&spec, 25);
        let bundle = spec.generate();
        let index = DiskAnnIndex::build(&bundle.base, spec.metric, DiskAnnConfig::default())
            .expect("build must succeed");
        // A beam under the naive layout is at most W nodes x the sectors
        // each record spans; overlapped steps get 2x that inside validate.
        let spn = index.layout().sectors_per_node() as usize;
        let strategies = IoStrategy::all();
        assert_eq!(strategies.len(), 8);
        for (qi, q) in bundle.queries.iter().enumerate() {
            let mut baseline: Option<Vec<u32>> = None;
            for strat in &strategies {
                let params = SearchParams::default()
                    .with_search_list(40)
                    .with_beam_width(4)
                    .with_io(*strat);
                let out = index.search(q, K, &params).expect("search must succeed");
                out.trace
                    .validate(params.beam_width * spn)
                    .unwrap_or_else(|e| {
                        panic!("{} trace invalid on {}: {e}", strat.label(), spec.name)
                    });
                let ids: Vec<u32> = out.neighbors.iter().map(|n| n.id).collect();
                match &baseline {
                    None => baseline = Some(ids),
                    Some(b) => assert_eq!(
                        &ids,
                        b,
                        "strategy {} diverged from baseline on {} query {qi}",
                        strat.label(),
                        spec.name
                    ),
                }
            }
        }
    }
}

#[test]
fn paged_layout_issues_fewer_requests_than_naive() {
    // Neighbor co-location must actually pay: over a query set, the paged
    // layout's demand path issues no more requests than the naive layout,
    // and strictly fewer in aggregate (some hops hit co-resident pages).
    let spec = small(&catalog::cohere_s(), 25);
    let bundle = spec.generate();
    let index = DiskAnnIndex::build(&bundle.base, spec.metric, DiskAnnConfig::default())
        .expect("build must succeed");
    let count = |strat: IoStrategy| -> u64 {
        let params = SearchParams::default()
            .with_search_list(40)
            .with_beam_width(4)
            .with_io(strat);
        bundle
            .queries
            .iter()
            .map(|q| index.search(q, K, &params).unwrap().trace.io_count())
            .sum()
    };
    let naive = count(IoStrategy::default());
    let paged = count(IoStrategy {
        layout: sann_index::LayoutKind::Paged,
        ..IoStrategy::default()
    });
    assert!(
        paged < naive,
        "co-location must eliminate some reads: paged {paged} vs naive {naive}"
    );
}

#[test]
fn pipelined_strategies_emit_overlapped_steps_and_phased_never_do() {
    let spec = small(&catalog::cohere_s(), 10);
    let bundle = spec.generate();
    let index = DiskAnnIndex::build(&bundle.base, spec.metric, DiskAnnConfig::default())
        .expect("build must succeed");
    for strat in IoStrategy::all() {
        let params = SearchParams::default()
            .with_search_list(40)
            .with_beam_width(4)
            .with_io(strat);
        let overlapped: usize = bundle
            .queries
            .iter()
            .map(|q| {
                index
                    .search(q, K, &params)
                    .unwrap()
                    .trace
                    .steps
                    .iter()
                    .filter(|s| matches!(s, TraceStep::Overlapped { .. }))
                    .count()
            })
            .sum();
        if strat.pipelined || strat.look_ahead {
            assert!(
                overlapped > 0,
                "{} must overlap reads with compute",
                strat.label()
            );
        } else {
            assert_eq!(
                overlapped,
                0,
                "{} is strictly phased and may not overlap",
                strat.label()
            );
        }
    }
}

#[test]
fn default_strategy_traces_are_unchanged_by_the_design_space() {
    // The explorer must not perturb the baseline: searching with the
    // default `IoStrategy` produces the same trace as the plain default
    // parameters (which golden files across the workspace depend on).
    let spec = small(&catalog::cohere_s(), 10);
    let bundle = spec.generate();
    let index = DiskAnnIndex::build(&bundle.base, spec.metric, DiskAnnConfig::default())
        .expect("build must succeed");
    let plain = SearchParams::default()
        .with_search_list(40)
        .with_beam_width(4);
    let explicit = plain.with_io(IoStrategy::default());
    for q in bundle.queries.iter() {
        let a = index.search(q, K, &plain).unwrap();
        let b = index.search(q, K, &explicit).unwrap();
        assert_eq!(a.trace.steps, b.trace.steps);
        assert_eq!(a.neighbors, b.neighbors);
    }
}
