//! Serialization of built indexes for the artifact cache.
//!
//! Every persistable index kind encodes to a self-describing frame:
//!
//! ```text
//! magic "SIDX" | format version u32 | kind string | kind-specific payload
//! ```
//!
//! [`VectorIndex::persist_encode`](crate::VectorIndex::persist_encode)
//! produces the frame; [`decode`] dispatches on the kind string and rebuilds
//! the concrete index. Encoding is canonical: decoding a frame and
//! re-encoding the result yields the original bytes, which is what lets the
//! determinism audit byte-diff cached artifacts against fresh builds.
//!
//! The kinds that ride on a simulated-storage layout or hold only derived
//! state (`flat`, `mmap-hnsw`, `spann`, `fresh-diskann`) return `None` from
//! `persist_encode` and are simply rebuilt on every run.

use crate::{DiskAnnIndex, HnswIndex, HnswSqIndex, IvfIndex, IvfPqIndex, VectorIndex};
use sann_core::buf::{ByteReader, ByteWriter};
use sann_core::{Error, Result};

/// Frame magic, first four bytes of every index artifact.
pub const MAGIC: [u8; 4] = *b"SIDX";

/// Format version; bump on any payload layout change so stale cache entries
/// are rejected (and rebuilt) instead of misread.
pub const FORMAT_VERSION: u32 = 1;

/// Wraps a kind-specific payload in the self-describing frame.
pub(crate) fn frame(kind: &str, payload: impl FnOnce(&mut ByteWriter)) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_slice(&MAGIC);
    w.put_u32_le(FORMAT_VERSION);
    w.put_str(kind);
    payload(&mut w);
    w.into_bytes()
}

/// Decodes an index artifact produced by
/// [`VectorIndex::persist_encode`](crate::VectorIndex::persist_encode).
///
/// # Errors
///
/// Returns [`Error::Corrupt`] on a bad magic/version/kind, truncation, or
/// internally inconsistent payload — callers treat any error as a cache miss
/// and rebuild.
pub fn decode(bytes: &[u8]) -> Result<Box<dyn VectorIndex>> {
    let mut r = ByteReader::new(bytes, "index-artifact");
    if r.take(4)? != MAGIC {
        return Err(Error::Corrupt("index-artifact: bad magic".into()));
    }
    let version = r.get_u32_le()?;
    if version != FORMAT_VERSION {
        return Err(Error::Corrupt(format!(
            "index-artifact: format version {version} != {FORMAT_VERSION}"
        )));
    }
    let kind = r.get_str()?;
    let index: Box<dyn VectorIndex> = match kind.as_str() {
        "ivf" => Box::new(IvfIndex::from_persist(&mut r)?),
        "ivf-pq" => Box::new(IvfPqIndex::from_persist(&mut r)?),
        "hnsw" => Box::new(HnswIndex::from_persist(&mut r)?),
        "hnsw-sq" => Box::new(HnswSqIndex::from_persist(&mut r)?),
        "diskann" => Box::new(DiskAnnIndex::from_persist(&mut r)?),
        other => {
            return Err(Error::Corrupt(format!(
                "index-artifact: unknown kind {other:?}"
            )))
        }
    };
    if r.remaining() != 0 {
        return Err(Error::Corrupt("index-artifact: trailing bytes".into()));
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        search_ids, DiskAnnConfig, FlatIndex, HnswConfig, IvfConfig, SearchParams, VamanaConfig,
    };
    use sann_core::Metric;
    use sann_datagen::EmbeddingModel;

    fn data() -> (sann_core::Dataset, sann_core::Dataset) {
        let model = EmbeddingModel::new(32, 4, 123);
        (model.generate(500), model.generate_queries(10))
    }

    /// Round-trips one index through the frame and checks that the decoded
    /// copy (a) searches identically and (b) re-encodes byte-for-byte.
    fn assert_round_trip(index: &dyn VectorIndex, queries: &sann_core::Dataset) {
        let bytes = index.persist_encode().expect("kind is persistable");
        let back = decode(&bytes).unwrap();
        assert_eq!(back.kind(), index.kind());
        assert_eq!(back.len(), index.len());
        assert_eq!(back.dim(), index.dim());
        assert_eq!(back.is_storage_based(), index.is_storage_based());
        assert_eq!(back.memory_bytes(), index.memory_bytes());
        assert_eq!(back.storage_bytes(), index.storage_bytes());
        let params = SearchParams::default();
        assert_eq!(
            search_ids(index, queries, 5, &params).unwrap(),
            search_ids(back.as_ref(), queries, 5, &params).unwrap(),
            "decoded {} searches differently",
            index.kind()
        );
        assert_eq!(
            back.persist_encode().unwrap(),
            bytes,
            "{} re-encode not canonical",
            index.kind()
        );
    }

    #[test]
    fn ivf_round_trips() {
        let (base, queries) = data();
        let index =
            IvfIndex::build(&base, Metric::L2, IvfConfig::default().with_nlist(16)).unwrap();
        assert_round_trip(&index, &queries);
    }

    #[test]
    fn ivf_pq_round_trips() {
        let (base, queries) = data();
        let index = IvfPqIndex::build(&base, IvfConfig::default().with_nlist(16), 8, 32).unwrap();
        assert_round_trip(&index, &queries);
    }

    #[test]
    fn hnsw_round_trips() {
        let (base, queries) = data();
        let config = HnswConfig {
            threads: 1,
            ..HnswConfig::default()
        };
        let index = HnswIndex::build(&base, Metric::L2, config).unwrap();
        assert_round_trip(&index, &queries);
    }

    #[test]
    fn hnsw_sq_round_trips() {
        let (base, queries) = data();
        let config = HnswConfig {
            threads: 1,
            ..HnswConfig::default()
        };
        let index = HnswSqIndex::build(&base, Metric::L2, config).unwrap();
        assert_round_trip(&index, &queries);
    }

    #[test]
    fn diskann_round_trips() {
        let (base, queries) = data();
        let config = DiskAnnConfig {
            graph: VamanaConfig {
                r: 16,
                threads: 1,
                ..VamanaConfig::default()
            },
            pq_m: 8,
            pq_ksub: 32,
            base_offset: 8192,
        };
        let index = DiskAnnIndex::build(&base, Metric::L2, config).unwrap();
        assert_round_trip(&index, &queries);
        // The rebuilt layout preserves the original region placement.
        let back = decode(&index.persist_encode().unwrap()).unwrap();
        assert_eq!(back.storage_bytes(), index.storage_bytes());
    }

    #[test]
    fn unsupported_kinds_return_none() {
        let (base, _) = data();
        let flat = FlatIndex::build(&base, Metric::L2);
        assert!(flat.persist_encode().is_none());
    }

    #[test]
    fn decode_rejects_corruption() {
        let (base, _) = data();
        let index = IvfIndex::build(&base, Metric::L2, IvfConfig::default().with_nlist(8)).unwrap();
        let bytes = index.persist_encode().unwrap();
        // Truncations at every region boundary are corrupt, never a panic.
        for cut in [0, 3, 4, 8, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(decode(&bad).is_err());
        // Future format version.
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(decode(&bad).is_err());
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(decode(&bad).is_err());
    }
}
