//! Page-aligned neighbor co-location: the "page-aligned" point of the I/O
//! design space.
//!
//! The naive [`DiskLayout`](crate::layout::DiskLayout) packs node records
//! sequentially by id, so a beam of `W` frontier nodes costs `W` device
//! reads regardless of how related the nodes are. The design-space papers
//! (Li et al.; LAANN) observe that graph neighbors are overwhelmingly
//! likely to be visited together, and pack a node's record *with its
//! highest-degree neighbors* into one multi-sector page. A page fetch then
//! serves several future visits at once: any co-resident node the search
//! later reaches is already in memory and costs no read at all (in-page
//! duplicate-visit elimination).
//!
//! Catalog shapes (768-d → 3332 B records, 1536-d → 6404 B) fit at most one
//! record per 4 KiB sector, so co-location requires pages of several
//! sectors: the layout picks the smallest page of at most
//! [`MAX_PAGE_SECTORS`] sectors that holds at least two records (8 KiB for
//! 768-d, 16 KiB for 1536-d) and fetches each page as *one* sector-multiple
//! request — larger than the naive 4 KiB requests, but far fewer of them.

use crate::layout::SECTOR_BYTES;
use crate::trace::IoReq;
use crate::vamana::VamanaGraph;
use sann_core::{cast, Error, Result};
use sann_obs::IoProvenance;

/// Upper bound on the page size, in sectors. Pages beyond 16 KiB stop
/// paying for themselves: the extra fetched bytes outgrow the saved
/// requests (and `MAX_REQUEST_BYTES` splitting would re-fragment them).
pub const MAX_PAGE_SECTORS: u64 = 4;

/// Page-aligned placement of node records co-located with their neighbors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagedLayout {
    node_bytes: u64,
    /// Page size in bytes (a multiple of [`SECTOR_BYTES`]).
    page_bytes: u64,
    /// Record capacity of one page.
    nodes_per_page: u64,
    /// `page_of[id]` = page index holding node `id`'s record.
    page_of: Vec<u32>,
    /// Number of pages.
    n_pages: u64,
    base_offset: u64,
}

impl PagedLayout {
    /// Builds the packing for `graph` with `node_bytes`-byte records
    /// starting at `base_offset`.
    ///
    /// Packing is greedy and fully deterministic (it must reproduce
    /// identically from a persisted graph): nodes are seeded in
    /// (degree descending, id ascending) order — high-degree hubs are the
    /// most co-visited — and each seed's page is filled with its still
    /// unassigned neighbors in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `node_bytes` is zero or `base_offset` is not
    /// sector-aligned (construction-time programming errors, exactly as in
    /// [`DiskLayout::new`](crate::layout::DiskLayout::new)).
    pub fn new(graph: &VamanaGraph, node_bytes: u64, base_offset: u64) -> PagedLayout {
        assert!(node_bytes > 0, "node_bytes must be positive");
        assert_eq!(
            base_offset % SECTOR_BYTES,
            0,
            "base offset must be sector-aligned"
        );
        // Smallest page of <= MAX_PAGE_SECTORS sectors holding >= 2 records;
        // if no such page exists the layout degenerates to one record per
        // page (no co-location possible at sane page sizes).
        let (page_bytes, nodes_per_page) = (1..=MAX_PAGE_SECTORS)
            .map(|s| (s * SECTOR_BYTES, s * SECTOR_BYTES / node_bytes))
            .find(|&(_, per)| per >= 2)
            .unwrap_or_else(|| {
                let sectors = node_bytes.div_ceil(SECTOR_BYTES);
                (sectors * SECTOR_BYTES, 1)
            });

        // Degree-descending seed order; id ascending breaks ties so the
        // packing is independent of iteration incidentals.
        let mut order: Vec<u32> = (0..cast::u32_from_usize(graph.len())).collect();
        order.sort_by_key(|&id| (std::cmp::Reverse(graph.neighbors(id).len()), id));

        let mut page_of = vec![u32::MAX; graph.len()];
        let mut next_page = 0u32;
        for &seed in &order {
            if page_of[seed as usize] != u32::MAX {
                continue;
            }
            // Open a fresh page for the seed...
            let page = next_page;
            next_page += 1;
            page_of[seed as usize] = page;
            let slots = nodes_per_page - 1;
            if slots == 0 {
                continue;
            }
            // ...and co-locate its hottest unassigned neighbors.
            let mut nbrs: Vec<u32> = graph
                .neighbors(seed)
                .iter()
                .copied()
                .filter(|&nb| page_of[nb as usize] == u32::MAX)
                .collect();
            nbrs.sort_by_key(|&id| (std::cmp::Reverse(graph.neighbors(id).len()), id));
            for nb in nbrs.into_iter().take(slots as usize) {
                page_of[nb as usize] = page;
            }
        }
        PagedLayout {
            node_bytes,
            page_bytes,
            nodes_per_page,
            page_of,
            n_pages: u64::from(next_page),
            base_offset,
        }
    }

    /// Bytes of one node record (before padding).
    pub fn node_bytes(&self) -> u64 {
        self.node_bytes
    }

    /// Page size in bytes (sector multiple).
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Record capacity of one page.
    pub fn nodes_per_page(&self) -> u64 {
        self.nodes_per_page
    }

    /// Number of pages in the packing.
    pub fn n_pages(&self) -> u64 {
        self.n_pages
    }

    /// Number of node records.
    pub fn n_nodes(&self) -> u64 {
        self.page_of.len() as u64
    }

    /// The page holding node `id`'s record.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `id` is out of range (the
    /// PR 5 panic-path policy: a corrupt edge must not tear down a sweep).
    pub fn page_of(&self, id: u64) -> Result<u32> {
        usize::try_from(id)
            .ok()
            .and_then(|i| self.page_of.get(i))
            .copied()
            .ok_or_else(|| {
                Error::invalid_parameter(
                    "node_id",
                    format!(
                        "id {id} out of range for paged layout of {} nodes",
                        self.page_of.len()
                    ),
                )
            })
    }

    /// Device byte offset of `page`.
    pub fn page_offset(&self, page: u32) -> u64 {
        self.base_offset + u64::from(page) * self.page_bytes
    }

    /// The single request fetching `page`, with `nodes_used` records'
    /// worth of payload counted as needed (the frontier nodes this fetch
    /// serves; co-resident records used on later hops ride for free and
    /// are not counted — speculative bytes are amplification until used).
    pub fn page_req(&self, page: u32, nodes_used: u64, provenance: IoProvenance) -> IoReq {
        let len = cast::u32_from_u64(self.page_bytes);
        let needed = cast::u32_from_u64((self.node_bytes * nodes_used).min(self.page_bytes));
        IoReq::tagged(
            self.base_offset + u64::from(page) * self.page_bytes,
            len,
            needed,
            provenance,
        )
    }

    /// Total bytes the packing occupies on the device.
    pub fn total_bytes(&self) -> u64 {
        self.n_pages * self.page_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vamana::VamanaConfig;
    use sann_core::Metric;
    use sann_datagen::EmbeddingModel;

    fn small_graph() -> VamanaGraph {
        let base = EmbeddingModel::new(32, 4, 9).generate(500);
        VamanaGraph::build(
            &base,
            Metric::L2,
            VamanaConfig {
                r: 16,
                l_build: 40,
                threads: 1,
                ..VamanaConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn catalog_shapes_get_multi_sector_pages() {
        let graph = small_graph();
        // 768-d record: 3332 B -> 8 KiB page holding 2 records.
        let p768 = PagedLayout::new(&graph, 3332, 0);
        assert_eq!(p768.page_bytes(), 8192);
        assert_eq!(p768.nodes_per_page(), 2);
        // 1536-d record: 6404 B -> 16 KiB page holding 2 records.
        let p1536 = PagedLayout::new(&graph, 6404, 0);
        assert_eq!(p1536.page_bytes(), 16384);
        assert_eq!(p1536.nodes_per_page(), 2);
        // Tiny records pack many to a single sector.
        let tiny = PagedLayout::new(&graph, 1000, 0);
        assert_eq!(tiny.page_bytes(), 4096);
        assert_eq!(tiny.nodes_per_page(), 4);
    }

    #[test]
    fn oversized_records_degenerate_to_singleton_pages() {
        let graph = small_graph();
        let huge = PagedLayout::new(&graph, 20_000, 0);
        assert_eq!(huge.nodes_per_page(), 1);
        assert_eq!(huge.page_bytes(), 20_000u64.div_ceil(4096) * 4096);
    }

    #[test]
    fn every_node_is_placed_and_pages_respect_capacity() {
        let graph = small_graph();
        let layout = PagedLayout::new(&graph, 3332, 0);
        let mut per_page = vec![0u64; layout.n_pages() as usize];
        for id in 0..graph.len() as u64 {
            per_page[layout.page_of(id).unwrap() as usize] += 1;
        }
        assert!(per_page.iter().all(|&c| (1..=2).contains(&c)));
        assert_eq!(per_page.iter().sum::<u64>(), graph.len() as u64);
    }

    #[test]
    fn co_location_pairs_neighbors() {
        // Most pages with 2 occupants must hold a genuine graph edge —
        // that is the whole point of the packing.
        let graph = small_graph();
        let layout = PagedLayout::new(&graph, 3332, 0);
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); layout.n_pages() as usize];
        for id in 0..graph.len() as u32 {
            members[layout.page_of(u64::from(id)).unwrap() as usize].push(id);
        }
        let pairs: Vec<&Vec<u32>> = members.iter().filter(|m| m.len() == 2).collect();
        assert!(!pairs.is_empty(), "some pages must be full");
        let linked = pairs
            .iter()
            .filter(|m| {
                graph.neighbors(m[0]).contains(&m[1]) || graph.neighbors(m[1]).contains(&m[0])
            })
            .count();
        assert!(
            linked * 10 >= pairs.len() * 9,
            "{linked}/{} co-located pairs share an edge",
            pairs.len()
        );
    }

    #[test]
    fn packing_is_deterministic() {
        let graph = small_graph();
        let a = PagedLayout::new(&graph, 3332, 4096);
        let b = PagedLayout::new(&graph, 3332, 4096);
        assert_eq!(a, b);
    }

    #[test]
    fn page_reqs_are_sector_multiples_with_exact_needed() {
        let graph = small_graph();
        let layout = PagedLayout::new(&graph, 3332, 8192);
        let req = layout.page_req(3, 2, IoProvenance::GraphAdjacency);
        assert_eq!(req.offset, 8192 + 3 * 8192);
        assert_eq!(req.len, 8192);
        assert_eq!(req.needed, 2 * 3332);
        assert_eq!(req.offset % 4096, 0);
        // needed never exceeds the fetch, even if a caller over-counts.
        let capped = layout.page_req(0, 10, IoProvenance::GraphAdjacency);
        assert_eq!(capped.needed, capped.len);
    }

    #[test]
    fn out_of_range_id_is_an_error() {
        let graph = small_graph();
        let layout = PagedLayout::new(&graph, 3332, 0);
        assert!(layout.page_of(9999).is_err());
        assert!(layout.page_of(graph.len() as u64 - 1).is_ok());
    }
}
